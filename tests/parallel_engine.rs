//! Tests for the parallel decision-engine substrate (`pw_decide::engine` / `::batch`):
//!
//! * a property test asserting that the parallel and sequential searches return identical
//!   decisions on randomized `pw-workloads` tables across every table class and all five
//!   decision problems, and
//! * a regression test asserting that `BudgetExceeded` is reported deterministically under
//!   parallelism when the searched tree has no witness and exceeds the budget.
//!
//! The randomized cases use the seeded workload generators (no external property-testing
//! framework is available offline); every seed is deterministic, so a failure here is
//! reproducible by seed.

use possible_worlds::decide::{batch, Engine, EngineConfig};
use possible_worlds::prelude::*;
use possible_worlds::workloads::{
    member_instance, non_member_instance, random_codd_table, random_ctable, random_etable,
    random_gtable, random_itable, TableParams,
};

fn small_params(seed: u64) -> TableParams {
    TableParams {
        rows: 4,
        arity: 2,
        constants: 3,
        null_density: 0.4,
        seed,
    }
}

type TableGenerator = fn(&str, &TableParams) -> CTable;

fn generators() -> Vec<(&'static str, TableGenerator)> {
    vec![
        ("codd", random_codd_table as TableGenerator),
        ("e-table", random_etable),
        ("i-table", random_itable),
        ("g-table", random_gtable),
        ("c-table", random_ctable),
    ]
}

const THREAD_COUNTS: [usize; 2] = [2, 8];

/// Property: for every table class, seed and decision problem, every parallel
/// configuration returns exactly the sequential answer.
#[test]
fn parallel_and_sequential_decisions_agree_on_random_workloads() {
    let budget = Budget(20_000_000);
    for (class, generate) in generators() {
        for seed in 0..6u64 {
            let params = small_params(seed);
            let db = CDatabase::single(generate("T", &params));
            let view = View::identity(db.clone());
            let member = member_instance(&db, &params);
            let non_member = non_member_instance(&db, &params);

            for instance in [&member, &non_member] {
                let seq_memb = membership::decide(&db, instance, budget).unwrap();
                let seq_uniq = uniqueness::decide(&view, instance, budget).unwrap();
                let seq_poss = possibility::decide(&view, instance, budget).unwrap();
                let seq_cert = certainty::decide(&view, instance, budget).unwrap();
                for threads in THREAD_COUNTS {
                    let engine = Engine::new(EngineConfig::with_threads(threads, budget));
                    let ctx = format!("{class} seed {seed} threads {threads} on {instance}");
                    assert_eq!(
                        membership::view_membership_with(&view, instance, &engine)
                            .answer
                            .unwrap(),
                        seq_memb,
                        "membership {ctx}"
                    );
                    assert_eq!(
                        uniqueness::decide_with(&view, instance, &engine)
                            .answer
                            .unwrap(),
                        seq_uniq,
                        "uniqueness {ctx}"
                    );
                    assert_eq!(
                        possibility::decide_with(&view, instance, &engine)
                            .answer
                            .unwrap(),
                        seq_poss,
                        "possibility {ctx}"
                    );
                    assert_eq!(
                        certainty::decide_with(&view, instance, &engine)
                            .answer
                            .unwrap(),
                        seq_cert,
                        "certainty {ctx}"
                    );
                }
            }

            // Containment between this seed's table and the next seed's table of the same
            // class (rarely true, which is exactly the hard direction for the search).
            let other = CDatabase::single(generate("T", &small_params(seed + 100)));
            let other_view = View::identity(other);
            let seq_cont = containment::decide(&view, &other_view, budget).unwrap();
            for threads in THREAD_COUNTS {
                let engine = Engine::new(EngineConfig::with_threads(threads, budget));
                assert_eq!(
                    containment::decide_with(&view, &other_view, &engine)
                        .answer
                        .unwrap(),
                    seq_cont,
                    "containment {class} seed {seed} threads {threads}"
                );
            }
        }
    }
}

/// Property: the batched front door returns, position by position, the single-shot
/// answers, for every thread count.
#[test]
fn batch_matches_single_shot_on_random_workloads() {
    let budget = Budget(20_000_000);
    let mut requests = Vec::new();
    let mut expected = Vec::new();
    for seed in 0..4u64 {
        let params = small_params(seed);
        let db = CDatabase::single(random_ctable("T", &params));
        let view = View::identity(db.clone());
        let member = member_instance(&db, &params);
        expected.push(membership::decide(&db, &member, budget).unwrap());
        requests.push(batch::DecisionRequest::Membership {
            view: view.clone(),
            instance: member.clone(),
        });
        expected.push(possibility::decide(&view, &member, budget).unwrap());
        requests.push(batch::DecisionRequest::Possibility {
            view: view.clone(),
            facts: member.clone(),
        });
        expected.push(certainty::decide(&view, &member, budget).unwrap());
        requests.push(batch::DecisionRequest::Certainty {
            view,
            facts: member,
        });
    }
    for threads in [1, 2, 8] {
        let cfg = EngineConfig::with_threads(threads, budget);
        let outcomes = batch::decide_all_with(&requests, &cfg);
        let answers: Vec<bool> = outcomes
            .iter()
            .map(|o| *o.answer.as_ref().unwrap())
            .collect();
        assert_eq!(answers, expected, "batch answers with {threads} threads");
    }
}

/// A possibility question with no witness and a search tree much larger than the budget:
/// nine facts can never be covered by eight rows, but the search only discovers that after
/// exploring an 8-level assignment tree (~10⁵ nodes).
fn oversized_cover_request() -> (View, Instance) {
    let mut vars = VarGen::new();
    let xs: Vec<Variable> = (0..8).map(|_| vars.fresh()).collect();
    let rows: Vec<Vec<Term>> = xs.iter().map(|&x| vec![Term::Var(x)]).collect();
    // The (satisfiable) global inequality makes this an i-table, so the dispatcher picks
    // the general backtracking search rather than the polynomial Codd matching.
    let table = CTable::i_table("R", 1, Conjunction::new([Atom::neq(xs[0], xs[1])]), rows).unwrap();
    let view = View::identity(CDatabase::single(table));
    let mut rel = Relation::empty(1);
    for i in 0..9i64 {
        rel.insert(Tuple::new([i.into()])).unwrap();
    }
    (view, Instance::single("R", rel))
}

/// Regression: `BudgetExceeded` must be reported deterministically under parallelism —
/// when no witness exists and the tree exceeds the budget, every thread count and every
/// repetition reports the exhaustion (and with an ample budget, every configuration
/// reports the same `false` answer instead).
#[test]
fn budget_exceeded_is_deterministic_under_parallelism() {
    let (view, facts) = oversized_cover_request();
    for threads in [1, 2, 8] {
        for repetition in 0..3 {
            let starved = Engine::new(EngineConfig::with_threads(threads, Budget(500)));
            assert_eq!(
                possibility::decide_with(&view, &facts, &starved).answer,
                Err(DecisionError::BudgetExceeded),
                "starved run must always exhaust ({threads} threads, repetition {repetition})"
            );
            let ample = Engine::new(EngineConfig::with_threads(threads, Budget(50_000_000)));
            assert_eq!(
                possibility::decide_with(&view, &facts, &ample).answer,
                Ok(false),
                "ample run must always complete ({threads} threads, repetition {repetition})"
            );
        }
    }
}

/// The engine's cancellation must not flip answers: a witness that exists is found by
/// every configuration even when most of the tree is a desert.
#[test]
fn first_witness_early_exit_is_sound() {
    let mut vars = VarGen::new();
    // Eight nearly unconstrained rows and eight facts: coverable (a witness exists), with
    // a huge search tree most of which is irrelevant once the witness is found.  The
    // global inequality forces the general backtracking search (i-table, not Codd).
    let xs: Vec<Variable> = (0..8).map(|_| vars.fresh()).collect();
    let rows: Vec<Vec<Term>> = xs.iter().map(|&x| vec![Term::Var(x)]).collect();
    let table = CTable::i_table("R", 1, Conjunction::new([Atom::neq(xs[0], xs[1])]), rows).unwrap();
    let view = View::identity(CDatabase::single(table));
    let mut rel = Relation::empty(1);
    for i in 0..8i64 {
        rel.insert(Tuple::new([i.into()])).unwrap();
    }
    let facts = Instance::single("R", rel);
    for threads in [1, 2, 8] {
        let engine = Engine::new(EngineConfig::with_threads(threads, Budget(50_000_000)));
        assert_eq!(
            possibility::decide_with(&view, &facts, &engine).answer,
            Ok(true),
            "witness found with {threads} threads"
        );
    }
}

// ---------------------------------------------------------------------------------------
// Shard-group parallel decide: answers and strategies of the per-shard paths are pinned
// against the joint search (`EngineConfig::without_per_shard`) on decoupled
// multi-relation workloads across every problem, integer and string-heavy, with the
// condition-coupled fallback and deterministic budget exhaustion.
// ---------------------------------------------------------------------------------------

/// A decoupled multi-relation database cycling through the table classes, with the last
/// shard a hand-built *conditional* table (the `pw_workloads::decoupled` family stops at
/// g-tables so the certainty/uniqueness dispatch stays polynomial there; a guaranteed
/// c-table shard forces the coNP complement paths onto the per-shard decomposition).
fn decoupled_all_classes(relations: usize, seed: u64) -> CDatabase {
    let gens = generators();
    let mut tables: Vec<CTable> = (0..relations - 1)
        .map(|r| {
            let params = small_params(seed.wrapping_add(r as u64));
            (gens[r % gens.len()].1)(&format!("R{r:02}"), &params)
        })
        .collect();
    let mut g = VarGen::new();
    let switch = g.fresh();
    tables.push(
        CTable::new(
            format!("R{:02}", relations - 1),
            2,
            Conjunction::truth(),
            [
                CTuple::with_condition(
                    [Term::constant(1), Term::constant(1)],
                    Conjunction::new([Atom::eq(switch, 0)]),
                ),
                CTuple::of_terms([Term::constant(2), Term::constant(2)]),
            ],
        )
        .unwrap(),
    );
    CDatabase::new(tables)
}

/// Answers and `Strategy` labels of the per-shard engine, pinned against the joint
/// search on decoupled workloads — integer and string-heavy — for all five problems.
#[test]
fn per_shard_matches_joint_on_decoupled_workloads() {
    let budget = Budget(20_000_000);
    for seed in [60u64, 70, 80] {
        // Three relations, the last a guaranteed c-table shard: the conditional shard
        // pushes certainty and uniqueness off their polynomial paths onto the coNP
        // complement — the paths the per-shard decomposition must match — while the
        // *joint* reference searches (which pay multiplicatively across shards, the
        // very cost this decomposition removes) still finish within the budget.
        let relations = 3;
        let int_db = decoupled_all_classes(relations, seed);
        let params = small_params(seed);
        let int_member = member_instance(&int_db, &params);
        let int_non_member = non_member_instance(&int_db, &params);
        let cases = [
            (int_db.clone(), int_member.clone(), int_non_member.clone()),
            (
                possible_worlds::workloads::stringify_database(&int_db),
                possible_worlds::workloads::stringify_instance(&int_member),
                possible_worlds::workloads::stringify_instance(&int_non_member),
            ),
        ];
        for (db, member, non_member) in cases {
            assert_eq!(db.shard_groups().len(), relations, "family is decoupled");
            let view = View::identity(db.clone());
            let per_shard = Engine::new(EngineConfig::with_threads(2, budget));
            let joint = Engine::new(EngineConfig::with_threads(2, budget).without_per_shard());

            for instance in [&member, &non_member] {
                let ctx = format!("seed {seed} on {instance}");
                let p_memb = membership::view_membership_with(&view, instance, &per_shard);
                let j_memb = membership::view_membership_with(&view, instance, &joint);
                assert_eq!(
                    p_memb.answer.unwrap(),
                    j_memb.answer.unwrap(),
                    "membership {ctx}"
                );
                assert_eq!(p_memb.strategy, Strategy::PerShard { groups: relations });
                assert_eq!(j_memb.strategy, Strategy::Backtracking);

                for (label, expect_per_shard, p_pair, j_pair) in [
                    (
                        "possibility",
                        true,
                        possibility::decide_with(&view, instance, &per_shard),
                        possibility::decide_with(&view, instance, &joint),
                    ),
                    (
                        "certainty",
                        true,
                        certainty::decide_with(&view, instance, &per_shard),
                        certainty::decide_with(&view, instance, &joint),
                    ),
                    (
                        "uniqueness",
                        true,
                        uniqueness::decide_with(&view, instance, &per_shard),
                        uniqueness::decide_with(&view, instance, &joint),
                    ),
                ] {
                    assert_eq!(
                        p_pair.answer.unwrap(),
                        j_pair.answer.unwrap(),
                        "{label} {ctx}"
                    );
                    if expect_per_shard {
                        assert_eq!(
                            p_pair.strategy,
                            Strategy::PerShard { groups: relations },
                            "{label} strategy {ctx}"
                        );
                        assert_ne!(
                            j_pair.strategy, p_pair.strategy,
                            "{label} joint strategy {ctx}"
                        );
                    }
                }
            }

            // Containment: reflexive (aligned partitions) and against a differently
            // seeded twin with the same relation names (also aligned).
            let other = View::identity(decoupled_all_classes(relations, seed + 7));
            let p_refl = containment::decide_with(&view, &view, &per_shard);
            let j_refl = containment::decide_with(&view, &view, &joint);
            assert!(
                p_refl.answer.unwrap() && j_refl.answer.unwrap(),
                "rep ⊆ rep (seed {seed})"
            );
            assert_eq!(p_refl.strategy, Strategy::PerShard { groups: relations });
            assert_eq!(j_refl.strategy, Strategy::WorldEnumeration);
            let p_cont = containment::decide_with(&view, &other, &per_shard);
            let j_cont = containment::decide_with(&view, &other, &joint);
            assert_eq!(
                p_cont.answer.unwrap(),
                j_cont.answer.unwrap(),
                "containment twin (seed {seed})"
            );
        }
    }
}

/// Condition-coupled shard groups fall back to the joint search: the coupled twin of a
/// decoupled database reports the joint strategies and the same answers.
#[test]
fn coupled_databases_fall_back_to_the_joint_search() {
    use possible_worlds::workloads::{coupled_multirelation, decoupled_multirelation};
    let budget = Budget(20_000_000);
    let params = small_params(91);
    let decoupled = decoupled_multirelation(4, &params);
    let coupled = coupled_multirelation(4, &params);
    assert_eq!(coupled.shard_groups().len(), 1);
    let engine = Engine::new(EngineConfig::with_threads(2, budget));
    let member = member_instance(&decoupled, &params);
    let joint =
        membership::view_membership_with(&View::identity(coupled.clone()), &member, &engine);
    assert_eq!(
        joint.strategy,
        Strategy::Backtracking,
        "coupled ⇒ joint fallback"
    );
    // The coupling switch is semantically inert, so the decoupled per-shard answer
    // agrees with the coupled joint answer.
    let sharded = membership::view_membership_with(&View::identity(decoupled), &member, &engine);
    assert_eq!(sharded.strategy, Strategy::PerShard { groups: 4 });
    assert_eq!(joint.answer.unwrap(), sharded.answer.unwrap());
    let poss = possibility::decide_with(&View::identity(coupled), &member, &engine);
    assert!(!matches!(poss.strategy, Strategy::PerShard { .. }));
    poss.answer.unwrap();
}

/// Budget exhaustion stays deterministic under the per-shard decomposition: a decoupled
/// database whose *second* group hides the oversized no-witness tree reports
/// `BudgetExceeded` on every thread count when starved, and completes with the joint
/// answer when given room.
#[test]
fn per_shard_budget_exhaustion_is_deterministic() {
    let mut vars = VarGen::new();
    let easy = CTable::codd("A", 1, [vec![Term::constant(1)]]).unwrap();
    let xs: Vec<Variable> = (0..8).map(|_| vars.fresh()).collect();
    let rows: Vec<Vec<Term>> = xs.iter().map(|&x| vec![Term::Var(x)]).collect();
    let hard = CTable::i_table("B", 1, Conjunction::new([Atom::neq(xs[0], xs[1])]), rows).unwrap();
    let db = CDatabase::new([easy, hard]);
    assert_eq!(db.shard_groups().len(), 2);
    let view = View::identity(db);
    let mut rel = Relation::empty(1);
    for i in 0..9i64 {
        rel.insert(Tuple::new([i.into()])).unwrap();
    }
    let mut facts = Instance::single("B", rel);
    facts.insert_relation("A", {
        let mut a = Relation::empty(1);
        a.insert(Tuple::new([1i64.into()])).unwrap();
        a
    });
    for threads in [1, 2, 8] {
        for repetition in 0..3 {
            let starved = Engine::new(EngineConfig::with_threads(threads, Budget(500)));
            let starved_run = possibility::decide_with(&view, &facts, &starved);
            assert_eq!(starved_run.strategy, Strategy::PerShard { groups: 2 });
            assert_eq!(
                starved_run.answer,
                Err(DecisionError::BudgetExceeded),
                "starved per-shard run must exhaust ({threads} threads, rep {repetition})"
            );
            let ample = Engine::new(EngineConfig::with_threads(threads, Budget(50_000_000)));
            let ample_run = possibility::decide_with(&view, &facts, &ample);
            let joint = Engine::new(
                EngineConfig::with_threads(threads, Budget(50_000_000)).without_per_shard(),
            );
            let joint_run = possibility::decide_with(&view, &facts, &joint);
            assert_eq!(ample_run.answer, Ok(false), "ample per-shard completes");
            assert_eq!(joint_run.answer, Ok(false), "joint agrees");
        }
    }
}

/// The batched front door with per-shard requests: outcomes (answers *and* the
/// `PerShard` strategy labels) are positionally aligned and schedule-independent, and
/// the group-weighted queue ordering never leaks into results.
#[test]
fn batch_orders_by_work_items_without_changing_outcomes() {
    let budget = Budget(20_000_000);
    let params = small_params(97);
    let multi = decoupled_all_classes(4, 97);
    let single = CDatabase::single(random_ctable("T", &params));
    let member_multi = member_instance(&multi, &params);
    let member_single = member_instance(&single, &params);
    let requests = vec![
        // A single-group request first: the queue reorders (the 4-group requests have
        // more work items) but slots stay positional.
        batch::DecisionRequest::Membership {
            view: View::identity(single.clone()),
            instance: member_single.clone(),
        },
        batch::DecisionRequest::Membership {
            view: View::identity(multi.clone()),
            instance: member_multi.clone(),
        },
        batch::DecisionRequest::Possibility {
            view: View::identity(multi.clone()),
            facts: member_multi.clone(),
        },
    ];
    assert_eq!(requests[0].work_items(), 1);
    assert_eq!(requests[1].work_items(), 4);
    let mut reference: Option<Vec<batch::DecisionOutcome>> = None;
    for threads in [1, 2, 8] {
        let outcomes =
            batch::decide_all_with(&requests, &EngineConfig::with_threads(threads, budget));
        assert_eq!(outcomes[1].strategy, Strategy::PerShard { groups: 4 });
        assert_eq!(outcomes[2].strategy, Strategy::PerShard { groups: 4 });
        match &reference {
            None => reference = Some(outcomes),
            Some(r) => assert_eq!(*r, outcomes, "outcomes with {threads} threads"),
        }
    }
}

// ---------------------------------------------------------------------------------------
// Interned-symbol substrate (the `pw_relational::intern` layer the engine hot paths
// run on).
// ---------------------------------------------------------------------------------------

/// Round trip `Constant ↔ Sym` through a database's symbol-table handle, exactly as the
/// engine's front door does it.
#[test]
fn interner_round_trips_constants_through_the_database_handle() {
    let db = CDatabase::single(
        CTable::codd("R", 1, [vec![Term::from("alice")], vec![Term::from(7i64)]]).unwrap(),
    );
    for c in [
        Constant::str("alice"),
        Constant::str("never-seen-before-in-this-test"),
        Constant::int(7),
        Constant::Bool(true),
    ] {
        let sym = db.intern(&c);
        assert_eq!(db.resolve(sym), Some(c.clone()), "round trip of {c}");
        assert_eq!(db.intern(&c), sym, "interning is idempotent");
    }
    // The table's own row terms resolve through the same handle.
    let row_sym = db.tables()[0].tuples()[0].terms[0]
        .as_sym()
        .expect("constant term");
    assert_eq!(db.resolve(row_sym), Some(Constant::str("alice")));
}

/// Two databases on *private* symbol tables have isolated id spaces: the same raw id
/// means different strings, and neither table resolves the other's ids beyond its range.
#[test]
fn interner_isolates_private_symbol_tables_across_databases() {
    use std::sync::Arc;
    let sa = Arc::new(Symbols::new());
    let sb = Arc::new(Symbols::new());
    let tb = Arc::clone(sb.strings());
    let db_a = CDatabase::default().with_symbols(Arc::clone(&sa));
    let db_b = CDatabase::default().with_symbols(Arc::clone(&sb));

    let a0 = db_a.intern(&Constant::str("alpha"));
    let b0 = db_b.intern(&Constant::str("beta"));
    // Same dense index on both sides — ids are only meaningful relative to their table.
    assert_eq!(a0, b0, "both tables hand out their first id");
    assert_eq!(db_a.resolve(a0), Some(Constant::str("alpha")));
    assert_eq!(db_b.resolve(b0), Some(Constant::str("beta")));
    // A foreign id outside the table's range does not resolve.  The extra interns only
    // advance tb's id space past ta's.
    tb.intern_str("x");
    tb.intern_str("filler-1");
    tb.intern_str("filler-2");
    let far = Sym::Str(tb.intern_str("last"));
    assert_eq!(db_a.resolve(far), None, "id beyond the table's range");
    // Databases on different tables never compare equal, even when structurally empty.
    assert_ne!(db_a, db_b);
}

/// Concurrent interning/resolution through one shared handle, from scoped workers like
/// the parallel engine's: every thread sees one consistent id per string.
#[test]
fn interner_supports_concurrent_resolve_from_scoped_workers() {
    use std::sync::Arc;
    let db = CDatabase::default().with_symbols(Arc::new(Symbols::new()));
    let ids: Vec<Vec<Sym>> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| {
                let db = &db;
                scope.spawn(move || {
                    (0..128)
                        .map(|i| db.intern(&Constant::str(format!("worker-shared-{i}"))))
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for w in &ids[1..] {
        assert_eq!(*w, ids[0], "all workers agree on every id");
    }
    for (i, &sym) in ids[0].iter().enumerate() {
        assert_eq!(
            db.resolve(sym),
            Some(Constant::str(format!("worker-shared-{i}")))
        );
    }
}

/// Property (pinning): the interned hot path must decide exactly what the un-interned
/// semantics prescribe.  Two independent anchors on randomized workloads:
///
/// 1. decisions on a string-heavy database (every constant an interned string) equal the
///    decisions on its integer twin — interning is a constant bijection and QPTIME
///    queries are generic, so any divergence is an interning bug;
/// 2. on small instances, the membership decision equals the brute-force
///    `rep(·)`-enumeration reference, which resolves every symbol back to constants.
#[test]
fn interned_decisions_are_pinned_to_reference_semantics_on_random_workloads() {
    use possible_worlds::workloads::{stringify_database, stringify_instance};
    let budget = Budget(20_000_000);
    for (class, generate) in generators() {
        for seed in 20..26u64 {
            let params = small_params(seed);
            let db = CDatabase::single(generate("T", &params));
            let sdb = stringify_database(&db);
            let view = View::identity(db.clone());
            let sview = View::identity(sdb.clone());
            for instance in [
                member_instance(&db, &params),
                non_member_instance(&db, &params),
            ] {
                let sinstance = stringify_instance(&instance);

                let memb = membership::decide(&db, &instance, budget).unwrap();
                let smemb = membership::decide(&sdb, &sinstance, budget).unwrap();
                assert_eq!(memb, smemb, "membership on {class} seed {seed}");
                // The brute-force reference is exponential; it anchors the seeds whose
                // valuation count fits the enumeration budget.
                if let Ok(reference) = membership::by_enumeration(&sdb, &sinstance, 200_000) {
                    assert_eq!(smemb, reference, "vs enumeration on {class} seed {seed}");
                }

                for (label, fast, slow) in [
                    (
                        "possibility",
                        possibility::decide(&sview, &sinstance, budget).unwrap(),
                        possibility::decide(&view, &instance, budget).unwrap(),
                    ),
                    (
                        "certainty",
                        certainty::decide(&sview, &sinstance, budget).unwrap(),
                        certainty::decide(&view, &instance, budget).unwrap(),
                    ),
                    (
                        "uniqueness",
                        uniqueness::decide(&sview, &sinstance, budget).unwrap(),
                        uniqueness::decide(&view, &instance, budget).unwrap(),
                    ),
                ] {
                    assert_eq!(fast, slow, "{label} on {class} seed {seed}");
                }
            }
        }
    }
}
