//! Proposition 2.1 cross-checks: on small random databases, the specialised decision
//! procedures must agree with brute-force possible-world enumeration over Δ ∪ Δ′.

use possible_worlds::prelude::*;
use possible_worlds::workloads::{
    member_instance, non_member_instance, random_codd_table, random_ctable, random_etable,
    random_gtable, random_itable, TableParams,
};

fn small_params(seed: u64) -> TableParams {
    TableParams {
        rows: 4,
        arity: 2,
        constants: 3,
        null_density: 0.4,
        seed,
    }
}

fn budget() -> Budget {
    Budget(20_000_000)
}

/// Brute-force membership: enumerate all worlds and compare.
fn membership_by_enumeration(db: &CDatabase, instance: &Instance) -> bool {
    PossibleWorlds::new(db)
        .with_extra_constants(instance.active_domain())
        .enumerate(5_000_000)
        .expect("small instances enumerate within budget")
        .iter()
        .any(|w| w.same_facts(instance))
}

/// Brute-force possibility.
fn possibility_by_enumeration(db: &CDatabase, facts: &Instance) -> bool {
    PossibleWorlds::new(db)
        .with_extra_constants(facts.active_domain())
        .enumerate(5_000_000)
        .expect("small instances enumerate within budget")
        .iter()
        .any(|w| facts.is_subinstance_of(w))
}

/// Brute-force certainty.
fn certainty_by_enumeration(db: &CDatabase, facts: &Instance) -> bool {
    PossibleWorlds::new(db)
        .with_extra_constants(facts.active_domain())
        .enumerate(5_000_000)
        .expect("small instances enumerate within budget")
        .iter()
        .all(|w| facts.is_subinstance_of(w))
}

fn generators_with(p: &TableParams) -> Vec<(&'static str, CDatabase)> {
    vec![
        ("codd", CDatabase::single(random_codd_table("R", p))),
        ("e-table", CDatabase::single(random_etable("R", p))),
        ("i-table", CDatabase::single(random_itable("R", p))),
        ("g-table", CDatabase::single(random_gtable("R", p))),
        ("c-table", CDatabase::single(random_ctable("R", p))),
    ]
}

fn generators(seed: u64) -> Vec<(&'static str, CDatabase)> {
    generators_with(&small_params(seed))
}

#[test]
fn membership_agrees_with_enumeration_on_all_classes() {
    for seed in 0..4 {
        let p = small_params(seed);
        for (label, db) in generators(seed) {
            for candidate in [member_instance(&db, &p), non_member_instance(&db, &p)] {
                let fast = membership::decide(&db, &candidate, budget()).unwrap();
                let slow = membership_by_enumeration(&db, &candidate);
                assert_eq!(fast, slow, "membership mismatch on {label} seed {seed}");
            }
        }
    }
}

#[test]
fn possibility_and_certainty_agree_with_enumeration_on_all_classes() {
    for seed in 0..4 {
        let p = small_params(seed);
        for (label, db) in generators(seed) {
            let view = View::identity(db.clone());
            let world = member_instance(&db, &p);
            // Take a single fact of the member world as the pattern P.
            let mut pattern = Instance::new();
            if let Some((name, rel)) = world.iter().next() {
                if let Some(fact) = rel.iter().next() {
                    pattern.insert_fact(name.clone(), fact.clone()).unwrap();
                }
            }
            let fast_poss = possibility::decide(&view, &pattern, budget()).unwrap();
            let slow_poss = possibility_by_enumeration(&db, &pattern);
            assert_eq!(
                fast_poss, slow_poss,
                "possibility mismatch on {label} seed {seed}"
            );

            let fast_cert = certainty::decide(&view, &pattern, budget()).unwrap();
            let slow_cert = certainty_by_enumeration(&db, &pattern);
            assert_eq!(
                fast_cert, slow_cert,
                "certainty mismatch on {label} seed {seed}"
            );

            // Certainty implies possibility (the paper's remark in Section 1.2).
            if fast_cert {
                assert!(fast_poss, "certain but not possible on {label} seed {seed}");
            }
        }
    }
}

#[test]
fn uniqueness_agrees_with_enumeration_on_all_classes() {
    for seed in 0..4 {
        let p = small_params(seed);
        for (label, db) in generators(seed) {
            let view = View::identity(db.clone());
            let candidate = member_instance(&db, &p);
            let fast = uniqueness::decide(&view, &candidate, budget()).unwrap();
            let worlds = PossibleWorlds::new(&db)
                .with_extra_constants(candidate.active_domain())
                .enumerate(5_000_000)
                .unwrap();
            let slow = worlds.len() == 1 && worlds.iter().next().unwrap().same_facts(&candidate);
            assert_eq!(fast, slow, "uniqueness mismatch on {label} seed {seed}");
        }
    }
}

#[test]
fn containment_agrees_with_enumeration_on_small_pairs() {
    for seed in 0..3 {
        // Containment squares the enumeration cost (worlds of the left times worlds of the
        // right), so this cross-check uses even smaller databases than the other tests.
        let tiny = TableParams {
            rows: 3,
            arity: 2,
            constants: 2,
            null_density: 0.3,
            seed,
        };
        let dbs = generators_with(&tiny);
        for (label_left, left) in &dbs {
            for (label_right, right) in &dbs {
                let lv = View::identity(left.clone());
                let rv = View::identity(right.clone());
                let fast = containment::decide(&lv, &rv, budget()).unwrap();
                // Brute force: every world of the left must appear among the right's worlds.
                let shared: Vec<Constant> = left
                    .constants()
                    .into_iter()
                    .chain(right.constants())
                    .collect();
                let left_worlds = PossibleWorlds::new(left)
                    .with_extra_constants(shared.clone())
                    .enumerate(5_000_000)
                    .unwrap();
                // Enumerate the right-hand side's worlds once over the *joint* active domain
                // (both sides' constants plus enough fresh values for either side's nulls,
                // which `with_extra_constants` + the Δ′ padding of the enumerator provide);
                // re-running a per-world membership enumeration here squares the cost.
                let right_domain: Vec<Constant> = shared
                    .iter()
                    .cloned()
                    .chain(left_worlds.iter().flat_map(|w| w.active_domain()))
                    .collect();
                let right_worlds = PossibleWorlds::new(right)
                    .with_extra_constants(right_domain)
                    .enumerate(5_000_000)
                    .unwrap();
                let slow = left_worlds
                    .iter()
                    .all(|w| right_worlds.iter().any(|r| r.same_facts(w)));
                assert_eq!(
                    fast, slow,
                    "containment mismatch: {label_left} ⊆ {label_right}, seed {seed}"
                );
            }
        }
    }
}
