//! The work-stealing scheduler's equivalence suite: the dynamic scheduler (per-worker
//! deques, steal-half raids, subtree re-splitting) is pinned against the static
//! frontier split ([`EngineConfig::without_work_stealing`]) and the sequential search.
//!
//! What must hold:
//!
//! * on the skewed single-group families (`pw_workloads::skewed`) — the workloads the
//!   scheduler exists for — and on decoupled multi-relation and string-heavy
//!   workloads, stealing and static runs return bit-identical answers, strategies and
//!   certificates;
//! * budget exhaustion stays deterministic under stealing: a starved no-witness search
//!   reports [`DecisionError::BudgetExceeded`] on every repetition and thread count;
//! * the scheduler's [`EngineStats`] counters actually populate on a skewed search
//!   (steals succeed, subtrees re-split, the busy clock advances);
//! * randomized property: through `redecide_all` on random mutation streams, the
//!   stealing engine, the static engine and a fresh decide agree outcome-for-outcome.

use possible_worlds::core::{CDatabase, View};
use possible_worlds::decide::batch::{decide_all_with, DecisionRequest, Session};
use possible_worlds::decide::{
    membership, possibility, Budget, DecisionError, Engine, EngineConfig,
};
use possible_worlds::prelude::*;
use possible_worlds::workloads::{
    coupled_heavy_membership, member_instance, mutation_stream, skewed_membership,
    skewed_possibility, stringify_database, stringify_instance, SkewedParams, TableParams,
};
use proptest::prelude::*;

/// Small enough for a test, skewed enough to trigger re-splitting: the selector fan
/// (12) exceeds a 2-thread static frontier target, and the heavy branch refutation is
/// a few thousand nodes.
fn small_skew() -> SkewedParams {
    SkewedParams {
        selectors: 12,
        heavy: 8,
        edge_density: 0.1,
        seed: 3,
    }
}

fn params(seed: u64) -> TableParams {
    TableParams {
        rows: 3,
        arity: 2,
        constants: 3,
        null_density: 0.4,
        seed,
    }
}

/// Standing requests covering all five problems against `db`.
fn requests_for(db: &CDatabase, member: &Instance) -> Vec<DecisionRequest> {
    let view = View::identity(db.clone());
    vec![
        DecisionRequest::Membership {
            view: view.clone(),
            instance: member.clone(),
        },
        DecisionRequest::Possibility {
            view: view.clone(),
            facts: member.clone(),
        },
        DecisionRequest::Certainty {
            view: view.clone(),
            facts: member.clone(),
        },
        DecisionRequest::Uniqueness {
            view: view.clone(),
            instance: member.clone(),
        },
        DecisionRequest::Containment {
            left: view.clone(),
            right: view,
        },
    ]
}

/// On the skewed families — integer and string-heavy — the stealing scheduler, the
/// static frontier split and the sequential search agree on answers and strategies at
/// every thread count.
#[test]
fn stealing_matches_static_on_skewed_workloads() {
    let budget = Budget(50_000_000);
    let p = small_skew();
    for (family, (db, instance)) in [
        ("skewed_membership", skewed_membership(&p)),
        ("coupled_heavy", coupled_heavy_membership(&p)),
    ] {
        for (variant, db, instance) in [
            ("int", db.clone(), instance.clone()),
            (
                "str",
                stringify_database(&db),
                stringify_instance(&instance),
            ),
        ] {
            let sequential = membership::decide(&db, &instance, budget).unwrap();
            let view = View::identity(db);
            for threads in [2, 8] {
                let stealing = Engine::new(EngineConfig::with_threads(threads, budget));
                let static_split = Engine::new(
                    EngineConfig::with_threads(threads, budget).without_work_stealing(),
                );
                let stolen = membership::view_membership_with(&view, &instance, &stealing);
                let split = membership::view_membership_with(&view, &instance, &static_split);
                let ctx = format!("{family}/{variant} with {threads} threads");
                assert_eq!(
                    stolen.answer.unwrap(),
                    sequential,
                    "stealing vs sequential, {ctx}"
                );
                assert_eq!(
                    split.answer.unwrap(),
                    sequential,
                    "static vs sequential, {ctx}"
                );
                assert_eq!(stolen.strategy, split.strategy, "strategy, {ctx}");
            }
        }
    }
    let (db, facts) = skewed_possibility(&p);
    for (variant, db, facts) in [
        ("int", db.clone(), facts.clone()),
        ("str", stringify_database(&db), stringify_instance(&facts)),
    ] {
        let view = View::identity(db.clone());
        let sequential = possibility::decide(&view, &facts, budget).unwrap();
        assert!(!sequential, "the skewed possibility family is always false");
        for threads in [2, 8] {
            let stealing = Engine::new(EngineConfig::with_threads(threads, budget));
            let static_split =
                Engine::new(EngineConfig::with_threads(threads, budget).without_work_stealing());
            let stolen = possibility::decide_with(&view, &facts, &stealing);
            let split = possibility::decide_with(&view, &facts, &static_split);
            let ctx = format!("skewed_possibility/{variant} with {threads} threads");
            assert_eq!(
                stolen.answer.unwrap(),
                sequential,
                "stealing vs sequential, {ctx}"
            );
            assert_eq!(
                split.answer.unwrap(),
                sequential,
                "static vs sequential, {ctx}"
            );
            assert_eq!(stolen.strategy, split.strategy, "strategy, {ctx}");
        }
    }
}

/// On decoupled multi-relation workloads, certified stealing and static batches are
/// bit-identical — answers, strategies *and* certificates.
#[test]
fn stealing_matches_static_certificates_on_decoupled_workloads() {
    for seed in [41u64, 43] {
        let db = possible_worlds::workloads::decoupled_multirelation(4, &params(seed));
        let member = member_instance(&db, &params(seed));
        let requests = requests_for(&db, &member);
        for threads in [2, 8] {
            let stealing_cfg = EngineConfig::with_threads(threads, Budget(20_000_000)).certified();
            let static_cfg = stealing_cfg.clone().without_work_stealing();
            let stolen = decide_all_with(&requests, &stealing_cfg);
            let split = decide_all_with(&requests, &static_cfg);
            assert_eq!(
                stolen, split,
                "certified outcomes diverged (seed {seed}, {threads} threads)"
            );
            assert!(stolen.iter().all(|o| o.answer.is_ok()));
        }
    }
}

/// A possibility question with no witness over an assignment tree of roughly
/// `(rows + 1)^rows` nodes — the budget-exhaustion workhorse shared with the
/// parallel-engine suite.
fn oversized_cover_request(rows: usize) -> (View, Instance) {
    let mut vars = VarGen::new();
    let xs: Vec<Variable> = (0..rows).map(|_| vars.fresh()).collect();
    let tuples: Vec<Vec<Term>> = xs.iter().map(|&x| vec![Term::Var(x)]).collect();
    let table =
        CTable::i_table("R", 1, Conjunction::new([Atom::neq(xs[0], xs[1])]), tuples).unwrap();
    let view = View::identity(CDatabase::single(table));
    let mut rel = Relation::empty(1);
    for i in 0..=(rows as i64) {
        rel.insert(Tuple::new([i.into()])).unwrap();
    }
    (view, Instance::single("R", rel))
}

/// Budget exhaustion is deterministic under stealing: when no witness exists and the
/// tree dwarfs the budget, every thread count and repetition exhausts; with an ample
/// budget, every configuration reports the same `false`.
#[test]
fn budget_exhaustion_is_deterministic_under_stealing() {
    let (view, facts) = oversized_cover_request(8);
    for threads in [2, 8] {
        for repetition in 0..3 {
            let starved = Engine::new(EngineConfig::with_threads(threads, Budget(500)));
            assert_eq!(
                possibility::decide_with(&view, &facts, &starved).answer,
                Err(DecisionError::BudgetExceeded),
                "starved stealing run must exhaust ({threads} threads, rep {repetition})"
            );
            let ample = Engine::new(EngineConfig::with_threads(threads, Budget(50_000_000)));
            assert_eq!(
                possibility::decide_with(&view, &facts, &ample).answer,
                Ok(false),
                "ample stealing run must complete ({threads} threads, rep {repetition})"
            );
        }
    }
}

/// The scheduler's live counters populate on a skewed search at 8 threads: workers go
/// hungry and raid (steals succeed), the busy branch re-splits for them, and the busy
/// clock records a nonzero critical path no longer than the total.
#[test]
fn stealing_counters_populate_on_a_skewed_search() {
    let (db, instance) = skewed_membership(&small_skew());
    let view = View::identity(db);
    let engine = Engine::new(EngineConfig::with_threads(8, Budget(1_000_000_000)));
    let decision = membership::view_membership_with(&view, &instance, &engine);
    assert_eq!(decision.answer, Ok(false));
    let stats = engine.stats();
    assert!(
        stats.steals_attempted >= stats.steals_succeeded,
        "attempts bound successes: {stats:?}"
    );
    assert!(stats.steals_succeeded > 0, "no steal landed: {stats:?}");
    assert!(
        stats.resplits > 0,
        "the deep branch never re-split: {stats:?}"
    );
    assert!(
        stats.busy_total_ns > 0,
        "busy clock never advanced: {stats:?}"
    );
    assert!(
        stats.busy_max_ns > 0 && stats.busy_max_ns <= stats.busy_total_ns,
        "critical path must be positive and bounded by total: {stats:?}"
    );

    // The pinned static path must leave the stealing-only counters at zero.
    let static_engine =
        Engine::new(EngineConfig::with_threads(8, Budget(1_000_000_000)).without_work_stealing());
    let decision = membership::view_membership_with(&view, &instance, &static_engine);
    assert_eq!(decision.answer, Ok(false));
    let stats = static_engine.stats();
    assert_eq!(stats.steals_attempted, 0, "static path must not steal");
    assert_eq!(stats.resplits, 0, "static path must not re-split");
    assert!(stats.busy_total_ns > 0, "static busy clock still advances");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Random mutation streams: through `redecide_all`, the stealing engine, the static
    // engine and a fresh decide stay outcome-identical on all five problems.
    #[test]
    fn stealing_static_and_fresh_redecisions_agree(
        (seed, delta_count) in (0u64..500, 1usize..4)
    ) {
        let p = params(seed);
        let stream = mutation_stream(4, &p, delta_count);
        let member = member_instance(&stream.base, &p);
        let stealing_cfg = EngineConfig::with_threads(4, Budget(5_000_000));
        let static_cfg = stealing_cfg.clone().without_work_stealing();
        let stealing = Session::sized(&stealing_cfg, 5);
        let static_split = Session::sized(&static_cfg, 5);
        let mut cur = stream.base.clone();
        let _ = stealing.decide_all(&requests_for(&cur, &member));
        let _ = static_split.decide_all(&requests_for(&cur, &member));
        for (i, delta) in stream.deltas.iter().enumerate() {
            let requests = requests_for(&cur, &member);
            let stolen = stealing
                .redecide_all(&cur, delta, &requests)
                .expect("stream deltas apply in sequence");
            let split = static_split
                .redecide_all(&cur, delta, &requests)
                .expect("stream deltas apply in sequence");
            prop_assert_eq!(
                &stolen.outcomes, &split.outcomes,
                "stealing vs static redecide #{} diverged (seed {})", i, seed
            );
            let (fresh_db, _) = cur.apply(delta).expect("stream deltas apply in sequence");
            let fresh = Session::sized(&static_cfg, 5).decide_all(&requests_for(&fresh_db, &member));
            prop_assert_eq!(
                &stolen.outcomes, &fresh,
                "stealing redecide #{} diverged from a fresh decide (seed {})", i, seed
            );
            cur = stolen.db;
        }
    }
}
