//! Certificate corruption harness: the independent checker must *reject* tampered
//! evidence.
//!
//! The companion suites (`property_invariants`, `incremental`) establish the positive
//! half — every answer a certifying session produces carries a certificate `pw_check`
//! accepts.  This suite establishes the negative half, without which the positive one
//! is vacuous (a checker accepting everything passes it): for each certificate kind we
//! obtain genuine evidence from the engine, verify it is accepted, then corrupt it the
//! way a buggy or lying engine would — swap a witness binding, drop a pair from a
//! containment decomposition, point a counter-world at the wrong table's valuation —
//! and assert the checker refuses each corruption.

use possible_worlds::decide::{self, Budget, Certificate, DecisionRequest, EngineConfig, PairCert};
use possible_worlds::prelude::*;
use possible_worlds::{check, check_claim};

fn ample() -> EngineConfig {
    EngineConfig::sequential(Budget(5_000_000))
}

/// Decide one request under a certifying session; the answer must be delivered and
/// certified.
fn decide_certified(request: &DecisionRequest) -> (bool, Certificate) {
    let mut outcomes =
        decide::Session::certifying(&ample(), 1).decide_all(std::slice::from_ref(request));
    let outcome = outcomes.remove(0);
    (
        outcome.answer.expect("the budget is ample"),
        outcome.certificate.expect("certifying sessions certify"),
    )
}

fn assert_accepts(request: &DecisionRequest, answer: bool, certificate: &Certificate) {
    check::verify(&check_claim(request, answer), certificate)
        .unwrap_or_else(|e| panic!("genuine certificate rejected: {e}"));
}

fn assert_rejects(request: &DecisionRequest, answer: bool, certificate: &Certificate, what: &str) {
    assert!(
        check::verify(&check_claim(request, answer), certificate).is_err(),
        "checker accepted a corrupted certificate: {what}"
    );
}

/// `R = {(x, 1), (2, y)}` — a Codd-table with two independent nulls.
fn two_null_codd(vars: &mut VarGen) -> (CDatabase, Variable, Variable) {
    let x = vars.fresh();
    let y = vars.fresh();
    let table = CTable::codd(
        "R",
        2,
        [
            vec![Term::Var(x), Term::constant(1)],
            vec![Term::constant(2), Term::Var(y)],
        ],
    )
    .expect("fresh nulls");
    (CDatabase::single(table), x, y)
}

fn instance(facts: impl IntoIterator<Item = (i64, i64)>) -> Instance {
    Instance::single(
        "R",
        Relation::from_tuples(2, facts.into_iter().map(|(a, b)| tup![a, b])),
    )
}

#[test]
fn membership_witness_rejected_after_binding_swap() {
    let (db, x, y) = two_null_codd(&mut VarGen::new());
    let request = DecisionRequest::Membership {
        view: View::identity(db),
        instance: instance([(0, 1), (2, 3)]),
    };
    let (answer, certificate) = decide_certified(&request);
    assert!(answer, "{{x→0, y→3}} makes the instance a member");
    assert_accepts(&request, answer, &certificate);
    let Certificate::Witness { valuation } = &certificate else {
        panic!("yes-membership must carry a witness, got {certificate:?}");
    };
    assert_eq!(valuation.get(x), Some(Constant::Int(0)));
    assert_eq!(valuation.get(y), Some(Constant::Int(3)));

    // Swap the two bindings: still a total valuation of the same variables, but the
    // induced world is {(3,1), (2,0)} ≠ I.
    let swapped = Certificate::Witness {
        valuation: Valuation::from_pairs([(x, Constant::Int(3)), (y, Constant::Int(0))]),
    };
    assert_rejects(&request, answer, &swapped, "swapped membership witness");

    // Drop one binding: the valuation no longer induces a world at all.
    let partial = Certificate::Witness {
        valuation: Valuation::from_pairs([(x, Constant::Int(0))]),
    };
    assert_rejects(&request, answer, &partial, "partial membership witness");

    // Wrong kind: "exhaustive search" is never evidence for a yes-membership.
    assert_rejects(
        &request,
        answer,
        &Certificate::Exhaustive,
        "exhaustive offered for yes-membership",
    );
}

#[test]
fn possibility_witness_rejected_when_world_misses_a_fact() {
    let (db, x, _) = two_null_codd(&mut VarGen::new());
    let request = DecisionRequest::Possibility {
        view: View::identity(db),
        facts: instance([(0, 1)]),
    };
    let (answer, certificate) = decide_certified(&request);
    assert!(answer, "x→0 covers the fact");
    assert_accepts(&request, answer, &certificate);
    let Certificate::Witness { valuation } = &certificate else {
        panic!("yes-possibility must carry a witness, got {certificate:?}");
    };

    // Rebind x away from 0: the induced world no longer contains (0, 1).
    let mut tampered = valuation.clone();
    tampered.assign(x, Constant::Int(7));
    let tampered = Certificate::Witness {
        valuation: tampered,
    };
    assert_rejects(&request, answer, &tampered, "rebound possibility witness");

    // Wrong kind: EmptyRep claims rep(𝒟) = ∅, but the globals are satisfiable.
    assert_rejects(
        &request,
        answer,
        &Certificate::EmptyRep,
        "empty-rep offered for a satisfiable database",
    );
}

#[test]
fn certainty_counter_world_rejected_when_pointed_at_the_wrong_table() {
    // Two variable-disjoint tables; the uncertain fact lives in R.
    let mut vars = VarGen::new();
    let x = vars.fresh();
    let y = vars.fresh();
    let r = CTable::codd("R", 1, [vec![Term::Var(x)]]).expect("fresh null");
    let s = CTable::codd("S", 1, [vec![Term::Var(y)]]).expect("fresh null");
    let db = CDatabase::new([r, s]);
    let fact = Instance::single("R", Relation::from_tuples(1, [tup![0]]));
    let request = DecisionRequest::Certainty {
        view: View::identity(db),
        facts: fact,
    };
    let (answer, certificate) = decide_certified(&request);
    assert!(!answer, "x→1 is a world where R misses (0)");
    assert_accepts(&request, answer, &certificate);
    let Certificate::CounterWorld { valuation } = &certificate else {
        panic!("no-certainty must carry a counter-world, got {certificate:?}");
    };

    // Point the counter-world at the wrong table: keep S's binding, but redirect R's
    // null to the claimed fact itself.  The valuation is still total and still induces
    // a world — one that *contains* (0), so it refutes nothing.
    let mut tampered = valuation.clone();
    tampered.assign(x, Constant::Int(0));
    let tampered = Certificate::CounterWorld {
        valuation: tampered,
    };
    assert_rejects(
        &request,
        answer,
        &tampered,
        "counter-world containing the fact",
    );

    // Drop R's binding entirely (evidence only about S): no world is induced.
    let only_s = Certificate::CounterWorld {
        valuation: Valuation::from_pairs([(y, valuation.get(y).expect("total counter-world"))]),
    };
    assert_rejects(
        &request,
        answer,
        &only_s,
        "counter-world about the wrong table",
    );
}

#[test]
fn uniqueness_counter_world_rejected_when_it_reproduces_the_instance() {
    let mut vars = VarGen::new();
    let x = vars.fresh();
    let table = CTable::codd(
        "R",
        2,
        [
            vec![Term::Var(x), Term::constant(1)],
            vec![Term::constant(2), Term::constant(3)],
        ],
    )
    .expect("fresh null");
    let request = DecisionRequest::Uniqueness {
        view: View::identity(CDatabase::single(table)),
        instance: instance([(0, 1), (2, 3)]),
    };
    let (answer, certificate) = decide_certified(&request);
    assert!(!answer, "x is free, so the world is not unique");
    assert_accepts(&request, answer, &certificate);
    let Certificate::CounterWorld { valuation } = &certificate else {
        panic!("no-uniqueness must carry a counter-world, got {certificate:?}");
    };
    assert_ne!(
        valuation.get(x),
        Some(Constant::Int(0)),
        "the genuine counter-world differs from the instance"
    );

    // Redirect the null back onto the instance: the induced world is exactly I, which
    // is evidence *for* uniqueness of this world, not against it.
    let tampered = Certificate::CounterWorld {
        valuation: Valuation::from_pairs([(x, Constant::Int(0))]),
    };
    assert_rejects(
        &request,
        answer,
        &tampered,
        "counter-world equal to the instance",
    );
}

/// A variable-disjoint Codd-table `R` and i-table `S` — a two-group decoupled
/// database.  The inequality global on `S` keeps the whole right side above e-tables,
/// so containment cannot shortcut through the freeze theorem (Theorem 4.1 needs an
/// e-table right side) and must decompose shard group by shard group.  The groups are
/// deliberately *asymmetric*: `R`'s pair resolves through freeze and carries a
/// variable-specific witness, `S`'s through exhaustive enumeration — so their
/// sub-certificates are not interchangeable.
fn two_group_db(vars: &mut VarGen) -> CDatabase {
    let x = vars.fresh();
    let y = vars.fresh();
    let r = CTable::codd("R", 1, [vec![Term::Var(x)]]).expect("fresh null");
    let s = CTable::new(
        "S",
        1,
        Conjunction::new([Atom::neq(y, 5)]),
        [CTuple::of_terms([Term::Var(y)])],
    )
    .expect("arity matches");
    CDatabase::new([r, s])
}

#[test]
fn containment_decomposition_rejected_after_dropping_a_pair() {
    let db = two_group_db(&mut VarGen::new());
    let request = DecisionRequest::Containment {
        left: View::identity(db.clone()),
        right: View::identity(db),
    };
    let (answer, certificate) = decide_certified(&request);
    assert!(answer, "every representation contains itself");
    assert_accepts(&request, answer, &certificate);
    let Certificate::Decomposition { pairs } = &certificate else {
        panic!("aligned two-group containment must decompose, got {certificate:?}");
    };
    assert_eq!(pairs.len(), 2, "one pair per aligned shard group");

    // Drop one pair: the decomposition no longer covers both sides.
    let dropped = Certificate::Decomposition {
        pairs: pairs[..1].to_vec(),
    };
    assert_rejects(
        &request,
        answer,
        &dropped,
        "decomposition with a dropped pair",
    );

    // Duplicate a pair instead (same length as the original): still not a cover.
    let duplicated = Certificate::Decomposition {
        pairs: vec![pairs[0].clone(), pairs[0].clone()],
    };
    assert_rejects(
        &request,
        answer,
        &duplicated,
        "decomposition with a duplicated pair",
    );

    // Cross-wire the relation keys: each sub-certificate now claims the other group.
    let crossed = Certificate::Decomposition {
        pairs: vec![
            PairCert {
                relations: pairs[1].relations.clone(),
                certificate: pairs[0].certificate.clone(),
            },
            PairCert {
                relations: pairs[0].relations.clone(),
                certificate: pairs[1].certificate.clone(),
            },
        ],
    };
    assert_rejects(
        &request,
        answer,
        &crossed,
        "decomposition with cross-wired pairs",
    );
}

#[test]
fn containment_counter_world_rejected_when_it_violates_the_left_globals() {
    // Left: R = {(x, 1)} with the global x = 0 — the single world {(0, 1)}.
    // Right: R = {(5, 5)} — so the left is not contained.
    let mut vars = VarGen::new();
    let x = vars.fresh();
    let left = CTable::new(
        "R",
        2,
        Conjunction::new([Atom::eq(x, 0)]),
        [CTuple::of_terms([Term::Var(x), Term::constant(1)])],
    )
    .expect("arity matches");
    let right =
        CTable::codd("R", 2, [vec![Term::constant(5), Term::constant(5)]]).expect("ground row");
    let request = DecisionRequest::Containment {
        left: View::identity(CDatabase::single(left)),
        right: View::identity(CDatabase::single(right)),
    };
    let (answer, certificate) = decide_certified(&request);
    assert!(!answer, "{{(0,1)}} is not a world of the right side");
    assert_accepts(&request, answer, &certificate);
    let Certificate::CounterWorld { .. } = &certificate else {
        panic!("no-containment must carry a counter-world, got {certificate:?}");
    };

    // A valuation violating the left side's global condition induces no world of the
    // left representation — the constructive half the checker owns must refuse it.
    let tampered = Certificate::CounterWorld {
        valuation: Valuation::from_pairs([(x, Constant::Int(9))]),
    };
    assert_rejects(
        &request,
        answer,
        &tampered,
        "counter-world violating left globals",
    );
}

#[test]
fn frozen_membership_rejected_after_tampering_the_inner_witness() {
    // Left and right are the same one-null table up to variable identity; Theorem 4.1
    // shows containment by freezing the left and exhibiting K₀ ∈ rep(right).
    let mut vars = VarGen::new();
    let x = vars.fresh();
    let y = vars.fresh();
    let left = CTable::codd("R", 1, [vec![Term::Var(x)]]).expect("fresh null");
    let right = CTable::codd("R", 1, [vec![Term::Var(y)]]).expect("fresh null");
    let request = DecisionRequest::Containment {
        left: View::identity(CDatabase::single(left)),
        right: View::identity(CDatabase::single(right)),
    };
    let (answer, certificate) = decide_certified(&request);
    assert!(answer, "one free null contains another");
    assert_accepts(&request, answer, &certificate);
    let Certificate::FrozenMembership { witness } = &certificate else {
        panic!("single-group yes-containment goes through freeze, got {certificate:?}");
    };
    let Certificate::Witness { valuation } = witness.as_ref() else {
        panic!("the inner evidence is a membership witness, got {witness:?}");
    };

    // Rebind the right-hand null away from the frozen constant: σ(right) ≠ K₀.
    let mut tampered = valuation.clone();
    tampered.assign(y, Constant::Int(-41));
    let tampered = Certificate::FrozenMembership {
        witness: Box::new(Certificate::Witness {
            valuation: tampered,
        }),
    };
    assert_rejects(
        &request,
        answer,
        &tampered,
        "tampered frozen-membership witness",
    );

    // Wrong inner kind: the freeze argument cannot rest on an exhaustive search.
    let wrong_kind = Certificate::FrozenMembership {
        witness: Box::new(Certificate::Exhaustive),
    };
    assert_rejects(
        &request,
        answer,
        &wrong_kind,
        "non-witness inside frozen membership",
    );
}
