//! The robustness suite: deterministic fault injection ([`FaultPlan`]), wall-clock
//! deadlines, cooperative cancellation, panic isolation, bounded-memo eviction, and
//! budget-escalating retry — exercised end to end through the facade crate.
//!
//! What must hold:
//!
//! * an injected worker panic fails **only its own request** — sibling outcomes are
//!   bit-identical to a fault-free run, and the session stays usable afterwards;
//! * a deadline-exceeded request reports [`DecisionError::DeadlineExceeded`] and
//!   returns within 2× the configured deadline;
//! * injected budget/deadline exhaustion at a chosen tick is deterministic across
//!   repetitions and thread counts;
//! * a memo capped at 1/4 of the working set (and even an eviction storm clamping it
//!   to one entry) still satisfies `redecide_all == fresh decide_all`, with every
//!   certificate accepted by the independent `pw_check` checker;
//! * [`Session::decide_all_with_retry`] turns budget-exceeded into the same answer
//!   *and certificate* an unconstrained run produces, then restores the budget;
//! * injected steals and subtree re-splits land on the work-stealing scheduler
//!   (observable in [`Engine::stats`]) without changing answers, and a panic inside a
//!   stolen subtree is contained to `WorkerPanicked`.

use possible_worlds::core::{CDatabase, View};
use possible_worlds::decide::batch::{decide_all_with, DecisionRequest, Session};
use possible_worlds::decide::{
    possibility, Budget, CancelToken, DecisionError, Engine, EngineConfig, FaultPlan,
};
use possible_worlds::prelude::*;
use possible_worlds::workloads::{member_instance, mutation_stream, TableParams};
use possible_worlds::{check, check_claim};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn params(seed: u64) -> TableParams {
    TableParams {
        rows: 3,
        arity: 2,
        constants: 3,
        null_density: 0.4,
        seed,
    }
}

/// Standing requests covering all five problems against `db`.
fn requests_for(db: &CDatabase, member: &Instance) -> Vec<DecisionRequest> {
    let view = View::identity(db.clone());
    vec![
        DecisionRequest::Membership {
            view: view.clone(),
            instance: member.clone(),
        },
        DecisionRequest::Possibility {
            view: view.clone(),
            facts: member.clone(),
        },
        DecisionRequest::Certainty {
            view: view.clone(),
            facts: member.clone(),
        },
        DecisionRequest::Uniqueness {
            view: view.clone(),
            instance: member.clone(),
        },
        DecisionRequest::Containment {
            left: view.clone(),
            right: view,
        },
    ]
}

/// A possibility question with no witness over an assignment tree of roughly
/// `(rows + 1)^rows` nodes: `rows + 1` facts can never be covered by `rows` rows, but
/// the search only learns that by exhausting the tree.  The satisfiable global
/// inequality makes the table an i-table, forcing the general backtracking search.
fn oversized_cover_request(rows: usize) -> (View, Instance) {
    let mut vars = VarGen::new();
    let xs: Vec<Variable> = (0..rows).map(|_| vars.fresh()).collect();
    let tuples: Vec<Vec<Term>> = xs.iter().map(|&x| vec![Term::Var(x)]).collect();
    let table =
        CTable::i_table("R", 1, Conjunction::new([Atom::neq(xs[0], xs[1])]), tuples).unwrap();
    let view = View::identity(CDatabase::single(table));
    let mut rel = Relation::empty(1);
    for i in 0..=(rows as i64) {
        rel.insert(Tuple::new([i.into()])).unwrap();
    }
    (view, Instance::single("R", rel))
}

fn hard_request(rows: usize) -> DecisionRequest {
    let (view, facts) = oversized_cover_request(rows);
    DecisionRequest::Possibility { view, facts }
}

/// Verify every delivered answer of a certifying run against the independent checker.
fn assert_certificates_accepted(
    requests: &[DecisionRequest],
    outcomes: &[possible_worlds::decide::DecisionOutcome],
    stage: &str,
) {
    for (request, outcome) in requests.iter().zip(outcomes) {
        let Ok(answer) = outcome.answer else { continue };
        let claim = check_claim(request, answer);
        let certificate = outcome
            .certificate
            .as_ref()
            .unwrap_or_else(|| panic!("uncertified {} answer ({stage})", claim.problem.name()));
        check::verify(&claim, certificate).unwrap_or_else(|e| {
            panic!(
                "pw_check rejected a {} certificate ({stage}): {e}",
                claim.problem.name()
            )
        });
    }
}

#[test]
fn injected_request_panic_fails_only_its_own_request() {
    let base = decoupled_db(11);
    let member = member_instance(&base, &params(11));
    let requests = requests_for(&base, &member);
    for threads in [1, 4] {
        let cfg = EngineConfig::with_threads(threads, Budget(5_000_000)).certified();
        let plain = decide_all_with(&requests, &cfg);
        let faulted = decide_all_with(
            &requests,
            &cfg.clone().with_faults(Arc::new(FaultPlan {
                panic_on_request: Some(2),
                ..FaultPlan::seeded(11)
            })),
        );
        assert_eq!(plain.len(), faulted.len());
        for (i, (p, f)) in plain.iter().zip(&faulted).enumerate() {
            if i == 2 {
                assert!(
                    matches!(f.answer, Err(DecisionError::WorkerPanicked(_))),
                    "request 2 must fail with WorkerPanicked, got {:?}",
                    f.answer
                );
                assert!(f.certificate.is_none());
            } else {
                assert_eq!(p, f, "sibling {i} diverged from the fault-free run");
            }
        }
    }
}

#[test]
fn session_stays_usable_after_a_panicked_batch() {
    let base = decoupled_db(13);
    let member = member_instance(&base, &params(13));
    let requests = requests_for(&base, &member);
    let cfg = EngineConfig::sequential(Budget(5_000_000));
    let reference = decide_all_with(&requests, &cfg);

    let session = Session::sized(
        &cfg.clone().with_faults(Arc::new(FaultPlan {
            panic_on_request: Some(0),
            ..FaultPlan::seeded(13)
        })),
        requests.len(),
    );
    // Two batches on one session: the panic recurs (the plan is deterministic), the
    // siblings replay through the memo the panicked request could not poison.
    for round in 0..2 {
        let outcomes = session.decide_all(&requests);
        assert!(
            matches!(outcomes[0].answer, Err(DecisionError::WorkerPanicked(_))),
            "round {round}: request 0 must fail with WorkerPanicked"
        );
        for (i, (r, o)) in reference.iter().zip(&outcomes).enumerate().skip(1) {
            assert_eq!(
                r.answer, o.answer,
                "round {round}: sibling {i} diverged after the panic"
            );
            assert_eq!(r.strategy, o.strategy);
        }
    }
}

#[test]
fn deadline_exceeded_returns_within_twice_the_deadline() {
    // ~13^12 nodes: unfinishable within the deadline, and the budget is far too large
    // to exhaust first — only the wall clock can stop this search.
    let (view, facts) = oversized_cover_request(12);
    let deadline = Duration::from_millis(150);
    let engine = Engine::new(EngineConfig::sequential(Budget(1 << 40)).with_deadline(deadline));
    let start = Instant::now();
    let decision = possibility::decide_with(&view, &facts, &engine);
    let elapsed = start.elapsed();
    assert_eq!(decision.answer, Err(DecisionError::DeadlineExceeded));
    assert!(
        elapsed < deadline * 2,
        "deadline-exceeded took {elapsed:?}, over 2x the {deadline:?} deadline"
    );
}

#[test]
fn injected_exhaustion_is_deterministic() {
    let (view, facts) = oversized_cover_request(8);
    for threads in [1, 4] {
        for repetition in 0..3 {
            let budget_plan = Arc::new(FaultPlan {
                budget_exhaust_at_tick: Some(2_000),
                ..FaultPlan::seeded(8)
            });
            let engine = Engine::new(
                EngineConfig::with_threads(threads, Budget(1 << 40)).with_faults(budget_plan),
            );
            assert_eq!(
                possibility::decide_with(&view, &facts, &engine).answer,
                Err(DecisionError::BudgetExceeded),
                "injected budget exhaustion ({threads} threads, rep {repetition})"
            );
            let deadline_plan = Arc::new(FaultPlan {
                deadline_at_tick: Some(2_000),
                ..FaultPlan::seeded(8)
            });
            let engine = Engine::new(
                EngineConfig::with_threads(threads, Budget(1 << 40)).with_faults(deadline_plan),
            );
            assert_eq!(
                possibility::decide_with(&view, &facts, &engine).answer,
                Err(DecisionError::DeadlineExceeded),
                "injected deadline exhaustion ({threads} threads, rep {repetition})"
            );
        }
    }
}

#[test]
fn cancellation_stops_the_search() {
    let (view, facts) = oversized_cover_request(12);
    let token = Arc::new(CancelToken::new());
    token.cancel();
    let engine =
        Engine::new(EngineConfig::sequential(Budget(1 << 40)).with_cancel(Arc::clone(&token)));
    let decision = possibility::decide_with(&view, &facts, &engine);
    assert_eq!(decision.answer, Err(DecisionError::Cancelled));
}

#[test]
fn retry_escalates_budget_and_matches_the_unconstrained_run() {
    let base = decoupled_db(17);
    let member = member_instance(&base, &params(17));
    let mut requests = requests_for(&base, &member);
    // An oversized search (~10^5 nodes) that a 500-node budget cannot finish but a
    // few 4x escalations can.
    requests.push(hard_request(8));

    let ample = Session::certifying(
        &EngineConfig::sequential(Budget(50_000_000)),
        requests.len(),
    );
    let reference = ample.decide_all(&requests);
    assert!(reference.iter().all(|o| o.answer.is_ok()));

    let starved_cfg = EngineConfig::sequential(Budget(500));
    let mut session = Session::certifying(&starved_cfg, requests.len());
    let first = session.decide_all(&requests);
    assert!(
        first
            .iter()
            .any(|o| o.answer == Err(DecisionError::BudgetExceeded)),
        "the starved first pass must exhaust at least one request"
    );
    let retried = session.decide_all_with_retry(&requests, 6);
    // Bit-identical to the unconstrained run: answers, strategies, certificates.
    assert_eq!(retried, reference);
    // The configured budget is restored after the escalation passes.
    assert_eq!(session.engine().config().budget, Budget(500));
}

fn decoupled_db(seed: u64) -> CDatabase {
    possible_worlds::workloads::decoupled_multirelation(4, &params(seed))
}

// ---------------------------------------------------------------------------------------
// Work-stealing scheduler faults: forced steals, forced re-splits, and a panic inside a
// stolen subtree.  The skewed single-group family keeps one worker busy long enough for
// the injections to land on a live scheduler.
// ---------------------------------------------------------------------------------------

fn skewed_case() -> (View, Instance, bool) {
    let p = possible_worlds::workloads::SkewedParams {
        selectors: 12,
        heavy: 8,
        edge_density: 0.1,
        seed: 3,
    };
    let (db, instance) = possible_worlds::workloads::skewed_membership(&p);
    (View::identity(db), instance, false)
}

/// A forced steal at a chosen tick lands (the counters record a successful raid) and
/// never changes the answer, across repetitions.
#[test]
fn injected_steal_is_observable_and_sound() {
    let (view, instance, expected) = skewed_case();
    for repetition in 0..2 {
        let engine = Engine::new(
            EngineConfig::with_threads(4, Budget(1_000_000_000)).with_faults(Arc::new(FaultPlan {
                steal_at_tick: Some(64),
                ..FaultPlan::seeded(5)
            })),
        );
        let decision =
            possible_worlds::decide::membership::view_membership_with(&view, &instance, &engine);
        assert_eq!(decision.answer, Ok(expected), "rep {repetition}");
        let stats = engine.stats();
        assert!(
            stats.steals_succeeded > 0,
            "the forced steal never landed (rep {repetition}): {stats:?}"
        );
    }
}

/// A forced re-split at a chosen tick makes the running worker publish sibling
/// subtrees (the resplit counter moves) without changing the answer.
#[test]
fn injected_split_is_observable_and_sound() {
    let (view, instance, expected) = skewed_case();
    for repetition in 0..2 {
        let engine = Engine::new(
            EngineConfig::with_threads(4, Budget(1_000_000_000)).with_faults(Arc::new(FaultPlan {
                split_at_tick: Some(64),
                ..FaultPlan::seeded(5)
            })),
        );
        let decision =
            possible_worlds::decide::membership::view_membership_with(&view, &instance, &engine);
        assert_eq!(decision.answer, Ok(expected), "rep {repetition}");
        let stats = engine.stats();
        assert!(
            stats.resplits > 0,
            "the forced split never fired (rep {repetition}): {stats:?}"
        );
    }
}

/// A panic deep inside the search — necessarily inside a stolen or re-split subtree
/// once the forced steal and split have scattered the tree across workers — is
/// contained by the scheduler's panic isolation and surfaces as `WorkerPanicked`, on
/// every repetition, with the engine usable afterwards.
#[test]
fn panic_in_a_stolen_subtree_is_contained() {
    let (view, instance, expected) = skewed_case();
    for repetition in 0..2 {
        let engine = Engine::new(
            EngineConfig::with_threads(4, Budget(1_000_000_000)).with_faults(Arc::new(FaultPlan {
                steal_at_tick: Some(64),
                split_at_tick: Some(64),
                // The first amortized slow-path check past the steal/split injections
                // (the skewed search at test size spends only a few thousand ticks).
                panic_at_tick: Some(1_024),
                ..FaultPlan::seeded(7)
            })),
        );
        let decision =
            possible_worlds::decide::membership::view_membership_with(&view, &instance, &engine);
        assert!(
            matches!(decision.answer, Err(DecisionError::WorkerPanicked(_))),
            "rep {repetition}: expected WorkerPanicked, got {:?}",
            decision.answer
        );
    }
    // The same engine configuration without the panic still decides correctly — the
    // injections alone never corrupt the scheduler.
    let engine = Engine::new(
        EngineConfig::with_threads(4, Budget(1_000_000_000)).with_faults(Arc::new(FaultPlan {
            steal_at_tick: Some(64),
            split_at_tick: Some(64),
            ..FaultPlan::seeded(7)
        })),
    );
    let decision =
        possible_worlds::decide::membership::view_membership_with(&view, &instance, &engine);
    assert_eq!(decision.answer, Ok(expected));
}

/// The acceptance-criteria eviction test: a memo capped at 1/4 of the working set
/// still replays/re-searches to the same answers as a from-scratch decide, with
/// certificates the independent checker accepts.
#[test]
fn quarter_capacity_memo_keeps_redecide_equal_to_fresh() {
    let p = params(7);
    let stream = mutation_stream(4, &p, 3);
    let member = member_instance(&stream.base, &p);

    // Measure the working set with an unbounded probe session.
    let probe = Session::certifying(&EngineConfig::sequential(Budget(5_000_000)), 5);
    let _ = probe.decide_all(&requests_for(&stream.base, &member));
    let working_set = probe.engine().memo_stats().entries;
    assert!(working_set >= 4, "working set too small to cap at 1/4");

    let capped_cfg =
        EngineConfig::sequential(Budget(5_000_000)).with_memo_capacity((working_set / 4).max(1));
    let fresh_cfg = EngineConfig::sequential(Budget(5_000_000));
    let session = Session::certifying(&capped_cfg, 5);
    let mut cur = stream.base.clone();
    let _ = session.decide_all(&requests_for(&cur, &member));
    for (i, delta) in stream.deltas.iter().enumerate() {
        let redecision = session
            .redecide_all(&cur, delta, &requests_for(&cur, &member))
            .expect("stream deltas apply in sequence");
        let (fresh_db, _) = cur.apply(delta).expect("stream deltas apply in sequence");
        let post_requests = requests_for(&fresh_db, &member);
        let fresh = Session::certifying(&fresh_cfg, 5).decide_all(&post_requests);
        assert_eq!(
            redecision.outcomes, fresh,
            "capped redecide #{i} diverged from a fresh decide"
        );
        assert_certificates_accepted(&post_requests, &redecision.outcomes, &format!("delta #{i}"));
        cur = redecision.db;
    }
    let stats = session.engine().memo_stats();
    assert!(
        stats.evictions > 0,
        "the 1/4 cap never evicted — the test exerted no pressure"
    );
    assert!(stats.entries <= (working_set / 4).max(1));
}

#[test]
fn eviction_storm_still_answers_correctly() {
    let p = params(29);
    let stream = mutation_stream(4, &p, 2);
    let member = member_instance(&stream.base, &p);
    let storm_cfg = EngineConfig::sequential(Budget(5_000_000)).with_faults(Arc::new(FaultPlan {
        eviction_storm: true,
        ..FaultPlan::seeded(29)
    }));
    let fresh_cfg = EngineConfig::sequential(Budget(5_000_000));
    let session = Session::certifying(&storm_cfg, 5);
    let mut cur = stream.base.clone();
    let _ = session.decide_all(&requests_for(&cur, &member));
    for delta in &stream.deltas {
        let redecision = session
            .redecide_all(&cur, delta, &requests_for(&cur, &member))
            .expect("stream deltas apply in sequence");
        let (fresh_db, _) = cur.apply(delta).expect("stream deltas apply in sequence");
        let fresh =
            Session::certifying(&fresh_cfg, 5).decide_all(&requests_for(&fresh_db, &member));
        assert_eq!(redecision.outcomes, fresh, "storm redecide diverged");
        cur = redecision.db;
    }
    let stats = session.engine().memo_stats();
    assert!(stats.entries <= 1, "the storm clamps the memo to one entry");
    assert!(stats.evictions > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Random eviction pressure (capacity 1..6) + random delta streams still yield
    // `redecide_all == fresh decide_all` on all five problems, with every delivered
    // certificate accepted by `pw_check`.
    #[test]
    fn random_eviction_pressure_never_changes_answers(
        (seed, delta_count, capacity) in (0u64..500, 1usize..4, 1usize..6)
    ) {
        let p = params(seed);
        let stream = mutation_stream(4, &p, delta_count);
        let member = member_instance(&stream.base, &p);
        let capped_cfg = EngineConfig::sequential(Budget(5_000_000)).with_memo_capacity(capacity);
        let fresh_cfg = EngineConfig::sequential(Budget(5_000_000));
        let session = Session::certifying(&capped_cfg, 5);
        let mut cur = stream.base.clone();
        let _ = session.decide_all(&requests_for(&cur, &member));
        for (i, delta) in stream.deltas.iter().enumerate() {
            let redecision = session
                .redecide_all(&cur, delta, &requests_for(&cur, &member))
                .expect("stream deltas apply in sequence");
            let (fresh_db, _) = cur.apply(delta).expect("stream deltas apply in sequence");
            let post_requests = requests_for(&fresh_db, &member);
            let fresh = Session::certifying(&fresh_cfg, 5).decide_all(&post_requests);
            prop_assert_eq!(
                &redecision.outcomes, &fresh,
                "capacity-{} redecide #{} diverged (seed {})", capacity, i, seed
            );
            assert_certificates_accepted(
                &post_requests,
                &redecision.outcomes,
                &format!("seed {seed} capacity {capacity} delta #{i}"),
            );
            cur = redecision.db;
        }
    }
}
