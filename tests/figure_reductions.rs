//! Reproduction of the worked reduction figures (Figs. 3–12): each test builds the exact
//! instance the figure shows (or the instance our encoding produces for the figure's input)
//! and checks both its shape and the decision it leads to.

use possible_worlds::prelude::*;
use possible_worlds::reductions::{
    containment_hardness::{ae3cnf_cont_itable, dnf_taut_cont_view_table},
    membership_hardness::{three_col_etable, three_col_itable, three_col_view},
    possibility_hardness::{sat_poss_datalog, sat_poss_etable, sat_poss_itable},
    uniqueness_hardness::{dnf_taut_uniq_ctable, non3col_uniq_view},
};
use possible_worlds::solvers::qbf::{decide_forall_exists, ForallExists3Cnf};
use possible_worlds::solvers::{paper_fig5_cnf, DnfFormula, Graph};

fn budget() -> Budget {
    Budget(50_000_000)
}

#[test]
fn fig3_membership_example() {
    // The Fig. 3 instance/table pair is exercised in pw-decide's unit tests; here we check
    // the graph-side bookkeeping of the same algorithm: the bipartite graph G of the figure
    // has 8 edges and a perfect matching exists.
    use possible_worlds::solvers::matching::{maximum_matching, BipartiteGraph};
    let mut g = BipartiteGraph::new(4, 5);
    for (a, b) in [
        (0, 0),
        (0, 2),
        (1, 1),
        (2, 2),
        (3, 2),
        (3, 1),
        (3, 3),
        (3, 4),
    ] {
        g.add_edge(a, b);
    }
    assert_eq!(g.edge_count(), 8);
    let m = maximum_matching(&g);
    assert_eq!(
        m.cardinality(),
        4,
        "Fig. 3's instance is a member: all four facts match"
    );
}

#[test]
fn fig4_reductions_on_the_papers_graph() {
    // Fig. 4(a)'s graph is 3-colourable, so all three membership reductions answer yes.
    let g = Graph::paper_fig4a();
    let e = three_col_etable(&g);
    assert!(membership::decide(&e.view.db, &e.instance, budget()).unwrap());
    let i = three_col_itable(&g);
    assert!(membership::decide(&i.view.db, &i.instance, budget()).unwrap());
    let v = three_col_view(&g);
    assert!(membership::view_membership(&v.view, &v.instance, budget()).unwrap());
    // Shapes as in the figure: Fig. 4(b) has 8 rows, Fig. 4(c) has 11 rows and 6 facts,
    // Fig. 4(d) has 5 R-rows and 6 S-rows.
    assert_eq!(i.view.db.table("T").unwrap().len(), 8);
    assert_eq!(e.view.db.table("T").unwrap().len(), 11);
    assert_eq!(e.instance.fact_count(), 6);
    assert_eq!(v.view.db.table("R").unwrap().len(), 5);
    assert_eq!(v.view.db.table("S").unwrap().len(), 6);
}

#[test]
fn fig6_uniqueness_view_for_the_papers_graph() {
    // Fig. 6: the non-3-colourability reduction for the Fig. 4(a) graph.  The graph *is*
    // 3-colourable, so {1} is not the unique world of the view.
    let g = Graph::paper_fig4a();
    let r = non3col_uniq_view(&g);
    assert_eq!(
        r.view.db.table("R").unwrap().len(),
        g.edge_count() + g.vertex_count()
    );
    assert!(!uniqueness::decide(&r.view, &r.instance, budget()).unwrap());
    // K4 is not 3-colourable, so there the answer flips.
    let k4 = non3col_uniq_view(&Graph::complete(4));
    assert!(uniqueness::decide(&k4.view, &k4.instance, budget()).unwrap());
}

#[test]
fn fig5_and_the_uniqueness_reduction() {
    // The Fig. 5 3DNF formula is not a tautology, so the Theorem 3.2(3) c-table does not
    // have {1} as its unique world.
    let formula = DnfFormula::paper_fig5();
    assert!(!formula.is_tautology());
    let r = dnf_taut_uniq_ctable(&formula);
    assert_eq!(r.view.db.table("T").unwrap().len(), 5, "one row per clause");
    assert!(!uniqueness::decide(&r.view, &r.instance, budget()).unwrap());
}

#[test]
fn fig7_containment_instance_for_the_fig5_formula() {
    // Theorem 4.2(1) on the Fig. 5 ∀∃3CNF instance: the construction has the shape shown
    // in Fig. 7 (11 left rows — 2 per universal variable plus the 7 boolean triples — and
    // 16 right rows — the same plus one per clause), and both sides classify as the figure
    // says.  The decide-vs-QBF-solver equivalence is checked on smaller instances both here
    // and in the crate's unit tests; the full Fig. 5 instance makes the Π₂ᵖ search too
    // large for a routine test, which is the lower bound doing its job.
    let instance = ForallExists3Cnf::paper_fig5();
    let r = ae3cnf_cont_itable(&instance);
    assert_eq!(r.left.db.table("T").unwrap().len(), 11);
    assert_eq!(r.right.db.table("T").unwrap().len(), 16);
    assert_eq!(r.left.db.classify(), TableClass::Codd);
    assert_eq!(r.right.db.classify(), TableClass::ITable);

    // Decide-vs-solver on a trimmed instance (one universal, one existential variable).
    use possible_worlds::solvers::{Clause, Literal};
    let small = ForallExists3Cnf::new(
        1,
        1,
        [
            Clause::new([
                Literal {
                    var: 0,
                    positive: true,
                },
                Literal {
                    var: 1,
                    positive: false,
                },
                Literal {
                    var: 1,
                    positive: false,
                },
            ]),
            Clause::new([
                Literal {
                    var: 0,
                    positive: false,
                },
                Literal {
                    var: 1,
                    positive: true,
                },
                Literal {
                    var: 1,
                    positive: true,
                },
            ]),
        ],
    );
    let expected = decide_forall_exists(&small);
    let reduction = ae3cnf_cont_itable(&small);
    assert_eq!(
        containment::decide(&reduction.left, &reduction.right, Budget(500_000_000)).unwrap(),
        expected
    );
}

#[test]
fn fig9_containment_view_table() {
    // Theorem 4.2(4) on the Fig. 5 formula (not a tautology ⇒ not contained) and on a
    // small tautology (contained).
    let fig5 = DnfFormula::paper_fig5();
    let r = dnf_taut_cont_view_table(&fig5);
    assert!(!containment::decide(&r.left, &r.right, budget()).unwrap());

    use possible_worlds::solvers::{Clause, Literal};
    let taut = DnfFormula::new(
        1,
        [
            Clause::new([Literal {
                var: 0,
                positive: true,
            }]),
            Clause::new([Literal {
                var: 0,
                positive: false,
            }]),
        ],
    );
    let r2 = dnf_taut_cont_view_table(&taut);
    assert!(containment::decide(&r2.left, &r2.right, budget()).unwrap());
}

#[test]
fn fig11_possibility_instances_for_the_fig5_formula() {
    // The Fig. 5 CNF is satisfiable, so both Fig. 11 constructions answer "possible".
    let formula = paper_fig5_cnf();
    let e = sat_poss_etable(&formula);
    assert!(possibility::decide(&e.view, &e.facts, budget()).unwrap());
    let i = sat_poss_itable(&formula);
    assert!(possibility::decide(&i.view, &i.facts, budget()).unwrap());
    // Shapes as in the figure.
    assert_eq!(e.view.db.table("T").unwrap().len(), 25);
    assert_eq!(i.view.db.table("T").unwrap().len(), 15);
    assert_eq!(i.facts.fact_count(), 5);
}

#[test]
fn fig12_datalog_gadget_small_instances() {
    use possible_worlds::solvers::{Clause, CnfFormula, Literal};
    // A satisfiable and an unsatisfiable 2-variable formula exercise both directions of
    // the Fig. 12 gadget.
    let sat = CnfFormula::new(
        2,
        [Clause::new([
            Literal {
                var: 0,
                positive: true,
            },
            Literal {
                var: 1,
                positive: true,
            },
        ])],
    );
    let r = sat_poss_datalog(&sat);
    assert!(possibility::decide(&r.view, &r.facts, Budget(200_000_000)).unwrap());

    let unsat = CnfFormula::new(
        1,
        [
            Clause::new([Literal {
                var: 0,
                positive: true,
            }]),
            Clause::new([Literal {
                var: 0,
                positive: false,
            }]),
        ],
    );
    let r2 = sat_poss_datalog(&unsat);
    assert!(!possibility::decide(&r2.view, &r2.facts, Budget(200_000_000)).unwrap());
}
