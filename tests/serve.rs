//! Loopback integration tests for `pw-serve`: a real server on `127.0.0.1`, a real
//! TCP client, and the library as the oracle.
//!
//! * **Bit-identical answers** — a wire batch covering all five decision problems
//!   (plus one delta → re-decide cycle over standing requests) must produce, for
//!   every request, exactly the JSON the wire encoder derives from the in-process
//!   [`batch::Session`] run of the same workload: answers, strategies, certificates
//!   and error shapes alike.
//! * **Bounded admission** — with one worker and a depth-1 queue, a third concurrent
//!   client is refused immediately with `429` and a `Retry-After` header, never
//!   queued or hung; after shutdown begins, late clients get a typed `503` while
//!   admitted work drains.
//! * **Typed refusals** — malformed JSON and oversized bodies answer `400`/`413`
//!   error bodies, and the server survives to serve the next request.

use possible_worlds::core::Delta;
use possible_worlds::decide::{batch, EngineConfig};
use possible_worlds::prelude::*;
use possible_worlds::workloads::{
    member_instance, non_member_instance, random_ctable, random_gtable, TableParams,
};
use pw_serve::json::Json;
use pw_serve::{client, wire, Server, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn params(seed: u64) -> TableParams {
    TableParams {
        rows: 4,
        arity: 2,
        constants: 3,
        null_density: 0.4,
        seed,
    }
}

fn quiet_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        lame_duck: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

/// The engine configuration the server builds for a registered database — answers
/// compared against the wire must come from an identically configured session.
fn server_session() -> batch::Session {
    let config = ServerConfig::default();
    batch::Session::new(&EngineConfig::with_threads(
        config.session_threads,
        Budget(config.budget),
    ))
}

fn register(addr: std::net::SocketAddr, db: &CDatabase) -> u64 {
    let body = Json::Object(vec![
        ("schema_version".into(), Json::Int(wire::SCHEMA_VERSION)),
        ("database".into(), wire::encode_cdatabase(db)),
    ]);
    let response = client::post_json(addr, "/v1/databases", &body).expect("register reachable");
    assert_eq!(response.status, 201, "register: {}", response.body);
    response
        .json()
        .expect("register body is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("register body has an id")
}

fn request_json(problem: &str, field: &str, payload: Json) -> Json {
    Json::Object(vec![
        ("problem".to_string(), Json::str(problem)),
        (field.to_string(), payload),
    ])
}

#[test]
fn wire_answers_are_bit_identical_to_the_library() {
    // A mixed-class workload: a c-table and a g-table, plus a second database for
    // containment's right-hand side.
    let db = CDatabase::new([
        random_ctable("R", &params(11)),
        random_gtable("S", &params(12)),
    ]);
    let right = CDatabase::new([
        random_ctable("R", &params(21)),
        random_gtable("S", &params(22)),
    ]);
    let yes = member_instance(&db, &params(31));
    let no = non_member_instance(&db, &params(32));

    // The oracle: the same five requests through the library, on a session
    // configured exactly like the server's.
    let requests = vec![
        batch::DecisionRequest::Membership {
            view: View::identity(db.clone()),
            instance: yes.clone(),
        },
        batch::DecisionRequest::Uniqueness {
            view: View::identity(db.clone()),
            instance: yes.clone(),
        },
        batch::DecisionRequest::Containment {
            left: View::identity(db.clone()),
            right: View::identity(right.clone()),
        },
        batch::DecisionRequest::Possibility {
            view: View::identity(db.clone()),
            facts: no.clone(),
        },
        batch::DecisionRequest::Certainty {
            view: View::identity(db.clone()),
            facts: yes.clone(),
        },
    ];
    let session = server_session();
    let expected = session.decide_all(&requests);

    let server = Server::start(quiet_config()).expect("server starts");
    let addr = server.local_addr();
    let db_id = register(addr, &db);
    let right_id = register(addr, &right);

    let wire_requests = vec![
        request_json("membership", "instance", wire::encode_instance(&yes)),
        request_json("uniqueness", "instance", wire::encode_instance(&yes)),
        request_json("containment", "right", Json::Int(right_id as i64)),
        request_json("possibility", "facts", wire::encode_instance(&no)),
        request_json("certainty", "facts", wire::encode_instance(&yes)),
    ];
    let decide_body = Json::Object(vec![
        ("schema_version".into(), Json::Int(wire::SCHEMA_VERSION)),
        ("standing".into(), Json::Bool(true)),
        ("requests".into(), Json::Array(wire_requests)),
    ]);
    let response = client::post_json(addr, &format!("/v1/databases/{db_id}/decide"), &decide_body)
        .expect("decide reachable");
    assert_eq!(response.status, 200, "decide: {}", response.body);
    let outcomes = response.json().expect("decide body is JSON");
    let outcomes = outcomes
        .get("outcomes")
        .and_then(Json::as_array)
        .expect("decide body has outcomes");
    assert_eq!(outcomes.len(), expected.len());
    for (i, (wire_outcome, lib_outcome)) in outcomes.iter().zip(&expected).enumerate() {
        assert_eq!(
            *wire_outcome,
            wire::encode_decision(lib_outcome),
            "request {i}: wire and library disagree"
        );
    }

    // One delta → re-decide cycle: the standing requests replay against the mutated
    // database on both sides of the wire.
    let delta = Delta::new()
        .insert(
            "R",
            CTuple::of_terms([Term::constant(0), Term::constant(1)]),
        )
        .retract("R", 0);
    let expected_redecision = session
        .redecide_all(&db, &delta, &requests)
        .expect("library delta applies");
    let delta_body = Json::Object(vec![
        ("schema_version".into(), Json::Int(wire::SCHEMA_VERSION)),
        ("delta".into(), wire::encode_delta(&delta)),
    ]);
    let response = client::post_json(addr, &format!("/v1/databases/{db_id}/delta"), &delta_body)
        .expect("delta reachable");
    assert_eq!(response.status, 200, "delta: {}", response.body);
    let redecided = response.json().expect("delta body is JSON");
    let redecided = redecided
        .get("outcomes")
        .and_then(Json::as_array)
        .expect("delta body has outcomes");
    assert_eq!(redecided.len(), expected_redecision.outcomes.len());
    for (i, (wire_outcome, lib_outcome)) in redecided
        .iter()
        .zip(&expected_redecision.outcomes)
        .enumerate()
    {
        assert_eq!(
            *wire_outcome,
            wire::encode_decision(lib_outcome),
            "standing request {i} after delta: wire and library disagree"
        );
    }

    // Typed refusals on the same live server: malformed JSON is a 400 with an error
    // body, an oversized body a 413 — and the server keeps serving afterwards.
    let bad = client::request(addr, "POST", "/v1/databases", &[], "{oops").expect("400 reachable");
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert!(bad.json().unwrap().get("error").is_some());
    let huge = "x".repeat(2 << 20);
    let too_big =
        client::request(addr, "POST", "/v1/databases", &[], &huge).expect("413 reachable");
    assert_eq!(too_big.status, 413, "{}", too_big.body);
    let health = client::get(addr, "/healthz").expect("healthz reachable");
    assert_eq!(health.status, 200);

    // Graceful shutdown: the 200 acknowledges the drain; a late client inside the
    // lame-duck window gets a typed 503 with Retry-After; join() returns.
    let drain = client::post_json(
        addr,
        "/v1/shutdown",
        &Json::Object(vec![(
            "schema_version".into(),
            Json::Int(wire::SCHEMA_VERSION),
        )]),
    )
    .expect("shutdown reachable");
    assert_eq!(drain.status, 200, "{}", drain.body);
    let late = client::get(addr, "/healthz").expect("late client answered");
    assert_eq!(late.status, 503, "{}", late.body);
    assert_eq!(
        late.json()
            .unwrap()
            .get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str(),
        Some("shutting-down")
    );
    assert!(late.header("retry-after").is_some());
    server.join();
}

#[test]
fn over_capacity_clients_are_shed_with_429_not_hangs() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(5),
        lame_duck: Duration::from_secs(2),
        ..quiet_config()
    };
    let server = Server::start(config).expect("server starts");
    let addr = server.local_addr();

    // Occupy the single worker: a connection that sends only half a request keeps
    // the worker blocked in its (timed) read.
    let mut stalled_worker = TcpStream::connect(addr).expect("first client connects");
    stalled_worker
        .write_all(b"POST /healthz HTTP/1.1\r\n")
        .expect("partial request sent");
    std::thread::sleep(Duration::from_millis(300));

    // Fill the depth-1 admission queue with a second stalled connection.
    let mut stalled_queue = TcpStream::connect(addr).expect("second client connects");
    stalled_queue
        .write_all(b"POST /healthz HTTP/1.1\r\n")
        .expect("partial request sent");
    std::thread::sleep(Duration::from_millis(300));

    // The third client must be refused now — a typed 429 with Retry-After, not a
    // queue slot and not a hang.
    let shed = client::get(addr, "/healthz").expect("over-capacity client answered");
    assert_eq!(shed.status, 429, "{}", shed.body);
    assert_eq!(
        shed.json()
            .unwrap()
            .get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str(),
        Some("overloaded")
    );
    assert!(shed.header("retry-after").is_some());

    // Release the stalled connections; the worker unblocks and drains the queue.
    drop(stalled_worker);
    drop(stalled_queue);
    std::thread::sleep(Duration::from_millis(200));
    let health = client::get(addr, "/healthz").expect("healthz reachable after the squeeze");
    assert_eq!(health.status, 200, "{}", health.body);

    server.shutdown();
    server.join();
}
