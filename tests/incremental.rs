//! Incremental re-decision end to end: the delta layer (`pw_core::CDatabase::apply`),
//! the engine's per-group decision memo, and the batch session's `redecide_all` —
//! exercised through the facade crate on the edge cases the subsystem must get right:
//!
//! * an **empty delta** replays every group from the memo (no new search work);
//! * **retracting the last row of a shard** leaves an empty shard whose group goes
//!   dirty, and the re-decision still matches a from-scratch decide;
//! * a delta that **couples two previously independent groups** merges them in the
//!   incremental coupling graph and invalidates both memo entries;
//! * the condition-satisfiability cache retains its entries across deltas (untouched
//!   conditions are never re-solved).

use possible_worlds::core::{CDatabase, Delta, View};
use possible_worlds::decide::batch::{DecisionRequest, Session};
use possible_worlds::decide::{Budget, EngineConfig};
use possible_worlds::prelude::*;
use possible_worlds::workloads::{
    coupling_delta, decoupled_multirelation, member_instance, non_member_instance,
    single_shard_delta, TableParams,
};

fn params(seed: u64) -> TableParams {
    TableParams {
        rows: 3,
        arity: 2,
        constants: 3,
        null_density: 0.4,
        seed,
    }
}

/// Standing requests covering all five problems against `db`.
fn requests_for(db: &CDatabase, member: &Instance, other: &Instance) -> Vec<DecisionRequest> {
    let view = View::identity(db.clone());
    vec![
        DecisionRequest::Membership {
            view: view.clone(),
            instance: member.clone(),
        },
        DecisionRequest::Membership {
            view: view.clone(),
            instance: other.clone(),
        },
        DecisionRequest::Possibility {
            view: view.clone(),
            facts: member.clone(),
        },
        DecisionRequest::Certainty {
            view: view.clone(),
            facts: member.clone(),
        },
        DecisionRequest::Uniqueness {
            view: view.clone(),
            instance: member.clone(),
        },
        DecisionRequest::Containment {
            left: view.clone(),
            right: view,
        },
    ]
}

fn answers(
    outcomes: &[possible_worlds::decide::DecisionOutcome],
) -> Vec<(Result<bool, DecisionError>, Strategy)> {
    outcomes
        .iter()
        .map(|o| (o.answer.clone(), o.strategy))
        .collect()
}

#[test]
fn empty_delta_replays_every_group_from_the_memo() {
    let base = decoupled_multirelation(4, &params(11));
    let member = member_instance(&base, &params(11));
    let non_member = non_member_instance(&base, &params(11));
    let session = Session::sized(&EngineConfig::sequential(Budget(5_000_000)), 6);
    let first = session.decide_all(&requests_for(&base, &member, &non_member));

    let stats_before = session.engine().memo_stats();
    let redecision = session
        .redecide_all(
            &base,
            &Delta::new(),
            &requests_for(&base, &member, &non_member),
        )
        .expect("the empty delta applies");
    let stats_after = session.engine().memo_stats();

    assert!(redecision.change.is_noop());
    assert!(redecision.change.dirty_groups.is_empty());
    // The new database shares the table allocation with the old one.
    assert!(std::ptr::eq(
        base.tables().as_ptr(),
        redecision.db.tables().as_ptr()
    ));
    assert_eq!(answers(&first), answers(&redecision.outcomes));
    // Every per-group verdict replayed: the memo saw hits but not a single new miss —
    // no group search ran at all.
    assert_eq!(
        stats_after.misses, stats_before.misses,
        "an empty delta must not re-search any group"
    );
    assert!(stats_after.hits > stats_before.hits);
}

#[test]
fn retracting_the_last_row_of_a_shard_keeps_answers_fresh() {
    let base = decoupled_multirelation(4, &params(23));
    let member = member_instance(&base, &params(23));
    let non_member = non_member_instance(&base, &params(23));
    let cfg = EngineConfig::sequential(Budget(5_000_000));
    let session = Session::sized(&cfg, 6);
    let _ = session.decide_all(&requests_for(&base, &member, &non_member));

    // Empty out shard 2 row by row (3 rows in the generator parameters).
    let rows = base.tables()[2].len();
    let shard = base.tables()[2].name().to_owned();
    let mut delta = Delta::new();
    for _ in 0..rows {
        delta = delta.retract(shard.clone(), 0);
    }
    let redecision = session
        .redecide_all(&base, &delta, &requests_for(&base, &member, &non_member))
        .expect("retractions apply");
    assert!(redecision.db.table(&shard).unwrap().is_empty());
    assert_eq!(
        redecision.db.shard_groups().len(),
        4,
        "an emptied table is still a shard with its own group"
    );
    assert_eq!(redecision.change.dirty_groups, vec![2]);

    // Bit-identical to a from-scratch decide of the mutated database.
    let (fresh_db, _) = base.apply(&delta).unwrap();
    let fresh = possible_worlds::decide::batch::decide_all_with(
        &requests_for(&fresh_db, &member, &non_member),
        &cfg,
    );
    assert_eq!(answers(&redecision.outcomes), answers(&fresh));
    // The incremental coupling graph agrees with a fresh build.
    let rebuilt = CDatabase::new(redecision.db.tables().iter().cloned());
    assert_eq!(
        rebuilt.shard_group_index(),
        redecision.db.shard_group_index()
    );
}

#[test]
fn a_coupling_delta_merges_groups_and_invalidates_both_memos() {
    let base = decoupled_multirelation(4, &params(37));
    let member = member_instance(&base, &params(37));
    let non_member = non_member_instance(&base, &params(37));
    let cfg = EngineConfig::sequential(Budget(5_000_000));
    let session = Session::sized(&cfg, 6);
    let _ = session.decide_all(&requests_for(&base, &member, &non_member));

    let delta = coupling_delta(&base, 1, 3);
    let stats_before = session.engine().memo_stats();
    let redecision = session
        .redecide_all(&base, &delta, &requests_for(&base, &member, &non_member))
        .expect("the coupling delta applies");
    let stats_after = session.engine().memo_stats();

    assert_eq!(redecision.change.groups_before, 4);
    assert_eq!(redecision.change.groups_after, 3);
    assert_eq!(
        redecision.change.dirty_groups.len(),
        1,
        "the merged pair is one dirty group"
    );
    let merged = &redecision.db.shard_groups()[redecision.change.dirty_groups[0]];
    assert_eq!(merged.members(), &[1, 3], "groups 1 and 3 merged");
    assert!(
        stats_after.misses > stats_before.misses,
        "the merged group's verdicts cannot replay — both constituents invalidated"
    );

    // Answers match a from-scratch decide *and* the forced joint search.
    let (fresh_db, _) = base.apply(&delta).unwrap();
    let fresh = possible_worlds::decide::batch::decide_all_with(
        &requests_for(&fresh_db, &member, &non_member),
        &cfg,
    );
    assert_eq!(answers(&redecision.outcomes), answers(&fresh));
    // Cross-check against the forced joint search on the search problems.  Containment
    // is left out: its joint fallback is the Π₂ᵖ enumeration over *all* variables of
    // the database, which blows the test budget — removing exactly that exponent is
    // what the per-pair decomposition is for (the equivalence itself is pinned on
    // small inputs in tests/parallel_engine.rs).
    let joint_requests: Vec<DecisionRequest> = requests_for(&fresh_db, &member, &non_member)
        .into_iter()
        .filter(|r| !matches!(r, DecisionRequest::Containment { .. }))
        .collect();
    let joint =
        possible_worlds::decide::batch::decide_all_with(&joint_requests, &cfg.without_per_shard());
    for (a, b) in redecision.outcomes.iter().zip(&joint) {
        assert_eq!(
            a.answer, b.answer,
            "per-shard answer equals the joint answer"
        );
    }
}

#[test]
fn sat_cache_entries_survive_deltas_to_other_groups() {
    let base = decoupled_multirelation(5, &params(53));
    let member = member_instance(&base, &params(53));
    let non_member = non_member_instance(&base, &params(53));
    let session = Session::sized(&EngineConfig::sequential(Budget(5_000_000)), 6);
    let _ = session.decide_all(&requests_for(&base, &member, &non_member));

    // A ground-row insertion adds no new condition anywhere: re-deciding after it must
    // not re-solve a single conjunction — every satisfiability lookup hits the cache.
    let delta = Delta::new().insert(
        base.tables()[1].name().to_owned(),
        possible_worlds::core::CTuple::of_terms([Term::constant(1), Term::constant(2)]),
    );
    let sat_before = session.engine().sat_cache().stats();
    let redecision = session
        .redecide_all(&base, &delta, &requests_for(&base, &member, &non_member))
        .expect("the insertion applies");
    let sat_after = session.engine().sat_cache().stats();
    assert_eq!(redecision.change.dirty_groups.len(), 1);
    assert_eq!(
        sat_after.misses, sat_before.misses,
        "untouched conditions are never re-solved across a delta"
    );
}

#[test]
fn memo_replayed_answers_stay_certified_across_deltas() {
    use possible_worlds::{check, check_claim};

    let base = decoupled_multirelation(4, &params(97));
    let member = member_instance(&base, &params(97));
    let non_member = non_member_instance(&base, &params(97));
    let cfg = EngineConfig::sequential(Budget(5_000_000));
    let session = Session::certifying(&cfg, 6);

    let audit = |requests: &[DecisionRequest],
                 outcomes: &[possible_worlds::decide::DecisionOutcome],
                 when: &str| {
        for (request, outcome) in requests.iter().zip(outcomes) {
            let answer = *outcome.answer.as_ref().expect("the budget is ample");
            let certificate = outcome
                .certificate
                .as_ref()
                .unwrap_or_else(|| panic!("{when}: certifying session returned no certificate"));
            check::verify(&check_claim(request, answer), certificate)
                .unwrap_or_else(|e| panic!("{when}: pw_check rejected a certificate: {e}"));
        }
    };

    let requests = requests_for(&base, &member, &non_member);
    audit(&requests, &session.decide_all(&requests), "initial decide");

    // Pure replay: the empty delta answers every group from the memo, and the memo's
    // stored certificates must still satisfy the independent checker.
    let stats_before = session.engine().memo_stats();
    let replayed = session
        .redecide_all(&base, &Delta::new(), &requests)
        .expect("the empty delta applies");
    assert_eq!(
        session.engine().memo_stats().misses,
        stats_before.misses,
        "an empty delta must not re-search any group"
    );
    audit(&requests, &replayed.outcomes, "empty-delta replay");

    // A real delta: dirty groups re-search, clean groups replay from the memo, and
    // every stitched certificate must check against the *mutated* database — the
    // re-decision answers about the post-delta views, so the claims are rebuilt.
    let delta = single_shard_delta(&base, 2);
    let redecision = session
        .redecide_all(&base, &delta, &requests)
        .expect("the single-shard delta applies");
    let post_requests = requests_for(&redecision.db, &member, &non_member);
    audit(&post_requests, &redecision.outcomes, "single-shard delta");
}

#[test]
fn a_session_retires_caches_of_dissolved_databases() {
    let base = decoupled_multirelation(3, &params(71));
    let member = member_instance(&base, &params(71));
    let non_member = non_member_instance(&base, &params(71));
    let session = Session::sized(&EngineConfig::sequential(Budget(5_000_000)), 6);
    let _ = session.decide_all(&requests_for(&base, &member, &non_member));
    let entries_after_decide = session.engine().memo_stats().entries;

    // Roll ten single-shard deltas through the session: the memo must not accumulate
    // one generation of entries per delta — retired versions are dropped.
    let mut cur = base;
    for i in 0..10 {
        let delta = single_shard_delta(&cur, i % 3);
        let redecision = session
            .redecide_all(&cur, &delta, &requests_for(&cur, &member, &non_member))
            .expect("single-shard deltas apply");
        cur = redecision.db;
    }
    let entries_after_stream = session.engine().memo_stats().entries;
    assert!(
        entries_after_stream <= entries_after_decide + 12,
        "memo entries stay bounded across a delta stream \
         ({entries_after_decide} after decide, {entries_after_stream} after 10 deltas)"
    );
}
