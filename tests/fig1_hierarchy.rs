//! Reproduction of Fig. 1 and Example 2.1: the representation hierarchy, its
//! classification, and the instances obtained from the example valuation.

use possible_worlds::core::paper::fig1;
use possible_worlds::prelude::*;

#[test]
fn fig1_tables_classify_into_the_five_levels() {
    let fig = fig1();
    assert_eq!(fig.ta.classify(), TableClass::Codd);
    assert_eq!(fig.tb.classify(), TableClass::ETable);
    assert_eq!(fig.tc.classify(), TableClass::ITable);
    assert_eq!(fig.td.classify(), TableClass::GTable);
    assert_eq!(fig.te.classify(), TableClass::CTable);
    // The hierarchy is ordered.
    assert!(TableClass::Codd < TableClass::ETable);
    assert!(TableClass::ETable < TableClass::ITable);
    assert!(TableClass::ITable < TableClass::GTable);
    assert!(TableClass::GTable < TableClass::CTable);
}

#[test]
fn example_2_1_instances_are_members_of_their_representations() {
    let fig = fig1();
    let budget = Budget::default();
    for table in [&fig.ta, &fig.tb, &fig.tc, &fig.td, &fig.te] {
        let db = CDatabase::single(table.clone());
        let world = fig.sigma.world_of(&db).unwrap_or_else(|| {
            panic!(
                "σ of Example 2.1 satisfies the conditions of {}",
                table.name()
            )
        });
        assert!(
            membership::decide(&db, &world, budget).unwrap(),
            "σ({}) must be a member of rep({})",
            table.name(),
            table.name()
        );
    }
}

#[test]
fn the_itable_represents_strictly_fewer_worlds_than_the_table() {
    let fig = fig1();
    // Same rows, but Tc adds the global condition x ≠ 0 ∧ y ≠ z, so rep(Tc) ⊊ rep(Ta).
    let ta = View::identity(CDatabase::single(fig.ta.renamed("T")));
    let tc = View::identity(CDatabase::single(fig.tc.renamed("T")));
    let budget = Budget::default();
    assert!(containment::decide(&tc, &ta, budget).unwrap());
    assert!(!containment::decide(&ta, &tc, budget).unwrap());
}

#[test]
fn the_ctable_te_has_exactly_the_worlds_its_conditions_allow() {
    let fig = fig1();
    let db = CDatabase::single(fig.te.clone());
    let worlds = PossibleWorlds::new(&db).enumerate(1_000_000).unwrap();
    // Every world contains (0, 1) — its local condition z = z is always true and the
    // global condition does not mention the row.
    assert!(worlds.iter().all(|w| w.contains_fact("Te", &tup![0, 1])));
    // No world contains a row whose second column is 1 in position x while x = 1 is
    // forbidden globally: the (0, x) row can never produce (0, 1) redundantly — but it can
    // produce (0, c) for other values; check at least two distinct world shapes exist.
    assert!(worlds.len() >= 2);
    // The certainty procedure agrees with the enumeration on the always-present fact.
    let view = View::identity(db);
    let fact = Instance::single("Te", rel![[0, 1]]);
    assert!(certainty::decide(&view, &fact, Budget::default()).unwrap());
}

#[test]
fn fig1_instances_shown_in_the_figure_are_members() {
    // The figure lists, next to each representation, example instances it represents;
    // Example 2.1's σ gives one of them for Ta/Tc (0 1 2 / 3 0 1 / 2 0 5).
    let fig = fig1();
    let budget = Budget::default();
    let ia = Instance::single("Ta", rel![[0, 1, 2], [3, 0, 1], [2, 0, 5]]);
    assert!(membership::decide(&CDatabase::single(fig.ta.clone()), &ia, budget).unwrap());
    let ic = Instance::single("Tc", rel![[0, 1, 2], [3, 0, 1], [2, 0, 5]]);
    assert!(membership::decide(&CDatabase::single(fig.tc.clone()), &ic, budget).unwrap());
    // An instance violating the i-table's global condition x ≠ 0 (third column of the
    // first row forced to 0) is *not* represented by Tc although it is by Ta.
    let bad = Instance::single("Tc", rel![[0, 1, 0], [3, 0, 1], [2, 0, 5]]);
    assert!(!membership::decide(&CDatabase::single(fig.tc.clone()), &bad, budget).unwrap());
    let bad_for_ta = Instance::single("Ta", rel![[0, 1, 0], [3, 0, 1], [2, 0, 5]]);
    assert!(membership::decide(&CDatabase::single(fig.ta), &bad_for_ta, budget).unwrap());
}
