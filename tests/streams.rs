//! Standing queries over delta streams: `Session::push_delta` against the snapshot
//! oracle.
//!
//! * **Flips = snapshot diffs** — for random delta streams, the verdict flips
//!   `push_delta` reports must equal the answer diff of two full `decide_all`
//!   snapshots, on all five decision problems at once.  The subscription index may
//!   skip requests, never misreport them.
//! * **Window compaction** — a tumbling [`DeltaWindow`] feeding `push_delta` produces
//!   the same flips as the raw delta stream, and a window whose insert/retract pair
//!   cancels emits a no-op that re-decides nothing.
//! * **Coupling merges widen the index** — a delta that merges two shard groups makes
//!   a request localized to one group sensitive to deltas on the other, because group
//!   ownership is resolved against the new coupling graph on every delta.

use possible_worlds::core::{Delta, DeltaWindow};
use possible_worlds::decide::batch::{DecisionRequest, Session};
use possible_worlds::decide::EngineConfig;
use possible_worlds::prelude::*;
use possible_worlds::workloads::{
    coupling_delta, flip_heavy_stream, member_instance, mutation_stream, non_member_instance,
    single_shard_delta, StreamProblem, StreamWorkload, TableParams,
};
use proptest::prelude::*;

fn small_budget() -> Budget {
    Budget(5_000_000)
}

fn all_five_requests(
    db: &CDatabase,
    member: &possible_worlds::relational::Instance,
    non_member: &possible_worlds::relational::Instance,
) -> Vec<DecisionRequest> {
    let view = View::identity(db.clone());
    vec![
        DecisionRequest::Membership {
            view: view.clone(),
            instance: member.clone(),
        },
        DecisionRequest::Membership {
            view: view.clone(),
            instance: non_member.clone(),
        },
        DecisionRequest::Possibility {
            view: view.clone(),
            facts: member.clone(),
        },
        DecisionRequest::Certainty {
            view: view.clone(),
            facts: member.clone(),
        },
        DecisionRequest::Uniqueness {
            view: view.clone(),
            instance: member.clone(),
        },
        DecisionRequest::Containment {
            left: view.clone(),
            right: view,
        },
    ]
}

/// Bind a [`StreamWorkload`]'s request specs to identity views of `db`.
fn bind_stream_requests(workload: &StreamWorkload, db: &CDatabase) -> Vec<DecisionRequest> {
    workload
        .requests
        .iter()
        .map(|spec| {
            let view = View::identity(db.clone());
            match spec.problem {
                StreamProblem::Possibility => DecisionRequest::Possibility {
                    view,
                    facts: spec.facts.clone(),
                },
                StreamProblem::Certainty => DecisionRequest::Certainty {
                    view,
                    facts: spec.facts.clone(),
                },
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // The tentpole invariant: on random streams, push_delta's flip events equal the
    // diff of consecutive full decide_all snapshots — all five problems standing.
    #[test]
    fn push_delta_flips_equal_snapshot_diffs((seed, delta_count) in (0u64..1_000, 1usize..5)) {
        let params = TableParams { rows: 3, arity: 2, constants: 3, null_density: 0.4, seed };
        let stream = mutation_stream(4, &params, delta_count);
        let member = member_instance(&stream.base, &params);
        let non_member = non_member_instance(&stream.base, &params);
        let cfg = EngineConfig::sequential(small_budget());

        let requests = all_five_requests(&stream.base, &member, &non_member);
        let mut session = Session::sized(&cfg, requests.len());
        let (ids, baselines) = session.register_standing(&stream.base, &requests);
        prop_assert_eq!(ids.len(), requests.len());

        let mut cur = stream.base.clone();
        let mut prev_outcomes = baselines;
        // The baseline must itself match a cold snapshot.
        let snapshot = possible_worlds::decide::batch::decide_all_with(
            &all_five_requests(&cur, &member, &non_member), &cfg);
        for (got, want) in prev_outcomes.iter().zip(&snapshot) {
            prop_assert!(got.answer == want.answer && got.strategy == want.strategy);
        }

        for delta in &stream.deltas {
            let update = session.push_delta(delta).expect("stream deltas apply in sequence");
            let (next_db, _) = cur.apply(delta).expect("stream deltas apply in sequence");
            let next_outcomes = possible_worlds::decide::batch::decide_all_with(
                &all_five_requests(&next_db, &member, &non_member), &cfg);

            // Expected flips: positions whose answer changed between snapshots.
            let expected: Vec<(u64, _, _)> = prev_outcomes
                .iter()
                .zip(&next_outcomes)
                .enumerate()
                .filter(|(_, (a, b))| a.answer != b.answer)
                .map(|(i, (a, b))| (ids[i], a.answer.clone(), b.answer.clone()))
                .collect();
            let got: Vec<(u64, _, _)> = update
                .flips
                .iter()
                .map(|f| (f.request_id, f.old.answer.clone(), f.new.answer.clone()))
                .collect();
            prop_assert_eq!(
                got, expected,
                "flip events diverge from snapshot diff (seed {}, {} deltas)",
                seed, delta_count
            );
            // Flips carry the fresh decision verbatim (strategy included), and every
            // request's standing verdict — skipped or re-decided — matches the
            // snapshot.
            for flip in &update.flips {
                let pos = ids.iter().position(|&id| id == flip.request_id).unwrap();
                prop_assert!(flip.new.strategy == next_outcomes[pos].strategy);
            }
            for (i, want) in next_outcomes.iter().enumerate() {
                let standing = session.standing_outcome(ids[i]).expect("registered id");
                prop_assert!(
                    standing.answer == want.answer,
                    "standing verdict {} diverged from snapshot (seed {})",
                    i, seed
                );
            }
            prop_assert_eq!(update.redecided + update.skipped, requests.len());
            cur = next_db;
            prev_outcomes = next_outcomes;
        }
    }
}

/// A tumbling window feeding `push_delta` produces the same verdicts as the raw
/// stream, and batches that cancel to a no-op re-decide nothing.
#[test]
fn windowed_push_delta_matches_raw_stream_and_cancels_noops() {
    let workload = flip_heavy_stream(3, 4, 12, 17);
    let cfg = EngineConfig::sequential(small_budget());

    // Raw session: one push per delta.
    let raw_requests = bind_stream_requests(&workload, &workload.base);
    let mut raw = Session::sized(&cfg, raw_requests.len());
    let (raw_ids, _) = raw.register_standing(&workload.base, &raw_requests);
    // Windowed session: deltas go through a tumbling window of 3 first.
    let mut windowed = Session::sized(&cfg, raw_requests.len());
    let (win_ids, _) = windowed.register_standing(&workload.base, &raw_requests);
    let mut window = DeltaWindow::tumbling(&workload.base, 3);

    let mut raw_flips = 0usize;
    let mut win_flips = 0usize;
    for delta in &workload.deltas {
        raw_flips += raw
            .push_delta(delta)
            .expect("raw delta applies")
            .flips
            .len();
        if let Some(compacted) = window
            .push(delta.clone())
            .expect("window accepts the delta")
        {
            win_flips += windowed
                .push_delta(&compacted)
                .expect("compacted delta applies")
                .flips
                .len();
        }
    }
    if let Some(tail) = window.flush() {
        win_flips += windowed
            .push_delta(&tail)
            .expect("tail applies")
            .flips
            .len();
    }
    assert!(raw_flips > 0, "a flip-heavy stream flips");

    // Same final verdicts on every standing request.  (The windowed session may see
    // *fewer* flip events: opposing flips inside one window compact away — that is the
    // point of windowing.)
    for (raw_id, win_id) in raw_ids.iter().zip(&win_ids) {
        assert_eq!(
            raw.standing_outcome(*raw_id).unwrap().answer,
            windowed.standing_outcome(*win_id).unwrap().answer,
        );
    }
    assert!(win_flips <= raw_flips);

    // The cancellation case: an insert/retract pair inside one window compacts to a
    // no-op — push_delta applies it with zero re-decisions and zero flips.
    let db = windowed.standing_db().unwrap().clone();
    let mut cancel = DeltaWindow::tumbling(&db, 2);
    let len = db.tables()[0].len();
    let name = db.tables()[0].name().to_owned();
    assert!(cancel
        .push(Delta::new().insert(name.clone(), CTuple::of_terms([Term::constant(77)])))
        .unwrap()
        .is_none());
    let compacted = cancel
        .push(Delta::new().retract(name, len))
        .unwrap()
        .expect("second push closes the window");
    assert!(compacted.is_empty(), "the pair cancels");
    let update = windowed.push_delta(&compacted).expect("no-op applies");
    assert!(update.change.is_noop());
    assert_eq!(update.redecided, 0);
    assert!(update.flips.is_empty());
}

/// Subscription-index invalidation across a coupling merge: a request localized to
/// group A must start re-deciding on deltas to group B once a coupling delta merges
/// the two groups.
#[test]
fn coupling_merge_widens_a_localized_subscription() {
    let mut vars = VarGen::new();
    let (x, y) = (vars.fresh(), vars.fresh());
    let db = CDatabase::new([
        CTable::new(
            "A",
            1,
            Conjunction::truth(),
            [
                CTuple::of_terms([Term::constant(1)]),
                CTuple::with_condition([Term::Var(x)], Conjunction::single(Atom::neq(x, -1))),
            ],
        )
        .unwrap(),
        CTable::new(
            "B",
            1,
            Conjunction::truth(),
            [
                CTuple::of_terms([Term::constant(2)]),
                CTuple::with_condition([Term::Var(y)], Conjunction::single(Atom::neq(y, -1))),
            ],
        )
        .unwrap(),
    ]);
    assert_eq!(db.shard_groups().len(), 2);

    // One standing request, localized to A.
    let requests = vec![DecisionRequest::Certainty {
        view: View::identity(db.clone()),
        facts: possible_worlds::relational::Instance::single(
            "A",
            possible_worlds::relational::rel![[1]],
        ),
    }];
    let cfg = EngineConfig::sequential(small_budget());
    let mut session = Session::sized(&cfg, 1);
    let (ids, baselines) = session.register_standing(&db, &requests);
    assert_eq!(baselines[0].answer, Ok(true));

    // Pre-merge: a delta touching only B skips the A-localized request.
    let update = session
        .push_delta(&single_shard_delta(&db, 1))
        .expect("B delta applies");
    assert_eq!((update.redecided, update.skipped), (0, 1));

    // Merge the two groups.  The coupling conjoins `v ≠ -1` onto A's anchor row, so
    // the anchor fact stops being certain (the valuation v = -1 drops the row): the
    // merge both widens the index *and* flips the verdict — and the flip is caught
    // because the merged group is dirty.
    let merged = update.db.clone();
    let update = session
        .push_delta(&coupling_delta(&merged, 0, 1))
        .expect("coupling delta applies");
    assert_eq!(update.db.shard_groups().len(), 1, "groups merged");
    assert_eq!(
        update.redecided, 1,
        "the merge itself re-decides A's request"
    );
    assert_eq!(update.flips.len(), 1);
    assert_eq!(update.flips[0].old.answer, Ok(true));
    assert_eq!(update.flips[0].new.answer, Ok(false));

    // Post-merge: the same B-only mutation now lands in the merged dirty group, so the
    // A-localized request is re-decided — the index resolved B's position against the
    // *new* coupling graph.
    let post = update.db.clone();
    let update = session
        .push_delta(&single_shard_delta(&post, 1))
        .expect("B delta applies post-merge");
    assert_eq!((update.redecided, update.skipped), (1, 0));
    assert_eq!(session.standing_outcome(ids[0]).unwrap().answer, Ok(false));

    // And a flip back propagates through the merged group: an unconditional fresh
    // A(1) row makes the fact certain again.
    let update = session
        .push_delta(&Delta::new().insert("A", CTuple::of_terms([Term::constant(1)])))
        .expect("insert applies");
    assert_eq!(update.flips.len(), 1);
    assert_eq!(update.flips[0].new.answer, Ok(true));
}

/// The flip-heavy family flips its flippable certainty on every delta; the flip-sparse
/// family's stable requests never flip.  (Workload-level sanity for the benchmark.)
#[test]
fn stream_families_flip_as_advertised() {
    let workload = flip_heavy_stream(2, 4, 8, 5);
    let cfg = EngineConfig::sequential(small_budget());
    let requests = bind_stream_requests(&workload, &workload.base);
    let mut session = Session::sized(&cfg, requests.len());
    let (ids, _) = session.register_standing(&workload.base, &requests);
    let flippable: Vec<u64> = ids
        .iter()
        .zip(&workload.requests)
        .filter(|(_, spec)| spec.flippable)
        .map(|(&id, _)| id)
        .collect();
    let mut flips = 0usize;
    for delta in &workload.deltas {
        let update = session.push_delta(delta).expect("stream delta applies");
        for flip in &update.flips {
            assert!(
                flippable.contains(&flip.request_id),
                "a stable request flipped"
            );
        }
        flips += update.flips.len();
    }
    assert_eq!(flips, workload.flip_ops, "every flip op flips one verdict");
}
