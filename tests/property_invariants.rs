//! Property-based tests (proptest) for the core invariants:
//!
//! * conjunction satisfiability agrees with brute-force evaluation over a small domain;
//! * the matching-based membership algorithm agrees with the backtracking one on random
//!   Codd-tables (Theorem 3.1(1) vs. the generic NP procedure);
//! * a world produced by applying a random valuation is always a member, possible and
//!   query-monotone;
//! * naive and semi-naive Datalog evaluation agree on random edge relations;
//! * c-table simplification preserves the represented set of worlds, is idempotent and
//!   never grows the table;
//! * incremental re-decision after random deltas agrees with a from-scratch decide on
//!   all five problems (answers and strategies);
//! * every answer a certifying session produces — from `decide_all` and from
//!   `redecide_all` after random deltas alike — carries a certificate the independent
//!   `pw_check` checker accepts, while answers and strategies stay identical to the
//!   uncertified session's.

use possible_worlds::prelude::*;
use possible_worlds::query::datalog::FixpointStrategy;
use proptest::prelude::*;
// Both preludes export a `Strategy` name (the decision-procedure enum and the proptest
// trait); bring the trait into scope anonymously so `.prop_map` et al. resolve.
use proptest::strategy::Strategy as _;

fn small_budget() -> Budget {
    Budget(5_000_000)
}

/// Strategy: a conjunction over `nvars` variables and constants 0..3, up to `natoms` atoms.
fn conjunction_strategy(
    nvars: usize,
    natoms: usize,
) -> impl proptest::strategy::Strategy<Value = (Vec<Variable>, Conjunction)> {
    let mut gen = VarGen::new();
    let vars: Vec<Variable> = (0..nvars).map(|_| gen.fresh()).collect();
    let vars_for_atoms = vars.clone();
    let atom = (0..4usize, 0..4usize, 0..4i64, any::<bool>(), any::<bool>()).prop_map(
        move |(a, b, c, use_const, eq)| {
            let left = Term::Var(vars_for_atoms[a % vars_for_atoms.len()]);
            let right = if use_const {
                Term::constant(c)
            } else {
                Term::Var(vars_for_atoms[b % vars_for_atoms.len()])
            };
            if eq {
                Atom::Eq(left, right)
            } else {
                Atom::Neq(left, right)
            }
        },
    );
    proptest::collection::vec(atom, 0..natoms)
        .prop_map(move |atoms| (vars.clone(), Conjunction::new(atoms)))
}

/// Brute force: is the conjunction satisfiable with variable values drawn from 0..=k?
/// (For equality/inequality constraints a domain as large as the number of variables plus
/// the mentioned constants is always sufficient.)
fn brute_force_satisfiable(vars: &[Variable], conj: &Conjunction) -> bool {
    let domain: Vec<Constant> = (0..(vars.len() as i64 + 4)).map(Constant::Int).collect();
    fn rec(
        vars: &[Variable],
        idx: usize,
        domain: &[Constant],
        assignment: &mut Vec<(Variable, Constant)>,
        conj: &Conjunction,
    ) -> bool {
        if idx == vars.len() {
            // The evaluator works over interned ids (the PR 2 substrate), so the
            // brute-force assignment resolves through the global dictionary.
            let lookup = |v: Variable| {
                assignment
                    .iter()
                    .find(|(w, _)| *w == v)
                    .map(|(_, c)| Symbols::global().intern(c))
            };
            return conj.eval(&lookup) == Some(true);
        }
        for c in domain {
            assignment.push((vars[idx], c.clone()));
            if rec(vars, idx + 1, domain, assignment, conj) {
                return true;
            }
            assignment.pop();
        }
        false
    }
    rec(vars, 0, &domain, &mut Vec::new(), conj)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conjunction_satisfiability_matches_brute_force((vars, conj) in conjunction_strategy(4, 6)) {
        prop_assert_eq!(conj.is_satisfiable(), brute_force_satisfiable(&vars, &conj));
    }
}

/// Strategy: a random Codd-table of arity 2 plus a candidate instance over constants 0..4.
fn codd_and_instance() -> impl proptest::strategy::Strategy<Value = (CDatabase, Instance)> {
    let row = (0..5i64, 0..5i64, any::<bool>(), any::<bool>());
    let rows = proptest::collection::vec(row, 1..5);
    let facts = proptest::collection::vec((0..5i64, 0..5i64), 0..4);
    (rows, facts).prop_map(|(rows, facts)| {
        let mut gen = VarGen::new();
        let table_rows: Vec<Vec<Term>> = rows
            .into_iter()
            .map(|(a, b, var_a, var_b)| {
                vec![
                    if var_a {
                        Term::Var(gen.fresh())
                    } else {
                        Term::constant(a)
                    },
                    if var_b {
                        Term::Var(gen.fresh())
                    } else {
                        Term::constant(b)
                    },
                ]
            })
            .collect();
        let table = CTable::codd("R", 2, table_rows).expect("fresh nulls");
        let rel = Relation::from_tuples(2, facts.into_iter().map(|(a, b)| tup![a, b]));
        (CDatabase::single(table), Instance::single("R", rel))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn matching_and_backtracking_membership_agree((db, instance) in codd_and_instance()) {
        let fast = membership::codd_matching(&db, &instance);
        let slow = membership::backtracking(&db, &instance, small_budget()).unwrap();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn possibility_is_implied_by_membership((db, instance) in codd_and_instance()) {
        let member = membership::codd_matching(&db, &instance);
        let possible = possibility::codd_matching(&db, &instance);
        if member {
            prop_assert!(possible, "a world trivially contains itself");
        }
    }

    #[test]
    fn applied_valuations_always_yield_members((db, _instance) in codd_and_instance()) {
        // Build a valuation sending every null to a value in 0..5 and check the produced
        // world is a member and every single fact of it is possible and (if the table rows
        // are all ground) certain.
        let vars: Vec<Variable> = db.variables().into_iter().collect();
        let valuation = Valuation::from_pairs(vars.iter().enumerate().map(|(i, &v)| (v, Constant::Int((i % 5) as i64))));
        let world = valuation.world_of(&db).expect("Codd-tables have no conditions");
        prop_assert!(membership::codd_matching(&db, &world));
        prop_assert!(possibility::codd_matching(&db, &world));
    }
}

/// Strategy: a random edge relation over 0..6.
fn edges() -> impl proptest::strategy::Strategy<Value = Instance> {
    proptest::collection::vec((0..6i64, 0..6i64), 0..12).prop_map(|pairs| {
        let rel = Relation::from_tuples(2, pairs.into_iter().map(|(a, b)| tup![a, b]));
        Instance::single("E", rel)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn naive_and_semi_naive_datalog_agree(instance in edges()) {
        let program = DatalogProgram::transitive_closure("E", "TC");
        let naive = program.eval_with(&instance, FixpointStrategy::Naive);
        let semi = program.eval_with(&instance, FixpointStrategy::SemiNaive);
        prop_assert_eq!(naive, semi);
    }

    #[test]
    fn transitive_closure_is_monotone(instance in edges()) {
        // Adding an edge never removes a closure fact — the monotonicity underlying the
        // certain-answer algorithm of Theorem 5.3(1).
        let program = DatalogProgram::transitive_closure("E", "TC");
        let base = program.eval(&instance);
        let mut bigger = instance.clone();
        bigger.insert_fact("E", tup![0, 5]).unwrap();
        let extended = program.eval(&bigger);
        prop_assert!(base.is_subset(&extended));
    }
}

/// Strategy: a small c-table over one switch variable plus a UCQ projection, for checking
/// the representation-system property of the c-table algebra end to end.
fn small_ctable() -> impl proptest::strategy::Strategy<Value = CDatabase> {
    let row = (0..3i64, 0..3i64, 0..3u8);
    proptest::collection::vec(row, 1..4).prop_map(|rows| {
        let mut gen = VarGen::new();
        let switch = gen.fresh();
        let tuples: Vec<CTuple> = rows
            .into_iter()
            .map(|(a, b, kind)| match kind {
                0 => CTuple::of_terms([Term::constant(a), Term::constant(b)]),
                1 => CTuple::with_condition(
                    [Term::constant(a), Term::Var(switch)],
                    Conjunction::new([Atom::eq(switch, b)]),
                ),
                _ => CTuple::with_condition(
                    [Term::constant(a), Term::constant(b)],
                    Conjunction::new([Atom::neq(switch, b)]),
                ),
            })
            .collect();
        CDatabase::single(CTable::new("T", 2, Conjunction::truth(), tuples).unwrap())
    })
}

/// Strategy: a small c-table with a global condition, repeated nulls and local conditions —
/// enough structure for simplification to have something to do.
fn conditioned_ctable() -> impl proptest::strategy::Strategy<Value = CTable> {
    let row = (0..3i64, 0..3i64, 0..5u8, 0..3i64);
    let global_kind = 0..3u8;
    (proptest::collection::vec(row, 1..5), global_kind).prop_map(|(rows, global_kind)| {
        let mut gen = VarGen::new();
        let (x, y) = (gen.fresh(), gen.fresh());
        let global = match global_kind {
            0 => Conjunction::truth(),
            1 => Conjunction::new([Atom::eq(x, 1)]),
            _ => Conjunction::new([Atom::neq(x, 2)]),
        };
        let tuples: Vec<CTuple> = rows
            .into_iter()
            .map(|(a, b, kind, c)| match kind {
                0 => CTuple::of_terms([Term::constant(a), Term::constant(b)]),
                1 => CTuple::of_terms([Term::Var(x), Term::constant(b)]),
                2 => CTuple::with_condition(
                    [Term::constant(a), Term::Var(y)],
                    Conjunction::new([Atom::eq(x, c)]),
                ),
                3 => CTuple::with_condition(
                    [Term::constant(a), Term::constant(b)],
                    Conjunction::new([Atom::neq(x, c), Atom::eq(x, x)]),
                ),
                _ => CTuple::with_condition(
                    [Term::Var(x), Term::Var(y)],
                    Conjunction::new([Atom::eq(y, c)]),
                ),
            })
            .collect();
        CTable::new("T", 2, global, tuples).unwrap()
    })
}

/// Enumerate the worlds of a single table over a shared domain (the given constants plus
/// the enumerator's fresh padding).
fn worlds_of(
    table: &CTable,
    shared: &std::collections::BTreeSet<Constant>,
) -> std::collections::BTreeSet<Instance> {
    let db = CDatabase::single(table.clone());
    PossibleWorlds::new(&db)
        .with_extra_constants(shared.iter().cloned())
        .enumerate(500_000)
        .expect("the generated tables are tiny")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simplification_preserves_the_represented_worlds(table in conditioned_ctable()) {
        let shared: std::collections::BTreeSet<Constant> = table.constants();
        match simplify_table(&table) {
            None => {
                // An unsatisfiable global condition means the representation is empty.
                prop_assert!(!table.global_condition().is_satisfiable());
            }
            Some(simplified) => {
                prop_assert!(simplified.len() <= table.len());
                prop_assert_eq!(worlds_of(&table, &shared), worlds_of(&simplified, &shared));
                // Idempotence: a second pass changes nothing (up to variable identity,
                // which simplification never touches, so plain equality applies).
                let twice = simplify_table(&simplified).expect("already satisfiable");
                prop_assert_eq!(&twice, &simplified);
            }
        }
    }

    #[test]
    fn simplification_commutes_with_membership(table in conditioned_ctable()) {
        // Decision procedures answer identically on the original and simplified table.
        let Some(simplified) = simplify_table(&table) else { return Ok(()); };
        let db = CDatabase::single(table);
        let sdb = CDatabase::single(simplified);
        let vars: Vec<Variable> = db.variables().into_iter().collect();
        let valuation = Valuation::from_pairs(vars.iter().enumerate().map(|(i, &v)| (v, Constant::Int((i % 3) as i64))));
        if let Some(world) = valuation.world_of(&db) {
            prop_assert!(membership::decide(&sdb, &world, small_budget()).unwrap());
        }
        let outside = Instance::single("T", Relation::from_tuples(2, [tup![9, 9]]));
        prop_assert_eq!(
            possibility::decide(&View::identity(db), &outside, small_budget()).unwrap(),
            possibility::decide(&View::identity(sdb), &outside, small_budget()).unwrap()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ctable_algebra_certain_and_possible_answers_agree_with_enumeration(db in small_ctable()) {
        let q = Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("a")],
            [qatom!("T"; "a", "b")],
        ));
        let view = View::new(Query::single("Q", QueryDef::Ucq(q.clone())), db.clone());
        // Reference answers by full enumeration of the view.
        let worlds = view.enumerate_worlds(100_000, []).unwrap();
        let all_answers: Vec<Relation> = worlds
            .iter()
            .map(|w| w.relation_or_empty("Q", 1))
            .collect();
        for value in 0..3i64 {
            let fact = Instance::single("Q", Relation::from_tuples(1, [tup![value]]));
            let expected_possible = all_answers.iter().any(|r| r.contains(&tup![value]));
            let expected_certain = all_answers.iter().all(|r| r.contains(&tup![value]));
            prop_assert_eq!(
                possibility::decide(&view, &fact, small_budget()).unwrap(),
                expected_possible
            );
            prop_assert_eq!(
                certainty::decide(&view, &fact, small_budget()).unwrap(),
                expected_certain
            );
        }
    }
}

/// Strategy: a seed for a small decoupled multi-relation database plus a random
/// mutation stream over it.
fn delta_scenario() -> impl proptest::strategy::Strategy<Value = (u64, usize)> {
    (0u64..1_000, 1usize..5).prop_map(|(seed, deltas)| (seed, deltas))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn redecide_matches_fresh_decide_on_all_five_problems((seed, delta_count) in delta_scenario()) {
        use possible_worlds::decide::batch::{DecisionRequest, Session};
        use possible_worlds::decide::EngineConfig;
        use possible_worlds::workloads::{mutation_stream, member_instance, non_member_instance, TableParams};

        let params = TableParams { rows: 3, arity: 2, constants: 3, null_density: 0.4, seed };
        let stream = mutation_stream(4, &params, delta_count);
        let member = member_instance(&stream.base, &params);
        let non_member = non_member_instance(&stream.base, &params);
        let requests_for = |db: &CDatabase| -> Vec<DecisionRequest> {
            let view = View::identity(db.clone());
            vec![
                DecisionRequest::Membership { view: view.clone(), instance: member.clone() },
                DecisionRequest::Membership { view: view.clone(), instance: non_member.clone() },
                DecisionRequest::Possibility { view: view.clone(), facts: member.clone() },
                DecisionRequest::Certainty { view: view.clone(), facts: member.clone() },
                DecisionRequest::Uniqueness { view: view.clone(), instance: member.clone() },
                DecisionRequest::Containment { left: view.clone(), right: view },
            ]
        };

        let cfg = EngineConfig::sequential(small_budget());
        let session = Session::sized(&cfg, 6);
        let mut cur = stream.base.clone();
        let _ = session.decide_all(&requests_for(&cur));
        for delta in &stream.deltas {
            let redecision = session
                .redecide_all(&cur, delta, &requests_for(&cur))
                .expect("stream deltas apply in sequence");
            // The from-scratch reference: a cold engine deciding the mutated database.
            let (fresh_db, _) = cur.apply(delta).expect("stream deltas apply in sequence");
            let fresh = possible_worlds::decide::batch::decide_all_with(&requests_for(&fresh_db), &cfg);
            prop_assert_eq!(redecision.outcomes.len(), fresh.len());
            for (incremental, scratch) in redecision.outcomes.iter().zip(&fresh) {
                prop_assert!(
                    incremental.answer == scratch.answer && incremental.strategy == scratch.strategy,
                    "redecide diverged from fresh decide (seed {}, {} deltas)",
                    seed,
                    delta_count
                );
            }
            cur = redecision.db;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_certified_answer_passes_the_independent_checker((seed, delta_count) in delta_scenario()) {
        use possible_worlds::decide::batch::{DecisionRequest, Session};
        use possible_worlds::decide::EngineConfig;
        use possible_worlds::workloads::{mutation_stream, member_instance, non_member_instance, TableParams};
        use possible_worlds::{check, check_claim};

        let params = TableParams { rows: 3, arity: 2, constants: 3, null_density: 0.4, seed };
        let stream = mutation_stream(4, &params, delta_count);
        let member = member_instance(&stream.base, &params);
        let non_member = non_member_instance(&stream.base, &params);
        let requests_for = |db: &CDatabase| -> Vec<DecisionRequest> {
            let view = View::identity(db.clone());
            vec![
                DecisionRequest::Membership { view: view.clone(), instance: member.clone() },
                DecisionRequest::Membership { view: view.clone(), instance: non_member.clone() },
                DecisionRequest::Possibility { view: view.clone(), facts: member.clone() },
                DecisionRequest::Certainty { view: view.clone(), facts: member.clone() },
                DecisionRequest::Uniqueness { view: view.clone(), instance: member.clone() },
                DecisionRequest::Containment { left: view.clone(), right: view },
            ]
        };

        let cfg = EngineConfig::sequential(small_budget());
        let plain = Session::sized(&cfg, 6);
        let certifying = Session::certifying(&cfg, 6);

        // One audit pass: certified answers and strategies are identical to the plain
        // session's, and every delivered answer carries a certificate the independent
        // checker accepts.  (A budget-exceeded request has no answer to certify.)
        macro_rules! audit {
            ($requests:expr, $certified:expr, $uncertified:expr, $stage:expr) => {
                prop_assert_eq!($certified.len(), $uncertified.len());
                for ((request, certified), uncertified) in
                    $requests.iter().zip($certified).zip($uncertified)
                {
                    prop_assert!(
                        certified.answer == uncertified.answer
                            && certified.strategy == uncertified.strategy,
                        "certified session diverged from plain ({}, seed {}, {} deltas)",
                        $stage, seed, delta_count
                    );
                    let Ok(answer) = certified.answer else { continue };
                    let claim = check_claim(request, answer);
                    let Some(certificate) = certified.certificate.as_ref() else {
                        prop_assert!(
                            false,
                            "uncertified {} answer ({}, seed {}, {} deltas)",
                            claim.problem.name(), $stage, seed, delta_count
                        );
                        continue;
                    };
                    if let Err(e) = check::verify(&claim, certificate) {
                        prop_assert!(
                            false,
                            "pw_check rejected a {} certificate ({}, seed {}, {} deltas): {e}",
                            claim.problem.name(), $stage, seed, delta_count
                        );
                    }
                }
            };
        }

        let mut cur = stream.base.clone();
        let requests = requests_for(&cur);
        audit!(
            &requests,
            &certifying.decide_all(&requests),
            &plain.decide_all(&requests),
            "initial decide_all"
        );
        for (i, delta) in stream.deltas.iter().enumerate() {
            let requests = requests_for(&cur);
            let redecision = certifying
                .redecide_all(&cur, delta, &requests)
                .expect("stream deltas apply in sequence");
            let plain_redecision = plain
                .redecide_all(&cur, delta, &requests)
                .expect("stream deltas apply in sequence");
            // A re-decision answers about the *mutated* database — the claims the
            // checker verifies must be phrased against the post-delta views.
            let post_requests = requests_for(&redecision.db);
            audit!(
                &post_requests,
                &redecision.outcomes,
                &plain_redecision.outcomes,
                format!("redecide_all #{i}")
            );
            cur = redecision.db;
        }
    }
}
