//! Tests for the relation catalog (`pw_relational::intern::{RelId, Catalog, Symbols}`)
//! and for **private-dictionary databases run end-to-end**:
//!
//! * a pinning test that catalog ids are dense and deterministic for the standard
//!   workload families (so shard addressing and any on-disk layout keyed by `RelId` are
//!   reproducible build-to-build);
//! * the end-to-end property PR 2 left open: a `CDatabase` attached to a fully private
//!   [`Symbols`] context (its own constant dictionary *and* its own catalog) must run all
//!   five decision problems — through `Engine`-backed entry points and through
//!   `batch::decide_all` — and return exactly the answers of its global-context twin.
//!
//! The randomized cases use the seeded workload generators; every seed is deterministic,
//! so a failure here is reproducible by seed.

use possible_worlds::decide::{batch, Engine, EngineConfig};
use possible_worlds::prelude::*;
use possible_worlds::workloads::{
    member_instance, non_member_instance, random_codd_table, random_ctable, random_etable,
    random_gtable, random_itable, stringify_database, stringify_instance, TableParams,
};
use std::sync::Arc;

fn small_params(seed: u64) -> TableParams {
    TableParams {
        rows: 4,
        arity: 2,
        constants: 3,
        null_density: 0.4,
        seed,
    }
}

type TableGenerator = fn(&str, &TableParams) -> CTable;

fn generators() -> Vec<(&'static str, TableGenerator)> {
    vec![
        ("codd", random_codd_table as TableGenerator),
        ("e-table", random_etable),
        ("i-table", random_itable),
        ("g-table", random_gtable),
        ("c-table", random_ctable),
    ]
}

/// The standard workload family as one multi-relation database, re-interned into a fresh
/// private context.
fn standard_workload_database(symbols: &Arc<Symbols>, seed: u64) -> CDatabase {
    let params = small_params(seed);
    let tables: Vec<CTable> = generators()
        .into_iter()
        .enumerate()
        .map(|(i, (_, generate))| generate(&format!("T{i}"), &params))
        .collect();
    CDatabase::new(tables).reinterned(symbols)
}

/// Pinning: catalog ids for the standard workloads are dense (0, 1, 2, … in table order)
/// and deterministic — two independent builds in two fresh private contexts agree id for
/// id.  Shard layouts and future per-shard storage key on this.
#[test]
fn catalog_ids_are_dense_and_deterministic_for_standard_workloads() {
    let ca = Arc::new(Symbols::new());
    let cb = Arc::new(Symbols::new());
    let da = standard_workload_database(&ca, 7);
    let db = standard_workload_database(&cb, 7);

    let ids_a: Vec<u32> = da.rel_ids().iter().map(|r| r.index()).collect();
    let ids_b: Vec<u32> = db.rel_ids().iter().map(|r| r.index()).collect();
    assert_eq!(
        ids_a,
        (0..da.table_count() as u32).collect::<Vec<_>>(),
        "ids are dense in table order"
    );
    assert_eq!(ids_a, ids_b, "independent builds allocate identical ids");

    // Name → id → shard round-trips through the boundary resolver.
    for (i, table) in da.tables().iter().enumerate() {
        let id = da.rel_id(table.name()).expect("registered at construction");
        assert_eq!(id.index(), ids_a[i]);
        assert_eq!(
            da.table_by_id(id).expect("shard exists").name(),
            table.name()
        );
        assert_eq!(
            ca.relation_name(id).as_deref(),
            Some(table.name()),
            "catalog resolves the id back"
        );
    }
    // The private registrations never leak into the global catalog: a name registered
    // only through the private contexts stays unknown globally.
    let unique = "pinning-test-private-only-relation";
    ca.register_relation(unique);
    assert_eq!(Symbols::global().relation_id(unique), None);
}

/// End-to-end: a private-dictionary database answers all five decision problems exactly
/// like its global twin, through the engine-backed single-shot entry points.
///
/// The databases are string-heavy (`stringify_database`), so every constant actually
/// exercises the private dictionary, and the instances are posed as plain
/// [`Constant`]-level facts — the front door interns them into whichever context the
/// database owns.
#[test]
fn private_dictionary_database_runs_all_five_problems_end_to_end() {
    let budget = Budget(20_000_000);
    for (class, generate) in generators() {
        for seed in 40..44u64 {
            let params = small_params(seed);
            let int_db = CDatabase::single(generate("T", &params));
            let global_db = stringify_database(&int_db);
            let member = stringify_instance(&member_instance(&int_db, &params));
            let non_member = stringify_instance(&non_member_instance(&int_db, &params));

            // The session twin: same data, fully private id space (constants + catalog).
            let symbols = Arc::new(Symbols::new());
            let private_db = global_db.reinterned(&symbols);
            assert!(Arc::ptr_eq(private_db.symbols(), &symbols));
            assert_eq!(private_db.constants(), global_db.constants());

            let global_view = View::identity(global_db.clone());
            let private_view = View::identity(private_db.clone());
            let engine = Engine::new(EngineConfig::with_threads(2, budget));

            for instance in [&member, &non_member] {
                let ctx = format!("{class} seed {seed} on {instance}");
                let g_memb = possible_worlds::decide::membership::view_membership_with(
                    &global_view,
                    instance,
                    &engine,
                );
                let p_memb = possible_worlds::decide::membership::view_membership_with(
                    &private_view,
                    instance,
                    &engine,
                );
                assert_eq!(
                    p_memb.answer.unwrap(),
                    g_memb.answer.unwrap(),
                    "membership {ctx}"
                );
                assert_eq!(
                    p_memb.strategy, g_memb.strategy,
                    "membership strategy {ctx}"
                );

                for (label, global_pair, private_pair) in [
                    (
                        "uniqueness",
                        uniqueness::decide_with(&global_view, instance, &engine),
                        uniqueness::decide_with(&private_view, instance, &engine),
                    ),
                    (
                        "possibility",
                        possibility::decide_with(&global_view, instance, &engine),
                        possibility::decide_with(&private_view, instance, &engine),
                    ),
                    (
                        "certainty",
                        certainty::decide_with(&global_view, instance, &engine),
                        certainty::decide_with(&private_view, instance, &engine),
                    ),
                ] {
                    assert_eq!(
                        private_pair.answer.unwrap(),
                        global_pair.answer.unwrap(),
                        "{label} {ctx}"
                    );
                    assert_eq!(
                        private_pair.strategy, global_pair.strategy,
                        "{label} strategy {ctx}"
                    );
                }
            }

            // Containment: reflexive on the private view, and across id spaces (the two
            // sides only ever exchange `Constant`-level worlds at the boundary).
            let refl = containment::decide_with(&private_view, &private_view, &engine);
            assert!(
                refl.answer.unwrap(),
                "rep ⊆ rep must hold ({class} seed {seed})"
            );
            let p_in_g = containment::decide_with(&private_view, &global_view, &engine);
            let g_in_p = containment::decide_with(&global_view, &private_view, &engine);
            assert!(
                p_in_g.answer.unwrap() && g_in_p.answer.unwrap(),
                "twins represent the same worlds across id spaces ({class} seed {seed})"
            );
        }
    }
}

/// Shard-group decomposition over a *private* symbol context: a decoupled
/// multi-relation database re-interned into its own `Symbols` decides per shard
/// (`Strategy::PerShard`), and answers plus strategy labels match the global twin and
/// the joint search.  The coupling graph, the projected sub-databases and the per-group
/// base stores must all resolve through the database's own handle for this to hold.
#[test]
fn private_dictionary_decoupled_database_decides_per_shard() {
    use possible_worlds::workloads::decoupled_multirelation;
    let budget = Budget(20_000_000);
    let params = small_params(61);
    let int_db = decoupled_multirelation(4, &params);
    let global_db = stringify_database(&int_db);
    let symbols = Arc::new(Symbols::new());
    let private_db = global_db.reinterned(&symbols);
    assert_eq!(private_db.shard_groups().len(), 4);
    for group in private_db.shard_groups() {
        assert!(
            Arc::ptr_eq(group.database().symbols(), &symbols),
            "projections stay in the private context"
        );
    }

    let member = stringify_instance(&member_instance(&int_db, &params));
    let non_member = stringify_instance(&non_member_instance(&int_db, &params));
    let per_shard = Engine::new(EngineConfig::with_threads(2, budget));
    let joint = Engine::new(EngineConfig::with_threads(2, budget).without_per_shard());
    let global_view = View::identity(global_db);
    let private_view = View::identity(private_db);
    for instance in [&member, &non_member] {
        let g_memb = possible_worlds::decide::membership::view_membership_with(
            &global_view,
            instance,
            &per_shard,
        );
        let p_memb = possible_worlds::decide::membership::view_membership_with(
            &private_view,
            instance,
            &per_shard,
        );
        let j_memb = possible_worlds::decide::membership::view_membership_with(
            &private_view,
            instance,
            &joint,
        );
        assert_eq!(
            p_memb.answer.clone().unwrap(),
            g_memb.answer.unwrap(),
            "private vs global on {instance}"
        );
        assert_eq!(
            p_memb.answer.unwrap(),
            j_memb.answer.unwrap(),
            "per-shard vs joint on {instance}"
        );
        assert_eq!(p_memb.strategy, Strategy::PerShard { groups: 4 });
        assert_eq!(p_memb.strategy, g_memb.strategy);

        for (label, g_pair, p_pair, j_pair) in [
            (
                "possibility",
                possibility::decide_with(&global_view, instance, &per_shard),
                possibility::decide_with(&private_view, instance, &per_shard),
                possibility::decide_with(&private_view, instance, &joint),
            ),
            (
                "certainty",
                certainty::decide_with(&global_view, instance, &per_shard),
                certainty::decide_with(&private_view, instance, &per_shard),
                certainty::decide_with(&private_view, instance, &joint),
            ),
            (
                "uniqueness",
                uniqueness::decide_with(&global_view, instance, &per_shard),
                uniqueness::decide_with(&private_view, instance, &per_shard),
                uniqueness::decide_with(&private_view, instance, &joint),
            ),
        ] {
            assert_eq!(
                p_pair.answer.clone().unwrap(),
                g_pair.answer.unwrap(),
                "{label} private vs global"
            );
            assert_eq!(
                p_pair.answer.unwrap(),
                j_pair.answer.unwrap(),
                "{label} per-shard vs joint"
            );
            assert_eq!(
                p_pair.strategy, g_pair.strategy,
                "{label} strategy private vs global"
            );
        }
    }
    // Containment across id spaces stays per-shard on aligned partitions.
    let refl = containment::decide_with(&private_view, &private_view, &per_shard);
    assert!(refl.answer.unwrap());
    assert_eq!(refl.strategy, Strategy::PerShard { groups: 4 });
    let cross = containment::decide_with(&private_view, &global_view, &per_shard);
    assert!(
        cross.answer.unwrap(),
        "twins represent the same worlds across id spaces"
    );
}

/// End-to-end through the batched front door: a queue of requests against the private
/// twin returns, position by position, the outcomes (answers *and* strategies) of the
/// same queue against the global twin.
#[test]
fn private_dictionary_batch_matches_global_twin() {
    let budget = Budget(20_000_000);
    let mut global_requests = Vec::new();
    let mut private_requests = Vec::new();
    for (_, generate) in generators() {
        let params = small_params(51);
        let int_db = CDatabase::single(generate("T", &params));
        let global_db = stringify_database(&int_db);
        let symbols = Arc::new(Symbols::new());
        let private_db = global_db.reinterned(&symbols);
        let member = stringify_instance(&member_instance(&int_db, &params));

        for (view, out) in [
            (View::identity(global_db), &mut global_requests),
            (View::identity(private_db), &mut private_requests),
        ] {
            out.push(batch::DecisionRequest::Membership {
                view: view.clone(),
                instance: member.clone(),
            });
            out.push(batch::DecisionRequest::Possibility {
                view: view.clone(),
                facts: member.clone(),
            });
            out.push(batch::DecisionRequest::Certainty {
                view: view.clone(),
                facts: member.clone(),
            });
            out.push(batch::DecisionRequest::Uniqueness {
                view: view.clone(),
                instance: member.clone(),
            });
            out.push(batch::DecisionRequest::Containment {
                left: view.clone(),
                right: view,
            });
        }
    }
    for threads in [1, 2, 8] {
        let cfg = EngineConfig::with_threads(threads, budget);
        let global_outcomes = batch::decide_all_with(&global_requests, &cfg);
        let private_outcomes = batch::decide_all_with(&private_requests, &cfg);
        assert_eq!(global_outcomes.len(), private_outcomes.len());
        for (i, (g, p)) in global_outcomes.iter().zip(&private_outcomes).enumerate() {
            assert_eq!(
                *p.answer.as_ref().unwrap(),
                *g.answer.as_ref().unwrap(),
                "request {i} with {threads} threads"
            );
            assert_eq!(
                p.strategy, g.strategy,
                "request {i} strategy with {threads} threads"
            );
        }
    }
}
