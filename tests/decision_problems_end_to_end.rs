//! End-to-end scenarios spanning all crates: build tables with the public API, query them,
//! and check the relationships between the five decision problems that the paper states in
//! Sections 1.2 and 2.3.

use possible_worlds::prelude::*;

fn budget() -> Budget {
    Budget(20_000_000)
}

/// A small product-catalogue database with one unknown price tier and one conditional row.
fn catalogue() -> (CDatabase, Variable) {
    let mut vars = VarGen::new();
    let tier = vars.named("tier");
    let table = CTable::new(
        "catalogue",
        2,
        Conjunction::new([Atom::neq(tier, "banned")]),
        [
            CTuple::of_terms([Term::from("widget"), Term::from("basic")]),
            CTuple::of_terms([Term::from("gadget"), Term::Var(tier)]),
            CTuple::with_condition(
                [Term::from("gizmo"), Term::from("premium")],
                Conjunction::new([Atom::eq(tier, "premium")]),
            ),
        ],
    )
    .unwrap();
    (CDatabase::single(table), tier)
}

#[test]
fn membership_is_a_special_case_of_containment() {
    // "the membership problem is a special case of the containment problem" (§2.3 remark):
    // I ∈ rep(𝒯) iff {I} ⊆ rep(𝒯).
    let (db, _) = catalogue();
    let world = Instance::single(
        "catalogue",
        Relation::from_tuples(
            2,
            [
                Tuple::new(["widget".into(), "basic".into()]),
                Tuple::new(["gadget".into(), "standard".into()]),
            ],
        ),
    );
    let as_membership = membership::decide(&db, &world, budget()).unwrap();
    let singleton = View::identity(CDatabase::single(
        CTable::codd(
            "catalogue",
            2,
            world
                .relation("catalogue")
                .unwrap()
                .iter()
                .map(|t| t.iter().map(Term::from).collect::<Vec<_>>()),
        )
        .unwrap(),
    ));
    let as_containment =
        containment::decide(&singleton, &View::identity(db.clone()), budget()).unwrap();
    assert_eq!(as_membership, as_containment);
    assert!(as_membership, "the standard-tier world is representable");
}

#[test]
fn uniqueness_is_membership_plus_containment_in_a_singleton() {
    // "The uniqueness problem can be reduced to a membership together with a particular
    // containment (q0(Δ0) ⊆ {I})" (§2.3 remark).
    let (db, tier) = catalogue();
    let view = View::identity(db.clone());
    // Pin the unknown tier via an extra global condition to make the representation unique.
    let pinned = CTable::new(
        "catalogue",
        2,
        Conjunction::new([Atom::eq(tier, "standard")]),
        db.table("catalogue").unwrap().tuples().to_vec(),
    )
    .unwrap();
    let pinned_view = View::identity(CDatabase::single(pinned));
    let unique_world = Instance::single(
        "catalogue",
        Relation::from_tuples(
            2,
            [
                Tuple::new(["widget".into(), "basic".into()]),
                Tuple::new(["gadget".into(), "standard".into()]),
            ],
        ),
    );
    assert!(uniqueness::decide(&pinned_view, &unique_world, budget()).unwrap());
    assert!(!uniqueness::decide(&view, &unique_world, budget()).unwrap());
    // Consistency with membership: the unique world is of course a member.
    assert!(membership::decide(&pinned_view.db, &unique_world, budget()).unwrap());
}

#[test]
fn certainty_implies_possibility_but_not_conversely() {
    let (db, _) = catalogue();
    let view = View::identity(db);
    let certain_fact = Instance::single(
        "catalogue",
        Relation::from_tuples(2, [Tuple::new(["widget".into(), "basic".into()])]),
    );
    let possible_fact = Instance::single(
        "catalogue",
        Relation::from_tuples(2, [Tuple::new(["gizmo".into(), "premium".into()])]),
    );
    let impossible_fact = Instance::single(
        "catalogue",
        Relation::from_tuples(2, [Tuple::new(["gadget".into(), "banned".into()])]),
    );
    assert!(certainty::decide(&view, &certain_fact, budget()).unwrap());
    assert!(possibility::decide(&view, &certain_fact, budget()).unwrap());
    assert!(possibility::decide(&view, &possible_fact, budget()).unwrap());
    assert!(!certainty::decide(&view, &possible_fact, budget()).unwrap());
    assert!(!possibility::decide(&view, &impossible_fact, budget()).unwrap());
    assert!(!certainty::decide(&view, &impossible_fact, budget()).unwrap());
}

#[test]
fn query_views_compose_with_the_decision_problems() {
    let (db, _) = catalogue();
    // premium_products(p) :- catalogue(p, "premium")   — note: "premium" is a *constant*
    // here, so it is spelled out with QTerm::constant (the qatom! macro treats bare string
    // literals as query variables).
    let query = Query::single(
        "premium_products",
        QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("p")],
            [possible_worlds::query::QueryAtom::new(
                "catalogue",
                [QTerm::var("p"), QTerm::constant("premium")],
            )],
        ))),
    );
    let view = View::new(query, db);
    let gadget = Instance::single(
        "premium_products",
        Relation::from_tuples(1, [Tuple::new(["gadget".into()])]),
    );
    let gizmo = Instance::single(
        "premium_products",
        Relation::from_tuples(1, [Tuple::new(["gizmo".into()])]),
    );
    // Both are possible (tier may be premium) and neither certain.
    assert!(possibility::decide(&view, &gadget, budget()).unwrap());
    assert!(possibility::decide(&view, &gizmo, budget()).unwrap());
    assert!(!certainty::decide(&view, &gadget, budget()).unwrap());
    // If gadget is premium then gizmo's conditional row fires too — so {gadget, gizmo}
    // together are possible, while {gizmo} without {gadget} is not a *world* of the view
    // (membership) even though each fact alone is possible.
    let both = Instance::single(
        "premium_products",
        Relation::from_tuples(
            1,
            [Tuple::new(["gadget".into()]), Tuple::new(["gizmo".into()])],
        ),
    );
    assert!(possibility::decide(&view, &both, budget()).unwrap());
    assert!(membership::view_membership(&view, &both, budget()).unwrap());
    assert!(!membership::view_membership(&view, &gizmo, budget()).unwrap());
}

#[test]
fn ctable_algebra_answers_match_world_enumeration_for_the_catalogue() {
    let (db, _) = catalogue();
    let q = Ucq::single(ConjunctiveQuery::new(
        [QTerm::var("p"), QTerm::var("t")],
        [qatom!("catalogue"; "p", "t")],
    ));
    let out = eval_ucq(&q, &db, "Q").unwrap();
    // The produced c-table represents exactly the identity view of the catalogue.
    let direct: std::collections::BTreeSet<Relation> = View::identity(db)
        .enumerate_worlds(100_000, [])
        .unwrap()
        .into_iter()
        .map(|w| w.relation_or_empty("catalogue", 2))
        .collect();
    let via_algebra: std::collections::BTreeSet<Relation> = View::identity(CDatabase::single(out))
        .enumerate_worlds(
            100_000,
            [
                Constant::str("standard"),
                Constant::str("basic"),
                Constant::str("premium"),
                Constant::str("banned"),
                Constant::str("widget"),
                Constant::str("gadget"),
                Constant::str("gizmo"),
            ],
        )
        .unwrap()
        .into_iter()
        .map(|w| w.relation_or_empty("Q", 2))
        .collect();
    // Every directly-enumerated world is also produced by the algebra's c-table (the
    // converse needs a common fresh-constant budget, checked in pw-core's unit tests).
    for world in &direct {
        assert!(via_algebra.contains(world), "missing world {world}");
    }
}
