//! `check-bench` — the CI bench-regression guard.
//!
//! Three jobs, all offline and dependency-free (the reports are JSON documents emitted
//! by our own harnesses, so a line-based field extractor is all the parsing needed):
//!
//! 1. **Regression guard over the committed reports.**  Committed reports are
//!    *discovered* (any `BENCH_*.json` at the repository root — no hard-coded name
//!    list); each embeds a baseline and a `speedup_vs_baseline` table, and a committed
//!    report whose speedups have sunk below the floor (default `0.9`) means someone
//!    committed a measured regression — the `bench-smoke` CI job fails.  An unreadable,
//!    empty or table-less report fails loudly instead of being skipped.
//! 2. **Incremental guard.**  Reports carrying an `incremental_guard` table (the
//!    `bench-pr5` decide/mutate/re-decide harness) must show `answers_match: true` on
//!    every row — the incremental path's answers are bit-identical to the from-scratch
//!    path's — and a fresh/redecide speedup at or above the row's embedded `floor`
//!    (`10` in the committed full run, `0.9` in smoke runs).
//! 3. **Certify guard.**  Reports carrying a `certify_overhead` table (the `bench-pr6`
//!    proof-carrying-verdicts harness) must show `verified: true` on every row — the
//!    certified answers matched the plain ones and `pw_check` accepted every
//!    certificate — and a certified/plain overhead at or below the row's embedded
//!    `ceiling` (`1.5` in the committed full run, relaxed in smoke runs).
//! 4. **Robustness guard.**  Reports carrying a `robustness_guard` table (the
//!    `bench-pr7` serving-hardening harness) must show `answers_match: true` on every
//!    row — the armed session's answers and strategies are bit-identical to the plain
//!    session's — and a hardened/plain overhead at or below the row's embedded
//!    `ceiling` (`1.05` in the committed full run, relaxed in smoke runs).
//! 5. **Stealing guard.**  Reports carrying a `stealing_guard` table (the `bench-pr8`
//!    work-stealing harness) must show `answers_match: true` on every row — the
//!    stealing scheduler's answers and strategies are bit-identical to the static
//!    split's — and a static/stealing speedup at or above the row's embedded `floor`
//!    (`4` on the committed skewed critical-path rows, `0.9` wall-clock parity on the
//!    balanced families, relaxed in smoke runs).
//! 6. **Stream guard.**  Reports carrying a `stream_guard` table (the `bench-stream`
//!    standing-query harness) must show `answers_match: true` on every row — the
//!    subscription path's verdict flips and standing verdicts are bit-identical to the
//!    replay-everything baseline's — and a redecide/push speedup at or above the row's
//!    embedded `floor` (`10` on the committed flip-sparse rows, `0.9` in smoke runs).
//! 7. **Shape check of fresh smoke runs.**  The smoke reports passed as positional
//!    arguments (produced by `bench-pr2/3/4/5/6/7/8 --smoke` and `bench-stream --smoke`
//!    earlier in the job) must be well-formed: the right `bench` tag, `smoke: true`, at
//!    least one result row, and every row carrying the
//!    `problem`/`workload`/`mode`/`wall_ms`/`answers` fields with a known mode.
//!
//! Usage:
//!   check-bench [--root DIR] [--min-speedup X] [SMOKE_REPORT.json ...]
//!
//! Exits non-zero with a message per violation.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Extract a `"name": "string"` field from a single JSON line.
fn str_field(line: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_owned())
}

/// Extract a `"name": number` field from a single JSON line.
fn num_field(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find([',', '}']).map(|e| e + start)?;
    line[start..end].trim().parse().ok()
}

/// The committed-report guard: every speedup row must clear the floor.
fn check_committed(path: &Path, min_speedup: f64, failures: &mut Vec<String>) {
    let failures_before = failures.len();
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) => {
            failures.push(format!("{}: unreadable: {e}", path.display()));
            return;
        }
    };
    if raw.trim().is_empty() {
        failures.push(format!("{}: empty report", path.display()));
        return;
    }
    check_incremental(path, &raw, failures);
    check_certify(path, &raw, failures);
    check_robustness(path, &raw, failures);
    check_stealing(path, &raw, failures);
    check_stream(path, &raw, failures);
    if !raw.contains("\"speedup_vs_baseline\"") {
        failures.push(format!(
            "{}: committed report has no speedup_vs_baseline table (lost its baseline?)",
            path.display()
        ));
        return;
    }
    let mut rows = 0usize;
    let mut in_speedups = false;
    for line in raw.lines() {
        // The embedded baseline may itself contain a speedup table (a baseline that was
        // produced with `--baseline`); only the *outer* table — after the baseline
        // object — is this report's verdict, so keep the last table's rows.
        if line.trim_start().starts_with("\"speedup_vs_baseline\"") {
            in_speedups = true;
            rows = 0;
            continue;
        }
        if !in_speedups {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.starts_with(']') {
            in_speedups = false;
            continue;
        }
        let Some(speedup) = num_field(trimmed, "speedup") else {
            continue;
        };
        rows += 1;
        // Small epsilon: the reports round to two decimals, and a printed "0.90" must
        // clear a 0.9 floor.
        if speedup < min_speedup - 1e-9 {
            failures.push(format!(
                "{}: {} / {} / {} regressed to {speedup}x (floor {min_speedup}x)",
                path.display(),
                str_field(trimmed, "problem").unwrap_or_default(),
                str_field(trimmed, "workload").unwrap_or_default(),
                str_field(trimmed, "mode").unwrap_or_default(),
            ));
        }
    }
    if rows == 0 {
        failures.push(format!(
            "{}: speedup_vs_baseline table has no rows",
            path.display()
        ));
    } else if failures.len() == failures_before {
        println!(
            "ok: {} ({rows} speedup rows ≥ {min_speedup}x)",
            path.display()
        );
    }
}

/// The incremental guard (reports with an `incremental_guard` table — the
/// decide/mutate/re-decide harness): every row must show bit-identical answers between
/// the incremental and the from-scratch path, and a fresh/redecide speedup at or above
/// the row's own embedded floor.
fn check_incremental(path: &Path, raw: &str, failures: &mut Vec<String>) {
    if !raw.contains("\"incremental_guard\"") {
        return;
    }
    let mut in_guard = false;
    let mut rows = 0usize;
    let failures_before = failures.len();
    for line in raw.lines() {
        if line.trim_start().starts_with("\"incremental_guard\"") {
            in_guard = true;
            continue;
        }
        if !in_guard {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.starts_with(']') {
            break;
        }
        let (Some(speedup), Some(floor)) =
            (num_field(trimmed, "speedup"), num_field(trimmed, "floor"))
        else {
            continue;
        };
        rows += 1;
        let label = format!(
            "{} / {}",
            str_field(trimmed, "problem").unwrap_or_default(),
            str_field(trimmed, "workload").unwrap_or_default(),
        );
        if !trimmed.contains("\"answers_match\": true") {
            failures.push(format!(
                "{}: {label}: incremental answers diverge from the from-scratch path",
                path.display()
            ));
        }
        if speedup < floor - 1e-9 {
            failures.push(format!(
                "{}: {label}: incremental speedup {speedup}x below its floor {floor}x",
                path.display()
            ));
        }
    }
    if rows == 0 {
        failures.push(format!(
            "{}: incremental_guard table has no rows",
            path.display()
        ));
    } else if failures.len() == failures_before {
        println!(
            "ok: {} ({rows} incremental rows: answers match, speedups above floors)",
            path.display()
        );
    }
}

/// The certify guard (reports with a `certify_overhead` table — the proof-carrying
/// verdicts harness): every row must show `verified: true` (the certified session's
/// answers matched the plain session's and `pw_check` accepted every certificate) and
/// a certified/plain overhead at or below the row's own embedded ceiling.
fn check_certify(path: &Path, raw: &str, failures: &mut Vec<String>) {
    if !raw.contains("\"certify_overhead\"") {
        return;
    }
    let mut in_table = false;
    let mut rows = 0usize;
    let failures_before = failures.len();
    for line in raw.lines() {
        if line.trim_start().starts_with("\"certify_overhead\"") {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.starts_with(']') {
            break;
        }
        let (Some(overhead), Some(ceiling)) = (
            num_field(trimmed, "overhead"),
            num_field(trimmed, "ceiling"),
        ) else {
            continue;
        };
        rows += 1;
        let label = format!(
            "{} / {}",
            str_field(trimmed, "problem").unwrap_or_default(),
            str_field(trimmed, "workload").unwrap_or_default(),
        );
        if !trimmed.contains("\"verified\": true") {
            failures.push(format!(
                "{}: {label}: certified answers diverged or a certificate failed pw_check",
                path.display()
            ));
        }
        if overhead > ceiling + 1e-9 {
            failures.push(format!(
                "{}: {label}: certificate overhead {overhead}x above its ceiling {ceiling}x",
                path.display()
            ));
        }
    }
    if rows == 0 {
        failures.push(format!(
            "{}: certify_overhead table has no rows",
            path.display()
        ));
    } else if failures.len() == failures_before {
        println!(
            "ok: {} ({rows} certify rows: certificates verified, overheads below ceilings)",
            path.display()
        );
    }
}

/// The robustness guard (reports with a `robustness_guard` table — the
/// serving-hardening harness): every row must show `answers_match: true` (the armed
/// session's answers and strategies are bit-identical to the plain session's) and an
/// armed/plain overhead at or below the row's own embedded ceiling.
fn check_robustness(path: &Path, raw: &str, failures: &mut Vec<String>) {
    if !raw.contains("\"robustness_guard\"") {
        return;
    }
    let mut in_table = false;
    let mut rows = 0usize;
    let failures_before = failures.len();
    for line in raw.lines() {
        if line.trim_start().starts_with("\"robustness_guard\"") {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.starts_with(']') {
            break;
        }
        let (Some(overhead), Some(ceiling)) = (
            num_field(trimmed, "overhead"),
            num_field(trimmed, "ceiling"),
        ) else {
            continue;
        };
        rows += 1;
        let label = format!(
            "{} / {}",
            str_field(trimmed, "problem").unwrap_or_default(),
            str_field(trimmed, "workload").unwrap_or_default(),
        );
        if !trimmed.contains("\"answers_match\": true") {
            failures.push(format!(
                "{}: {label}: armed answers diverged from the plain session",
                path.display()
            ));
        }
        if overhead > ceiling + 1e-9 {
            failures.push(format!(
                "{}: {label}: hardening overhead {overhead}x above its ceiling {ceiling}x",
                path.display()
            ));
        }
    }
    if rows == 0 {
        failures.push(format!(
            "{}: robustness_guard table has no rows",
            path.display()
        ));
    } else if failures.len() == failures_before {
        println!(
            "ok: {} ({rows} robustness rows: answers match, overheads below ceilings)",
            path.display()
        );
    }
}

/// The stealing guard (reports with a `stealing_guard` table — the work-stealing
/// scheduler harness): every row must show `answers_match: true` (the stealing
/// scheduler's answers and strategies are bit-identical to the static split's) and a
/// static/stealing speedup at or above the row's own embedded floor.  Each row names
/// its `metric`: `critical_path` rows compare the two schedules' busiest-worker times
/// (the wall clock achievable at one core per worker), `wall` rows compare measured
/// wall clocks.
fn check_stealing(path: &Path, raw: &str, failures: &mut Vec<String>) {
    if !raw.contains("\"stealing_guard\"") {
        return;
    }
    let mut in_table = false;
    let mut rows = 0usize;
    let failures_before = failures.len();
    for line in raw.lines() {
        if line.trim_start().starts_with("\"stealing_guard\"") {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.starts_with(']') {
            break;
        }
        let (Some(speedup), Some(floor)) =
            (num_field(trimmed, "speedup"), num_field(trimmed, "floor"))
        else {
            continue;
        };
        rows += 1;
        let label = format!(
            "{} / {} ({})",
            str_field(trimmed, "problem").unwrap_or_default(),
            str_field(trimmed, "workload").unwrap_or_default(),
            str_field(trimmed, "metric").unwrap_or_default(),
        );
        if !trimmed.contains("\"answers_match\": true") {
            failures.push(format!(
                "{}: {label}: stealing answers diverge from the static split",
                path.display()
            ));
        }
        if speedup < floor - 1e-9 {
            failures.push(format!(
                "{}: {label}: stealing speedup {speedup}x below its floor {floor}x",
                path.display()
            ));
        }
    }
    if rows == 0 {
        failures.push(format!(
            "{}: stealing_guard table has no rows",
            path.display()
        ));
    } else if failures.len() == failures_before {
        println!(
            "ok: {} ({rows} stealing rows: answers match, speedups above floors)",
            path.display()
        );
    }
}

/// The stream guard (reports with a `stream_guard` table — the standing-query
/// subscription harness): every row must show `answers_match: true` (the subscription
/// path's verdict flips and standing verdicts are bit-identical to the
/// replay-everything baseline's) and a redecide/push speedup at or above the row's own
/// embedded floor.
fn check_stream(path: &Path, raw: &str, failures: &mut Vec<String>) {
    if !raw.contains("\"stream_guard\"") {
        return;
    }
    let mut in_table = false;
    let mut rows = 0usize;
    let failures_before = failures.len();
    for line in raw.lines() {
        if line.trim_start().starts_with("\"stream_guard\"") {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.starts_with(']') {
            break;
        }
        let (Some(speedup), Some(floor)) =
            (num_field(trimmed, "speedup"), num_field(trimmed, "floor"))
        else {
            continue;
        };
        rows += 1;
        let label = format!(
            "{} / {}",
            str_field(trimmed, "problem").unwrap_or_default(),
            str_field(trimmed, "workload").unwrap_or_default(),
        );
        if !trimmed.contains("\"answers_match\": true") {
            failures.push(format!(
                "{}: {label}: subscription flips diverge from the replay baseline",
                path.display()
            ));
        }
        if speedup < floor - 1e-9 {
            failures.push(format!(
                "{}: {label}: stream speedup {speedup}x below its floor {floor}x",
                path.display()
            ));
        }
    }
    if rows == 0 {
        failures.push(format!(
            "{}: stream_guard table has no rows",
            path.display()
        ));
    } else if failures.len() == failures_before {
        println!(
            "ok: {} ({rows} stream rows: flips match, speedups above floors)",
            path.display()
        );
    }
}

/// The smoke-report shape check.
fn check_smoke(path: &Path, failures: &mut Vec<String>) {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) => {
            failures.push(format!("{}: unreadable: {e}", path.display()));
            return;
        }
    };
    if raw.trim().is_empty() {
        failures.push(format!("{}: empty report", path.display()));
        return;
    }
    let header_ok = raw
        .lines()
        .any(|l| str_field(l, "bench").is_some_and(|b| b.starts_with("BENCH_")));
    if !header_ok {
        failures.push(format!("{}: missing/odd \"bench\" tag", path.display()));
    }
    if !raw.contains("\"smoke\": true") {
        failures.push(format!("{}: not a smoke run", path.display()));
    }
    check_incremental(path, &raw, failures);
    check_certify(path, &raw, failures);
    check_robustness(path, &raw, failures);
    check_stealing(path, &raw, failures);
    check_stream(path, &raw, failures);
    let mut rows = 0usize;
    for line in raw.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with("{\"problem\":") {
            continue;
        }
        // Guard/speedup/overhead tables are checked separately; result rows are the
        // ones carrying a wall-clock measurement.
        if num_field(trimmed, "wall_ms").is_none()
            && (num_field(trimmed, "speedup").is_some() || num_field(trimmed, "overhead").is_some())
        {
            continue;
        }
        rows += 1;
        let mode = str_field(trimmed, "mode");
        let shape_ok = str_field(trimmed, "problem").is_some()
            && str_field(trimmed, "workload").is_some()
            && num_field(trimmed, "wall_ms").is_some()
            && trimmed.contains("\"answers\":")
            && matches!(
                mode.as_deref(),
                Some("sequential")
                    | Some("parallel")
                    | Some("fresh")
                    | Some("incremental")
                    | Some("plain")
                    | Some("certified")
                    | Some("hardened")
                    | Some("static")
                    | Some("stealing")
                    | Some("push")
                    | Some("redecide")
            );
        if !shape_ok {
            failures.push(format!(
                "{}: malformed result row: {trimmed}",
                path.display()
            ));
        }
    }
    if rows == 0 {
        failures.push(format!(
            "{}: smoke run produced no measurements",
            path.display()
        ));
    } else {
        println!("ok: {} ({rows} smoke rows)", path.display());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let root = PathBuf::from(flag_value("--root").unwrap_or_else(|| ".".to_owned()));
    let min_speedup: f64 = flag_value("--min-speedup")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.9);
    // Positional arguments (everything that is not a flag or a flag value) are smoke
    // reports to shape-check.
    let mut smoke_reports: Vec<PathBuf> = Vec::new();
    let mut skip = false;
    for arg in &args {
        if skip {
            skip = false;
            continue;
        }
        if arg == "--root" || arg == "--min-speedup" {
            skip = true;
            continue;
        }
        smoke_reports.push(PathBuf::from(arg));
    }

    let mut failures = Vec::new();
    // Discover the committed reports instead of hard-coding a name list: anything the
    // harnesses emit is named `BENCH_<something>.json` and lives at the root.  A
    // directory we cannot read is a loud failure, not an empty result.
    let mut committed: Vec<PathBuf> = match std::fs::read_dir(&root) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            failures.push(format!("cannot list {}: {e}", root.display()));
            Vec::new()
        }
    };
    committed.sort();
    if committed.is_empty() {
        failures.push(format!(
            "no committed BENCH_*.json found under {}",
            root.display()
        ));
    }
    for path in &committed {
        check_committed(path, min_speedup, &mut failures);
    }
    for path in &smoke_reports {
        check_smoke(path, &mut failures);
    }

    if failures.is_empty() {
        println!(
            "bench-regression guard: {} committed report(s), {} smoke report(s) — all green",
            committed.len(),
            smoke_reports.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
