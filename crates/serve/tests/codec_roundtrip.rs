//! Property tests for the wire codec (seeded proptest shim, no network):
//!
//! * random JSON trees survive serialize → parse bit-identically;
//! * random c-databases, instances, deltas and decision requests survive
//!   encode → serialize → parse → decode → encode with the *same* JSON tree — the
//!   loopback guarantee the server's bit-identical contract rests on;
//! * the parser rejects oversized, over-deep and malformed input with a typed error,
//!   never a panic.

use proptest::prelude::*;
use pw_condition::{Atom, Conjunction, Term, Variable};
use pw_core::{CDatabase, CTable, CTuple, Delta, DeltaOp};
use pw_relational::{Constant, Instance, Relation, Tuple};
use pw_serve::json::{Json, MAX_DEPTH};
use pw_serve::wire;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn constant_strategy() -> impl proptest::strategy::Strategy<Value = Constant> {
    (0..3usize, -4..9i64, any::<bool>()).prop_map(|(kind, i, b)| match kind {
        0 => Constant::from(i),
        1 => Constant::from(b),
        _ => Constant::from(format!("s{i}\n\"{b}\"")),
    })
}

fn term_strategy() -> impl proptest::strategy::Strategy<Value = Term> {
    (any::<bool>(), 0..6u32, constant_strategy()).prop_map(|(is_var, v, c)| {
        if is_var {
            Term::Var(Variable(v))
        } else {
            Term::constant(c)
        }
    })
}

fn conjunction_strategy() -> impl proptest::strategy::Strategy<Value = Conjunction> {
    let atom = (term_strategy(), term_strategy(), any::<bool>()).prop_map(|(l, r, eq)| {
        if eq {
            Atom::Eq(l, r)
        } else {
            Atom::Neq(l, r)
        }
    });
    proptest::collection::vec(atom, 0..3).prop_map(Conjunction::new)
}

fn table_strategy(name: &'static str) -> impl proptest::strategy::Strategy<Value = CTable> {
    let row = (
        proptest::collection::vec(term_strategy(), 2..3),
        conjunction_strategy(),
    )
        .prop_map(|(terms, condition)| CTuple::with_condition(terms, condition));
    (proptest::collection::vec(row, 0..4), conjunction_strategy()).prop_map(
        move |(rows, global)| {
            CTable::new(name, 2, global, rows).expect("all generated rows have arity 2")
        },
    )
}

fn database_strategy() -> impl proptest::strategy::Strategy<Value = CDatabase> {
    (table_strategy("R"), table_strategy("S"), any::<bool>()).prop_map(|(r, s, both)| {
        if both {
            CDatabase::new([r, s])
        } else {
            CDatabase::single(r)
        }
    })
}

fn instance_strategy() -> impl proptest::strategy::Strategy<Value = Instance> {
    let row = proptest::collection::vec(constant_strategy(), 2..3);
    proptest::collection::vec(row, 0..4).prop_map(|rows| {
        let mut rel = Relation::empty(2);
        for row in rows {
            rel.insert(Tuple::new(row))
                .expect("arity 2 by construction");
        }
        Instance::single("R", rel)
    })
}

fn delta_strategy() -> impl proptest::strategy::Strategy<Value = Delta> {
    let op = (
        0..3usize,
        0..4usize,
        proptest::collection::vec(term_strategy(), 2..3),
        conjunction_strategy(),
    )
        .prop_map(|(kind, row, terms, condition)| match kind {
            0 => DeltaOp::Insert {
                table: "R".to_string(),
                row: CTuple::with_condition(terms, condition),
            },
            1 => DeltaOp::Retract {
                table: "R".to_string(),
                row,
            },
            _ => DeltaOp::Conjoin {
                table: "R".to_string(),
                row,
                condition,
            },
        });
    proptest::collection::vec(op, 0..5).prop_map(|ops| ops.into_iter().collect())
}

/// A random JSON tree of bounded depth, exercising every variant.
fn json_strategy(depth: usize) -> impl proptest::strategy::Strategy<Value = Json> {
    let leaf = (0..5usize, -9000..9000i64, any::<bool>()).prop_map(|(kind, i, b)| match kind {
        0 => Json::Null,
        1 => Json::Bool(b),
        2 => Json::Int(i),
        3 => Json::Float((i as f64) / 8.0),
        _ => Json::str(format!("k{i}\t\"\\😀")),
    });
    proptest::collection::vec(leaf, 1..6).prop_map(move |leaves| {
        // Fold the generated leaves into nested arrays/objects so structure varies
        // with the drawn values while staying well under the depth limit.
        let mut value = Json::Array(leaves.clone());
        for (i, leaf) in leaves.into_iter().enumerate().take(depth) {
            value = if i % 2 == 0 {
                Json::Object(vec![(format!("level{i}"), value), ("leaf".into(), leaf)])
            } else {
                Json::Array(vec![value, leaf])
            };
        }
        value
    })
}

fn reserialize(j: &Json) -> Json {
    Json::parse(&j.to_string()).expect("serializer output reparses")
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn json_trees_round_trip_bit_identically(j in json_strategy(6)) {
        prop_assert_eq!(reserialize(&j), j);
    }

    #[test]
    fn databases_round_trip_bit_identically(db in database_strategy()) {
        let encoded = wire::encode_cdatabase(&db);
        let reparsed = reserialize(&encoded);
        prop_assert_eq!(&reparsed, &encoded);
        let decoded = wire::decode_cdatabase(&reparsed).expect("round-tripped database decodes");
        prop_assert_eq!(wire::encode_cdatabase(&decoded), encoded);
    }

    #[test]
    fn deltas_round_trip_bit_identically(delta in delta_strategy()) {
        let encoded = wire::encode_delta(&delta);
        let reparsed = reserialize(&encoded);
        prop_assert_eq!(&reparsed, &encoded);
        let decoded = wire::decode_delta(&reparsed).expect("round-tripped delta decodes");
        prop_assert_eq!(wire::encode_delta(&decoded), encoded);
    }

    #[test]
    fn instances_round_trip_bit_identically(instance in instance_strategy()) {
        let encoded = wire::encode_instance(&instance);
        let reparsed = reserialize(&encoded);
        prop_assert_eq!(&reparsed, &encoded);
        let decoded = wire::decode_instance(&reparsed).expect("round-tripped instance decodes");
        prop_assert_eq!(wire::encode_instance(&decoded), encoded);
    }

    #[test]
    fn requests_round_trip_through_decode(
        (db, instance, kind) in (database_strategy(), instance_strategy(), 0..5usize)
    ) {
        // Build the wire form of a request, parse it back, decode it against the
        // database, and check the decoded request re-encodes its payload identically.
        let (problem, field) = match kind {
            0 => ("membership", "instance"),
            1 => ("uniqueness", "instance"),
            2 => ("possibility", "facts"),
            3 => ("certainty", "facts"),
            _ => ("containment", "right"),
        };
        let payload = if problem == "containment" {
            Json::Int(7)
        } else {
            wire::encode_instance(&instance)
        };
        let request_json = Json::Object(vec![
            ("problem".to_string(), Json::str(problem)),
            (field.to_string(), payload),
        ]);
        let reparsed = reserialize(&request_json);
        prop_assert_eq!(&reparsed, &request_json);
        let lookup = |id: u64| if id == 7 { Some(db.clone()) } else { None };
        let decoded = wire::decode_request(&reparsed, &db, &lookup).expect("request decodes");
        use pw_decide::DecisionRequest as DR;
        let reencoded_payload = match &decoded {
            DR::Membership { instance, .. } | DR::Uniqueness { instance, .. } =>
                wire::encode_instance(instance),
            DR::Possibility { facts, .. } | DR::Certainty { facts, .. } =>
                wire::encode_instance(facts),
            DR::Containment { .. } => Json::Int(7),
        };
        prop_assert_eq!(reencoded_payload, reparsed.get(field).unwrap().clone());
    }
}

// ---------------------------------------------------------------------------
// Rejection: oversized, over-deep, malformed — typed errors, no panics
// ---------------------------------------------------------------------------

#[test]
fn parser_rejects_oversized_input() {
    let big = format!("\"{}\"", "x".repeat(1 << 10));
    let err = Json::parse_with_limits(&big, MAX_DEPTH, 256).unwrap_err();
    assert!(err.to_string().contains("limit"), "{err}");
}

#[test]
fn parser_rejects_deep_nesting_without_overflowing() {
    // Far deeper than any stack could recurse if the limit were missing.
    let depth = 200_000;
    let deep = "[".repeat(depth) + &"]".repeat(depth);
    assert!(Json::parse(&deep).is_err());
    let deep_objects = "{\"a\":".repeat(1_000) + "1" + &"}".repeat(1_000);
    assert!(Json::parse(&deep_objects).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mutated_text_never_panics_the_parser(
        (j, cut, junk) in (json_strategy(4), 1..40usize, 0..128u8)
    ) {
        // Truncate the valid serialization at a random point and splice a random
        // byte: the parser must return (Ok or Err), never panic.
        let text = j.to_string();
        let cut = cut.min(text.len());
        let truncated = &text.as_bytes()[..text.len() - cut];
        if let Ok(s) = std::str::from_utf8(truncated) {
            let _ = Json::parse(s);
        }
        let mut mutated = truncated.to_vec();
        mutated.push(junk.max(1));
        if let Ok(s) = String::from_utf8(mutated) {
            let _ = Json::parse(&s);
        }
    }

    #[test]
    fn hostile_trees_never_panic_the_decoders(j in json_strategy(4)) {
        // Whatever tree the fuzzer builds, every decoder answers Ok or Err.
        let _ = wire::decode_cdatabase(&j);
        let _ = wire::decode_delta(&j);
        let _ = wire::decode_instance(&j);
        let _ = wire::decode_conjunction(&j);
        let _ = wire::decode_term(&j);
        let db = CDatabase::new(Vec::<CTable>::new());
        let _ = wire::decode_request(&j, &db, &|_| None);
    }
}
