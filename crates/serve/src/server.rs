//! The service: a bounded-admission HTTP front end over [`pw_decide::Session`]s.
//!
//! ## Shape
//!
//! One OS thread accepts connections; a small fixed pool of worker threads serves
//! them, one request per connection.  Admission is a bounded queue
//! ([`std::sync::mpsc::sync_channel`]) between the two: when every worker is busy and
//! the queue is full, the accept thread *sheds* the connection with `429 Too Many
//! Requests` and a `Retry-After` header instead of queueing it unboundedly — latency
//! under overload is a refusal, never a hang.  During shutdown the same path sheds
//! with `503 Service Unavailable` while the workers drain the connections already
//! admitted.
//!
//! ## State
//!
//! Each registered c-database gets a `DbEntry`: its current [`CDatabase`] value, a
//! long-lived [`Session`] (so repeated and incremental decisions hit the engine's
//! caches), and the *standing* requests that `POST …/delta` re-decides after every
//! mutation.  Lock order is `op → registry → subscriptions → db → session → standing
//! → window → routes → flip queue` — `op` is the per-database outer lock serializing
//! decide/delta cycles, the inner locks are held briefly and never while acquiring a
//! peer's.
//!
//! ## Standing queries
//!
//! `POST /v1/subscriptions` registers decision requests as **standing queries** on a
//! database's session ([`pw_decide::Session`]'s subscription index), optionally
//! configuring a [`DeltaWindow`] over the database's mutation stream.  Each applied
//! delta then runs `Session::push_delta`, and the verdict flips fan out to the
//! subscriptions' bounded flip queues; `GET /v1/subscriptions/{id}/flips` long-polls
//! those queues.  A full queue drops its *oldest* events and counts them in `dropped`
//! — a slow consumer learns how much it missed, and the newest flips (the current
//! verdicts) always survive.
//!
//! ## Robustness
//!
//! Sockets carry read/write timeouts, bodies and heads are size-capped before
//! parsing, malformed JSON or wire values answer `400` with a typed error body, and a
//! panic inside a handler is caught at the worker boundary and answered with `500` —
//! the worker survives.

use crate::http::{read_request, write_response, Request};
use crate::json::Json;
use crate::wire;
use pw_core::{CDatabase, Delta, DeltaWindow};
use pw_decide::{Budget, EngineConfig, Session, VerdictFlip};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Server`].  [`ServerConfig::default`] is sized for a smoke test
/// or a small deployment; every field has a `pw-serve` command-line flag.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads serving admitted connections.
    pub workers: usize,
    /// Admitted-but-unserved connections the queue holds before shedding with `429`.
    pub queue_depth: usize,
    /// Request body cap in bytes; larger bodies are refused with `413`.
    pub max_body_bytes: usize,
    /// Socket read timeout (a stalled client is answered `408` and dropped).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Per-request search budget of every database session.
    pub budget: u64,
    /// Engine threads per database session.
    pub session_threads: usize,
    /// Lame-duck window after shutdown starts: connections arriving within it are
    /// refused with a typed `503` + `Retry-After` instead of a connection reset.
    pub lame_duck: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            budget: 1_000_000,
            session_threads: 2,
            lame_duck: Duration::from_millis(500),
        }
    }
}

/// One registered database: its current value, its long-lived session, and the
/// standing requests replayed after every delta.  `standing` holds the *wire* request
/// objects, re-decoded against the current database value each time — a decoded
/// [`pw_decide::DecisionRequest`] pins the database version it was decoded against,
/// and the wire form is the cheap, always-current spelling.
struct DbEntry {
    /// Outer lock serializing decide/delta cycles on this database.
    op: Mutex<()>,
    db: Mutex<CDatabase>,
    session: Mutex<Session>,
    standing: Mutex<Vec<Json>>,
    /// The delta window governing this database's mutation stream, when a
    /// subscription configured one: deltas buffer here and apply compacted.
    window: Mutex<Option<DeltaWindow>>,
    /// Verdict-flip routing: standing request id → the subscription to notify.
    routes: Mutex<HashMap<u64, Arc<Subscription>>>,
    deltas_received: AtomicU64,
    deltas_applied: AtomicU64,
    flips_emitted: AtomicU64,
}

/// Events a slow long-poller can lag behind before the oldest are dropped (and
/// counted in the response's `dropped` field).
const FLIP_QUEUE_CAP: usize = 1024;

/// One standing-query subscription: which database feeds it, which standing request
/// ids it covers, and the bounded queue its flip events wait in until a long-poll
/// drains them.
struct Subscription {
    db_id: u64,
    request_ids: Vec<u64>,
    queue: Mutex<FlipQueue>,
    /// Signalled when events arrive; `flips` long-polls wait on it.
    ready: Condvar,
}

struct FlipQueue {
    events: VecDeque<Json>,
    next_seq: u64,
    dropped: u64,
}

impl Subscription {
    /// Enqueue one flip event under the subscription's own sequence numbering,
    /// dropping the oldest beyond the cap, and wake the long-pollers.
    fn push_flip(&self, flip: &VerdictFlip) {
        let mut queue = lock(&self.queue);
        let seq = queue.next_seq;
        queue.next_seq += 1;
        let event = wire::encode_flip(seq, flip);
        if queue.events.len() >= FLIP_QUEUE_CAP {
            queue.events.pop_front();
            queue.dropped += 1;
        }
        queue.events.push_back(event);
        self.ready.notify_all();
    }
}

struct Shared {
    config: ServerConfig,
    addr: SocketAddr,
    stopping: AtomicBool,
    next_id: AtomicU64,
    next_sub_id: AtomicU64,
    registry: Mutex<HashMap<u64, Arc<DbEntry>>>,
    subscriptions: Mutex<HashMap<u64, Arc<Subscription>>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running server.  Dropping the handle does *not* stop it; POST `/v1/shutdown` (or
/// [`Server::shutdown`]) initiates a graceful drain, and [`Server::join`] waits for
/// it to finish.
pub struct Server {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `config.addr` and start the accept and worker threads.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            addr,
            stopping: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            next_sub_id: AtomicU64::new(0),
            registry: Mutex::new(HashMap::new()),
            subscriptions: Mutex::new(HashMap::new()),
            config,
        });

        let (tx, rx) = sync_channel::<TcpStream>(shared.config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            // `tx` moves in here; when this loop exits the sender drops, the channel
            // disconnects, and the workers exit once the queue is drained — that drop
            // *is* the graceful-drain mechanism.
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                if accept_shared.stopping.load(Ordering::SeqCst) {
                    shed(
                        &accept_shared,
                        stream,
                        503,
                        "shutting-down",
                        "server is shutting down",
                    );
                    break;
                }
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        shed(
                            &accept_shared,
                            stream,
                            429,
                            "overloaded",
                            "admission queue is full, retry later",
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            // Lame duck: for a short window, clients racing the shutdown still get a
            // typed 503 + Retry-After instead of a connection reset.
            let _ = listener.set_nonblocking(true);
            let gone = std::time::Instant::now() + accept_shared.config.lame_duck;
            while std::time::Instant::now() < gone {
                match listener.accept() {
                    Ok((stream, _)) => {
                        shed(
                            &accept_shared,
                            stream,
                            503,
                            "shutting-down",
                            "server is shutting down",
                        );
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        });

        Ok(Server {
            shared,
            accept,
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiate a graceful shutdown: stop admitting, drain admitted connections.
    /// Equivalent to `POST /v1/shutdown`.
    pub fn shutdown(&self) {
        request_shutdown(&self.shared);
    }

    /// Wait until the accept thread and every worker have exited (i.e. the drain is
    /// complete).
    pub fn join(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Flag the stop and poke the blocking `accept` with a throwaway connection so it
/// observes the flag now rather than at the next organic arrival.
fn request_shutdown(shared: &Shared) {
    if !shared.stopping.swap(true, Ordering::SeqCst) {
        let _ = TcpStream::connect(shared.addr);
    }
}

/// Refuse a connection that was never admitted.  Runs on its own thread so a slow
/// peer cannot stall the accept loop; drains whatever request bytes the client
/// already sent (so the refusal is not lost to a connection reset), then answers
/// `status` with `Retry-After`.
fn shed(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    status: u16,
    code: &'static str,
    message: &str,
) {
    let body = error_body(code, message);
    let write_timeout = shared.config.write_timeout;
    std::thread::spawn(move || {
        // Accepted during a nonblocking lame-duck accept, the socket may need
        // resetting to blocking before the timed reads below behave.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let _ = stream.set_write_timeout(Some(write_timeout));
        let mut sink = [0u8; 4096];
        for _ in 0..64 {
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        let _ = write_response(
            &mut stream,
            status,
            &[("retry-after", "1".to_string())],
            body.as_bytes(),
        );
    });
}

fn worker_loop(shared: &Arc<Shared>, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let next = lock(rx).recv();
        let Ok(mut stream) = next else { return };
        let outcome = catch_unwind(AssertUnwindSafe(|| serve_connection(shared, &mut stream)));
        if outcome.is_err() {
            // The handler panicked; the connection may not have been answered yet.
            let _ = write_response(
                &mut stream,
                500,
                &[],
                error_body("internal", "request handler panicked").as_bytes(),
            );
        }
    }
}

fn serve_connection(shared: &Shared, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let (status, extra, body) = match read_request(stream, shared.config.max_body_bytes) {
        Ok(request) => handle(shared, &request),
        Err(e) => (e.status, Vec::new(), error_body(e.code, &e.message)),
    };
    let _ = write_response(stream, status, &extra, body.as_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Drain any unread bytes so closing does not reset the connection under the
    // response we just wrote.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

type Reply = (u16, Vec<(&'static str, String)>, String);

fn ok_reply(status: u16, body: Json) -> Reply {
    (status, Vec::new(), body.to_string())
}

fn error_reply(status: u16, code: &str, message: &str) -> Reply {
    (status, Vec::new(), error_body(code, message))
}

fn error_body(code: &str, message: &str) -> String {
    Json::Object(vec![
        ("schema_version".into(), Json::Int(wire::SCHEMA_VERSION)),
        (
            "error".into(),
            Json::Object(vec![
                ("code".into(), Json::str(code)),
                ("message".into(), Json::str(message)),
            ]),
        ),
    ])
    .to_string()
}

fn handle(shared: &Shared, request: &Request) -> Reply {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            ok_reply(200, Json::Object(vec![("status".into(), Json::str("ok"))]))
        }
        ("POST", ["v1", "shutdown"]) => {
            request_shutdown(shared);
            ok_reply(
                200,
                Json::Object(vec![
                    ("schema_version".into(), Json::Int(wire::SCHEMA_VERSION)),
                    ("status".into(), Json::str("draining")),
                ]),
            )
        }
        ("POST", ["v1", "databases"]) => with_body(request, |body| register(shared, body)),
        ("POST", ["v1", "databases", id, "decide"]) => match parse_id(id) {
            Some(id) => with_body(request, |body| decide(shared, id, request, body)),
            None => bad_id(id),
        },
        ("POST", ["v1", "databases", id, "delta"]) => match parse_id(id) {
            Some(id) => with_body(request, |body| delta(shared, id, body)),
            None => bad_id(id),
        },
        ("GET", ["v1", "databases", id, "stats"]) => match parse_id(id) {
            Some(id) => stats(shared, id),
            None => bad_id(id),
        },
        ("POST", ["v1", "subscriptions"]) => with_body(request, |body| subscribe(shared, body)),
        ("GET", ["v1", "subscriptions", sid, "flips"]) => match parse_id(sid) {
            Some(sid) => flips(shared, sid, request),
            None => error_reply(
                400,
                "bad-request",
                &format!("{sid:?} is not a subscription id"),
            ),
        },
        (_, ["healthz"]) | (_, ["v1", "shutdown" | "databases" | "subscriptions", ..]) => (
            405,
            Vec::new(),
            error_body(
                "method-not-allowed",
                &format!("{} is not supported on {}", request.method, request.path),
            ),
        ),
        _ => error_reply(404, "not-found", &format!("no route for {}", request.path)),
    }
}

fn parse_id(text: &str) -> Option<u64> {
    text.parse::<u64>().ok()
}

fn bad_id(text: &str) -> Reply {
    error_reply(
        400,
        "bad-request",
        &format!("{text:?} is not a database id"),
    )
}

/// Parse the body as JSON (the HTTP layer already enforced the byte cap), check the
/// schema version, and hand the tree to `f`.
fn with_body(request: &Request, f: impl FnOnce(&Json) -> Reply) -> Reply {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => return error_reply(400, "bad-request", "body is not valid UTF-8"),
    };
    let body = match Json::parse(text) {
        Ok(b) => b,
        Err(e) => return error_reply(400, "bad-request", &e.to_string()),
    };
    if let Err(e) = wire::check_schema_version(&body) {
        return error_reply(400, "bad-request", &e.0);
    }
    f(&body)
}

fn entry_of(shared: &Shared, id: u64) -> Option<Arc<DbEntry>> {
    lock(&shared.registry).get(&id).cloned()
}

/// The containment right-hand-side resolver: brief registry + db locks, no other lock
/// held while a peer's is taken (see the module-level lock order).
fn db_of(shared: &Shared, id: u64) -> Option<CDatabase> {
    let entry = entry_of(shared, id)?;
    let db = lock(&entry.db).clone();
    Some(db)
}

fn register(shared: &Shared, body: &Json) -> Reply {
    let Some(db_json) = body.get("database") else {
        return error_reply(400, "bad-request", "missing field 'database'");
    };
    let db = match wire::decode_cdatabase(db_json) {
        Ok(db) => db,
        Err(e) => return error_reply(400, "bad-request", &e.0),
    };
    let certify = body.get("certify").and_then(Json::as_bool).unwrap_or(false);
    let mut cfg = EngineConfig::with_threads(
        shared.config.session_threads.max(1),
        Budget(shared.config.budget),
    );
    cfg.certify = certify;
    let session = Session::new(&cfg);
    let tables = db.table_count();
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst) + 1;
    lock(&shared.registry).insert(
        id,
        Arc::new(DbEntry {
            op: Mutex::new(()),
            db: Mutex::new(db),
            session: Mutex::new(session),
            standing: Mutex::new(Vec::new()),
            window: Mutex::new(None),
            routes: Mutex::new(HashMap::new()),
            deltas_received: AtomicU64::new(0),
            deltas_applied: AtomicU64::new(0),
            flips_emitted: AtomicU64::new(0),
        }),
    );
    ok_reply(
        201,
        Json::Object(vec![
            ("schema_version".into(), Json::Int(wire::SCHEMA_VERSION)),
            ("id".into(), Json::Int(id as i64)),
            ("tables".into(), Json::Int(tables as i64)),
        ]),
    )
}

/// The per-request deadline: the `x-deadline-ms` header wins, then a `deadline_ms`
/// body field; absent both, the session's configured (un)limits apply.
fn deadline_of(request: &Request, body: &Json) -> Result<Option<Duration>, String> {
    let text = request
        .header("x-deadline-ms")
        .map(str::to_string)
        .or_else(|| body.get("deadline_ms").map(|j| j.to_string()));
    match text {
        None => Ok(None),
        Some(t) => match t.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => Ok(Some(Duration::from_millis(ms))),
            _ => Err(format!(
                "deadline {t:?} is not a positive integer of milliseconds"
            )),
        },
    }
}

fn decide(shared: &Shared, id: u64, request: &Request, body: &Json) -> Reply {
    let Some(entry) = entry_of(shared, id) else {
        return error_reply(404, "not-found", &format!("no database with id {id}"));
    };
    let deadline = match deadline_of(request, body) {
        Ok(d) => d,
        Err(message) => return error_reply(400, "bad-request", &message),
    };
    let Some(requests_json) = body.get("requests").and_then(Json::as_array) else {
        return error_reply(400, "bad-request", "missing array field 'requests'");
    };
    let standing = body
        .get("standing")
        .and_then(Json::as_bool)
        .unwrap_or(false);

    let _op = lock(&entry.op);
    let db = lock(&entry.db).clone();
    let mut requests = Vec::with_capacity(requests_json.len());
    let resolve = |rid: u64| db_of(shared, rid);
    for (i, rj) in requests_json.iter().enumerate() {
        match wire::decode_request(rj, &db, &resolve) {
            Ok(r) => requests.push(r),
            Err(e) => {
                return error_reply(400, "bad-request", &format!("requests[{i}]: {e}"));
            }
        }
    }
    let outcomes = match deadline {
        Some(d) => lock(&entry.session).decide_all_within(&requests, d),
        None => lock(&entry.session).decide_all(&requests),
    };
    if standing {
        *lock(&entry.standing) = requests_json.to_vec();
    }
    ok_reply(
        200,
        Json::Object(vec![
            ("schema_version".into(), Json::Int(wire::SCHEMA_VERSION)),
            (
                "outcomes".into(),
                Json::Array(outcomes.iter().map(wire::encode_decision).collect()),
            ),
        ]),
    )
}

fn delta(shared: &Shared, id: u64, body: &Json) -> Reply {
    let Some(entry) = entry_of(shared, id) else {
        return error_reply(404, "not-found", &format!("no database with id {id}"));
    };
    let flush = body.get("flush").and_then(Json::as_bool).unwrap_or(false);
    let incoming = match body.get("delta") {
        Some(j) => match wire::decode_delta(j) {
            Ok(d) => Some(d),
            Err(e) => return error_reply(400, "bad-request", &e.0),
        },
        None if flush => None,
        None => return error_reply(400, "bad-request", "missing field 'delta'"),
    };

    let _op = lock(&entry.op);
    if incoming.is_some() {
        entry.deltas_received.fetch_add(1, Ordering::SeqCst);
    }
    // Window gate: with a window configured, deltas buffer until the window emits a
    // compacted batch (on its own cadence, or forced now by `"flush": true`).
    let applied: Delta = {
        let mut slot = lock(&entry.window);
        match (slot.as_mut(), incoming) {
            (None, Some(delta)) => delta,
            (None, None) => {
                return error_reply(400, "bad-request", "'flush' requires a delta window")
            }
            (Some(window), incoming) => {
                let emitted = match incoming {
                    Some(delta) => match window.push(delta) {
                        Ok(emitted) => emitted,
                        Err(e) => return error_reply(400, "bad-delta", &e.to_string()),
                    },
                    None => None,
                };
                let emitted = match emitted {
                    Some(d) => Some(d),
                    None if flush => window.flush(),
                    None => None,
                };
                match emitted {
                    Some(d) => d,
                    None => return ok_reply(200, buffered_reply(window.pending())),
                }
            }
        }
    };

    let prev = lock(&entry.db).clone();
    let standing_json = lock(&entry.standing).clone();
    let mut standing = Vec::with_capacity(standing_json.len());
    let resolve = |rid: u64| db_of(shared, rid);
    for (i, rj) in standing_json.iter().enumerate() {
        match wire::decode_request(rj, &prev, &resolve) {
            Ok(r) => standing.push(r),
            Err(e) => {
                return error_reply(
                    500,
                    "internal",
                    &format!("standing request {i} no longer decodes: {e}"),
                );
            }
        }
    }
    let mut session = lock(&entry.session);
    let redecision = match session.redecide_all(&prev, &applied, &standing) {
        Ok(r) => r,
        Err(e) => {
            drop(session);
            // A window validated this delta before emitting it, so `apply` accepting
            // it is the expected case; on the unexpected rejection, rebase the window
            // over the unchanged database so the two cannot drift apart.
            let mut slot = lock(&entry.window);
            if let Some(window) = slot.as_ref() {
                *slot = Some(DeltaWindow::new(&prev, window.kind()));
            }
            return error_reply(400, "bad-delta", &e.to_string());
        }
    };
    // The subscription path: re-decide only the standing requests this delta can
    // affect.  `redecide_all` just accepted the same delta, so rejection here is
    // unreachable; `.ok()` keeps the legacy reply intact regardless.
    let update = if session.standing_db().is_some() {
        session.push_delta(&applied).ok()
    } else {
        None
    };
    drop(session);
    *lock(&entry.db) = redecision.db;
    entry.deltas_applied.fetch_add(1, Ordering::SeqCst);

    let (flips, redecided, skipped) = match &update {
        Some(u) => (u.flips.as_slice(), u.redecided, u.skipped),
        None => (&[] as &[VerdictFlip], 0, 0),
    };
    let seq_base = entry
        .flips_emitted
        .fetch_add(flips.len() as u64, Ordering::SeqCst);
    if !flips.is_empty() {
        let routes = lock(&entry.routes);
        for flip in flips {
            if let Some(sub) = routes.get(&flip.request_id) {
                sub.push_flip(flip);
            }
        }
    }
    ok_reply(
        200,
        Json::Object(vec![
            ("schema_version".into(), Json::Int(wire::SCHEMA_VERSION)),
            ("noop".into(), Json::Bool(redecision.change.is_noop())),
            ("buffered".into(), Json::Bool(false)),
            (
                "outcomes".into(),
                Json::Array(
                    redecision
                        .outcomes
                        .iter()
                        .map(wire::encode_decision)
                        .collect(),
                ),
            ),
            (
                "flips".into(),
                Json::Array(
                    flips
                        .iter()
                        .enumerate()
                        .map(|(i, f)| wire::encode_flip(seq_base + i as u64 + 1, f))
                        .collect(),
                ),
            ),
            ("redecided".into(), Json::Int(redecided as i64)),
            ("skipped".into(), Json::Int(skipped as i64)),
        ]),
    )
}

/// The `POST …/delta` reply while a window is buffering: nothing applied yet.
fn buffered_reply(pending: usize) -> Json {
    Json::Object(vec![
        ("schema_version".into(), Json::Int(wire::SCHEMA_VERSION)),
        ("noop".into(), Json::Bool(true)),
        ("buffered".into(), Json::Bool(true)),
        ("pending".into(), Json::Int(pending as i64)),
        ("outcomes".into(), Json::Array(Vec::new())),
        ("flips".into(), Json::Array(Vec::new())),
        ("redecided".into(), Json::Int(0)),
        ("skipped".into(), Json::Int(0)),
    ])
}

/// `POST /v1/subscriptions` — register standing queries over a database and open a
/// flip subscription, optionally configuring a delta window on the database's
/// mutation stream.
fn subscribe(shared: &Shared, body: &Json) -> Reply {
    let Some(db_id) = body.get("database").and_then(Json::as_u64) else {
        return error_reply(400, "bad-request", "missing integer field 'database'");
    };
    let Some(entry) = entry_of(shared, db_id) else {
        return error_reply(404, "not-found", &format!("no database with id {db_id}"));
    };
    let Some(requests_json) = body.get("requests").and_then(Json::as_array) else {
        return error_reply(400, "bad-request", "missing array field 'requests'");
    };
    if requests_json.is_empty() {
        return error_reply(400, "bad-request", "'requests' must not be empty");
    }
    let window = match body.get("window") {
        None => None,
        Some(wj) => match wire::decode_window(wj) {
            Ok(kind) => Some(kind),
            Err(e) => return error_reply(400, "bad-request", &e.0),
        },
    };

    let _op = lock(&entry.op);
    let db = lock(&entry.db).clone();
    let resolve = |rid: u64| db_of(shared, rid);
    let mut requests = Vec::with_capacity(requests_json.len());
    for (i, rj) in requests_json.iter().enumerate() {
        match wire::decode_request(rj, &db, &resolve) {
            Ok(r) => requests.push(r),
            Err(e) => {
                return error_reply(400, "bad-request", &format!("requests[{i}]: {e}"));
            }
        }
    }
    if let Some(kind) = window {
        // Replacing a window is only safe while it holds nothing: buffered deltas are
        // phrased against the virtual row counts and would be lost wholesale.
        let mut slot = lock(&entry.window);
        match slot.as_ref() {
            Some(active) if active.pending() > 0 => {
                return error_reply(
                    409,
                    "window-busy",
                    &format!(
                        "the active delta window holds {} buffered deltas; flush before reconfiguring",
                        active.pending()
                    ),
                );
            }
            _ => *slot = Some(DeltaWindow::new(&db, kind)),
        }
    }
    let (ids, baselines) = lock(&entry.session).register_standing(&db, &requests);
    let sub_id = shared.next_sub_id.fetch_add(1, Ordering::SeqCst) + 1;
    let sub = Arc::new(Subscription {
        db_id,
        request_ids: ids.clone(),
        queue: Mutex::new(FlipQueue {
            events: VecDeque::new(),
            next_seq: 1,
            dropped: 0,
        }),
        ready: Condvar::new(),
    });
    lock(&shared.subscriptions).insert(sub_id, Arc::clone(&sub));
    {
        let mut routes = lock(&entry.routes);
        for &rid in &ids {
            routes.insert(rid, Arc::clone(&sub));
        }
    }
    ok_reply(
        201,
        Json::Object(vec![
            ("schema_version".into(), Json::Int(wire::SCHEMA_VERSION)),
            ("id".into(), Json::Int(sub_id as i64)),
            ("database".into(), Json::Int(db_id as i64)),
            (
                "request_ids".into(),
                Json::Array(ids.iter().map(|&rid| Json::Int(rid as i64)).collect()),
            ),
            (
                "baseline".into(),
                Json::Array(baselines.iter().map(wire::encode_decision).collect()),
            ),
            (
                "window".into(),
                match window {
                    Some(kind) => wire::encode_window(kind),
                    None => Json::Null,
                },
            ),
        ]),
    )
}

/// `GET /v1/subscriptions/{id}/flips` — long-poll the subscription's flip queue.
/// Query parameters: `timeout_ms` (0–10000, default 0 = answer immediately) and
/// `max` (1–256 events per response, default 64).
fn flips(shared: &Shared, sid: u64, request: &Request) -> Reply {
    let Some(sub) = lock(&shared.subscriptions).get(&sid).cloned() else {
        return error_reply(404, "not-found", &format!("no subscription with id {sid}"));
    };
    let mut timeout_ms: u64 = 0;
    let mut max: usize = 64;
    for pair in request.query.split('&').filter(|s| !s.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "timeout_ms" => match value.parse::<u64>() {
                Ok(ms) => timeout_ms = ms.min(10_000),
                Err(_) => {
                    return error_reply(
                        400,
                        "bad-request",
                        &format!("timeout_ms {value:?} is not an integer"),
                    )
                }
            },
            "max" => match value.parse::<usize>() {
                Ok(m) if m >= 1 => max = m.min(256),
                _ => {
                    return error_reply(
                        400,
                        "bad-request",
                        &format!("max {value:?} is not a positive integer"),
                    )
                }
            },
            _ => {
                return error_reply(
                    400,
                    "bad-request",
                    &format!("unknown query parameter {key:?}"),
                )
            }
        }
    }
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    let mut queue = lock(&sub.queue);
    // Wait in short slices so shutdown is observed promptly even mid-poll.
    while queue.events.is_empty() && !shared.stopping.load(Ordering::SeqCst) {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let slice = (deadline - now).min(Duration::from_millis(250));
        queue = sub
            .ready
            .wait_timeout(queue, slice)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
    }
    let take = queue.events.len().min(max);
    let events: Vec<Json> = queue.events.drain(..take).collect();
    let dropped = queue.dropped;
    queue.dropped = 0;
    let pending = queue.events.len();
    drop(queue);
    ok_reply(
        200,
        Json::Object(vec![
            ("schema_version".into(), Json::Int(wire::SCHEMA_VERSION)),
            ("id".into(), Json::Int(sid as i64)),
            (
                "request_ids".into(),
                Json::Array(
                    sub.request_ids
                        .iter()
                        .map(|&rid| Json::Int(rid as i64))
                        .collect(),
                ),
            ),
            ("events".into(), Json::Array(events)),
            ("dropped".into(), Json::Int(dropped as i64)),
            ("pending".into(), Json::Int(pending as i64)),
        ]),
    )
}

fn stats(shared: &Shared, id: u64) -> Reply {
    let Some(entry) = entry_of(shared, id) else {
        return error_reply(404, "not-found", &format!("no database with id {id}"));
    };
    let (engine_stats, memo_stats) = {
        let session = lock(&entry.session);
        (session.engine().stats(), session.engine().memo_stats())
    };
    let standing = lock(&entry.standing).len();
    let subscribed = lock(&entry.session).standing_len();
    let subscriptions = lock(&shared.subscriptions)
        .values()
        .filter(|s| s.db_id == id)
        .count();
    let (window_pending, window_spec) = {
        let slot = lock(&entry.window);
        match slot.as_ref() {
            Some(w) => (w.pending() as i64, wire::encode_window(w.kind())),
            None => (0, Json::Null),
        }
    };
    ok_reply(
        200,
        Json::Object(vec![
            ("schema_version".into(), Json::Int(wire::SCHEMA_VERSION)),
            ("engine".into(), wire::encode_engine_stats(&engine_stats)),
            ("memo".into(), wire::encode_memo_stats(&memo_stats)),
            ("standing_requests".into(), Json::Int(standing as i64)),
            ("subscribed_requests".into(), Json::Int(subscribed as i64)),
            ("subscriptions".into(), Json::Int(subscriptions as i64)),
            (
                "deltas_received".into(),
                Json::Int(entry.deltas_received.load(Ordering::SeqCst) as i64),
            ),
            (
                "deltas_applied".into(),
                Json::Int(entry.deltas_applied.load(Ordering::SeqCst) as i64),
            ),
            (
                "flips_emitted".into(),
                Json::Int(entry.flips_emitted.load(Ordering::SeqCst) as i64),
            ),
            ("window_pending".into(), Json::Int(window_pending)),
            ("window".into(), window_spec),
        ]),
    )
}

/// A tiny blocking HTTP client for the smoke binary and the loopback tests: one
/// request, one response, connection closed.  Not a general client — it reads the
/// whole response into memory and follows nothing.
pub mod client {
    use super::*;

    /// A parsed response.
    #[derive(Clone, Debug)]
    pub struct Response {
        /// HTTP status code.
        pub status: u16,
        /// Lowercased header `(name, value)` pairs.
        pub headers: Vec<(String, String)>,
        /// The body as text.
        pub body: String,
    }

    impl Response {
        /// The first header named `name` (lowercase), if present.
        pub fn header(&self, name: &str) -> Option<&str> {
            self.headers
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.as_str())
        }

        /// Parse the body as JSON.
        pub fn json(&self) -> Result<Json, crate::json::JsonError> {
            Json::parse(&self.body)
        }
    }

    /// Send one request and read the response to EOF.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> io::Result<Response> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n",
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_response(&raw)
    }

    /// POST a JSON body.
    pub fn post_json(addr: SocketAddr, path: &str, body: &Json) -> io::Result<Response> {
        request(addr, "POST", path, &[], &body.to_string())
    }

    /// GET a path.
    pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
        request(addr, "GET", path, &[], "")
    }

    fn parse_response(raw: &[u8]) -> io::Result<Response> {
        let text = String::from_utf8_lossy(raw);
        let (head, body) = text
            .split_once("\r\n\r\n")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no status code"))?;
        let headers = lines
            .filter_map(|line| {
                line.split_once(':')
                    .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
            })
            .collect();
        Ok(Response {
            status,
            headers,
            body: body.to_string(),
        })
    }
}
