//! `pw-serve`: run the decision service from the command line.
//!
//! ```text
//! pw-serve [--addr 127.0.0.1:7171] [--workers 4] [--queue-depth 64]
//!          [--budget 1000000] [--session-threads 2] [--max-body-bytes 1048576]
//!          [--read-timeout-ms 10000] [--write-timeout-ms 10000]
//! ```
//!
//! The process runs until `POST /v1/shutdown`, then drains in-flight connections and
//! exits 0.  See `docs/BOOK.md` §16 for the wire protocol and README for a curl
//! walkthrough.

use pw_serve::{Server, ServerConfig};
use std::time::Duration;

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7171".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            print!("{}", USAGE);
            return;
        }
        let Some(value) = args.next() else {
            eprintln!("missing value for {flag}\n{USAGE}");
            std::process::exit(2);
        };
        let parsed: Result<(), String> = match flag.as_str() {
            "--addr" => {
                config.addr = value.clone();
                Ok(())
            }
            "--workers" => parse(&value).map(|v| config.workers = v),
            "--queue-depth" => parse(&value).map(|v| config.queue_depth = v),
            "--budget" => parse(&value).map(|v| config.budget = v),
            "--session-threads" => parse(&value).map(|v| config.session_threads = v),
            "--max-body-bytes" => parse(&value).map(|v| config.max_body_bytes = v),
            "--read-timeout-ms" => {
                parse(&value).map(|v| config.read_timeout = Duration::from_millis(v))
            }
            "--write-timeout-ms" => {
                parse(&value).map(|v| config.write_timeout = Duration::from_millis(v))
            }
            "--lame-duck-ms" => parse(&value).map(|v| config.lame_duck = Duration::from_millis(v)),
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(message) = parsed {
            eprintln!("{flag} {value}: {message}\n{USAGE}");
            std::process::exit(2);
        }
    }

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("pw-serve listening on http://{}", server.local_addr());
    server.join();
    println!("pw-serve drained and stopped");
}

fn parse<T: std::str::FromStr>(value: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| "expected a number".to_string())
}

const USAGE: &str = "\
pw-serve: HTTP service for the possible-worlds decision engine

  --addr ADDR             listen address (default 127.0.0.1:7171; port 0 = pick free)
  --workers N             worker threads (default 4)
  --queue-depth N         admission queue depth before shedding 429 (default 64)
  --budget N              per-request search budget (default 1000000)
  --session-threads N     engine threads per database session (default 2)
  --max-body-bytes N      request body cap (default 1 MiB)
  --read-timeout-ms N     socket read timeout (default 10000)
  --write-timeout-ms N    socket write timeout (default 10000)
  --lame-duck-ms N        503-shedding window during shutdown (default 500)

Stop with: curl -X POST http://ADDR/v1/shutdown -d '{\"schema_version\":1}'
";
