//! Wire DTOs: the versioned JSON encoding of the library types the service speaks.
//!
//! The `/v1` schema (documented with worked examples in `docs/BOOK.md` §16) is a thin,
//! explicit mapping — no reflection, no derived serializers:
//!
//! * **constants** are the JSON scalars they already are: `1`, `"alice"`, `true`;
//! * **terms** are a constant scalar or `{"var": n}` — the two shapes are disjoint, so
//!   the encoding is bijective;
//! * **atoms** are `{"op": "eq"|"neq", "left": t, "right": t}` and **conditions** are
//!   arrays of atoms (the empty array is *true*);
//! * **c-tables** are `{"name", "arity", "global_condition", "rows"}` with rows
//!   `{"terms": [...], "condition": [...]}` (condition omitted ⇒ true), and a
//!   **c-database** is `{"tables": [...]}`;
//! * **decision requests** name their problem and phrase views as the *identity* of a
//!   registered database (richer query programs are a reserved extension, see BOOK.md);
//! * **decisions** come back as `{"answer", "strategy", "certificate"}` on success and
//!   `{"error": {"code", "message"}, "strategy"}` on a typed [`DecisionError`].
//!
//! Decoders exist only for what clients send (databases, instances, deltas, requests);
//! answers, certificates and statistics are encode-only.  Every decoder returns a
//! [`WireError`] — mapped to HTTP 400 by the server — and never panics on hostile
//! trees.

use crate::json::Json;
use pw_condition::{Atom, Conjunction, Term, Variable};
use pw_core::{
    CDatabase, CTable, CTuple, Certificate, Delta, DeltaOp, PairCert, Valuation, View, WindowKind,
};
use pw_decide::{
    Decision, DecisionError, DecisionRequest, EngineStats, MemoStats, Strategy, VerdictFlip,
};
use pw_relational::{Constant, Instance, Relation, Tuple};
use std::fmt;

/// The wire schema version this build speaks.  Every request and response body carries
/// it as `schema_version`; a request with a different version is rejected up front so
/// clients fail loudly instead of mis-parsing.
pub const SCHEMA_VERSION: i64 = 1;

/// A malformed wire value: the path-flavoured message becomes the `message` of the
/// HTTP 400 error body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl WireError {
    fn new(message: impl Into<String>) -> WireError {
        WireError(message.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Check the `schema_version` member of a request body (missing ⇒ error, mismatched ⇒
/// error naming both versions).
pub fn check_schema_version(body: &Json) -> Result<(), WireError> {
    match body.get("schema_version").and_then(Json::as_i64) {
        Some(SCHEMA_VERSION) => Ok(()),
        Some(v) => Err(WireError::new(format!(
            "unsupported schema_version {v} (this server speaks {SCHEMA_VERSION})"
        ))),
        None => Err(WireError::new(
            "missing integer field 'schema_version' (expected 1)",
        )),
    }
}

// ---------------------------------------------------------------------------
// Constants, terms, atoms, conditions
// ---------------------------------------------------------------------------

/// A constant as the JSON scalar it is.
pub fn encode_constant(c: &Constant) -> Json {
    match c {
        Constant::Int(i) => Json::Int(*i),
        Constant::Str(s) => Json::str(s.as_ref()),
        Constant::Bool(b) => Json::Bool(*b),
    }
}

/// Decode a JSON scalar into a constant.
pub fn decode_constant(j: &Json) -> Result<Constant, WireError> {
    match j {
        Json::Int(i) => Ok(Constant::Int(*i)),
        Json::Str(s) => Ok(Constant::str(s.as_str())),
        Json::Bool(b) => Ok(Constant::Bool(*b)),
        other => Err(WireError::new(format!(
            "expected a constant (integer, string or boolean), got {other}"
        ))),
    }
}

/// A term: `{"var": n}` for a variable, the constant scalar otherwise.
pub fn encode_term(t: Term) -> Json {
    match t {
        Term::Var(v) => Json::Object(vec![("var".into(), Json::Int(i64::from(v.0)))]),
        Term::Const(_) => encode_constant(&t.as_const().expect("interned constant resolves")),
    }
}

/// Decode a term (the inverse of [`encode_term`]); constants are interned globally.
pub fn decode_term(j: &Json) -> Result<Term, WireError> {
    if let Some(var) = j.get("var") {
        let n = var
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| WireError::new("'var' must be an integer in 0..2^32"))?;
        return Ok(Term::Var(Variable(n)));
    }
    decode_constant(j).map(Term::constant)
}

/// An atom: `{"op": "eq"|"neq", "left": term, "right": term}`.
pub fn encode_atom(a: Atom) -> Json {
    let op = if a.is_equality() { "eq" } else { "neq" };
    let (left, right) = a.terms();
    Json::Object(vec![
        ("op".into(), Json::str(op)),
        ("left".into(), encode_term(left)),
        ("right".into(), encode_term(right)),
    ])
}

/// Decode an atom (the inverse of [`encode_atom`]).
pub fn decode_atom(j: &Json) -> Result<Atom, WireError> {
    let op = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new("atom needs a string field 'op' (\"eq\" or \"neq\")"))?;
    let left = decode_term(
        j.get("left")
            .ok_or_else(|| WireError::new("atom needs a field 'left'"))?,
    )?;
    let right = decode_term(
        j.get("right")
            .ok_or_else(|| WireError::new("atom needs a field 'right'"))?,
    )?;
    match op {
        "eq" => Ok(Atom::eq(left, right)),
        "neq" => Ok(Atom::neq(left, right)),
        other => Err(WireError::new(format!(
            "unknown atom op {other:?} (expected \"eq\" or \"neq\")"
        ))),
    }
}

/// A condition as an array of atoms; the empty array is *true*.
pub fn encode_conjunction(c: &Conjunction) -> Json {
    Json::Array(c.atoms().iter().map(|&a| encode_atom(a)).collect())
}

/// Decode a condition (the inverse of [`encode_conjunction`]).
pub fn decode_conjunction(j: &Json) -> Result<Conjunction, WireError> {
    let items = j
        .as_array()
        .ok_or_else(|| WireError::new("a condition must be an array of atoms"))?;
    let atoms: Result<Vec<Atom>, WireError> = items.iter().map(decode_atom).collect();
    Ok(Conjunction::new(atoms?))
}

// ---------------------------------------------------------------------------
// Rows, tables, databases, instances, deltas
// ---------------------------------------------------------------------------

/// A row: `{"terms": [...], "condition": [...]}`; an always-true condition is omitted.
pub fn encode_row(row: &CTuple) -> Json {
    let mut members = vec![(
        "terms".into(),
        Json::Array(row.terms.iter().map(|&t| encode_term(t)).collect()),
    )];
    if !row.condition.is_empty() {
        members.push(("condition".into(), encode_conjunction(&row.condition)));
    }
    Json::Object(members)
}

/// Decode a row (the inverse of [`encode_row`]); a missing condition means *true*.
pub fn decode_row(j: &Json) -> Result<CTuple, WireError> {
    let terms = j
        .get("terms")
        .and_then(Json::as_array)
        .ok_or_else(|| WireError::new("a row needs an array field 'terms'"))?;
    let terms: Result<Vec<Term>, WireError> = terms.iter().map(decode_term).collect();
    let condition = match j.get("condition") {
        Some(c) => decode_conjunction(c)?,
        None => Conjunction::truth(),
    };
    Ok(CTuple::with_condition(terms?, condition))
}

/// A c-table: `{"name", "arity", "global_condition", "rows"}`.
pub fn encode_table(t: &CTable) -> Json {
    Json::Object(vec![
        ("name".into(), Json::str(t.name())),
        ("arity".into(), Json::Int(t.arity() as i64)),
        (
            "global_condition".into(),
            encode_conjunction(t.global_condition()),
        ),
        (
            "rows".into(),
            Json::Array(t.tuples().iter().map(encode_row).collect()),
        ),
    ])
}

/// Decode a c-table; arity mismatches surface as [`WireError`]s.
pub fn decode_table(j: &Json) -> Result<CTable, WireError> {
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new("a table needs a string field 'name'"))?;
    let arity = j
        .get("arity")
        .and_then(Json::as_u64)
        .ok_or_else(|| WireError::new("a table needs a non-negative integer field 'arity'"))?;
    let global = match j.get("global_condition") {
        Some(c) => decode_conjunction(c)?,
        None => Conjunction::truth(),
    };
    let rows = match j.get("rows") {
        Some(r) => r
            .as_array()
            .ok_or_else(|| WireError::new("'rows' must be an array"))?,
        None => &[],
    };
    let rows: Result<Vec<CTuple>, WireError> = rows.iter().map(decode_row).collect();
    CTable::new(name, arity as usize, global, rows?)
        .map_err(|e| WireError::new(format!("invalid table {name:?}: {e}")))
}

/// A c-database: `{"tables": [...]}`.
pub fn encode_cdatabase(db: &CDatabase) -> Json {
    Json::Object(vec![(
        "tables".into(),
        Json::Array(db.tables().iter().map(encode_table).collect()),
    )])
}

/// Decode a c-database (the inverse of [`encode_cdatabase`]).
pub fn decode_cdatabase(j: &Json) -> Result<CDatabase, WireError> {
    let tables = j
        .get("tables")
        .and_then(Json::as_array)
        .ok_or_else(|| WireError::new("a database needs an array field 'tables'"))?;
    let tables: Result<Vec<CTable>, WireError> = tables.iter().map(decode_table).collect();
    Ok(CDatabase::new(tables?))
}

/// A complete instance: `{"R": {"arity": 2, "rows": [[1,"a"], ...]}, ...}` — an object
/// mapping relation names to constant rows (explicit arity so empty relations survive).
pub fn encode_instance(instance: &Instance) -> Json {
    let members = instance
        .iter()
        .map(|(name, rel)| {
            let rows = rel
                .iter()
                .map(|t| Json::Array(t.iter().map(encode_constant).collect()))
                .collect();
            (
                name.clone(),
                Json::Object(vec![
                    ("arity".into(), Json::Int(rel.arity() as i64)),
                    ("rows".into(), Json::Array(rows)),
                ]),
            )
        })
        .collect();
    Json::Object(members)
}

/// Decode an instance (the inverse of [`encode_instance`]).
pub fn decode_instance(j: &Json) -> Result<Instance, WireError> {
    let members = j
        .as_object()
        .ok_or_else(|| WireError::new("an instance must be an object of relations"))?;
    let mut instance = Instance::new();
    for (name, rel) in members {
        let arity = rel.get("arity").and_then(Json::as_u64).ok_or_else(|| {
            WireError::new(format!(
                "relation {name:?} needs a non-negative integer field 'arity'"
            ))
        })?;
        let mut relation = Relation::empty(arity as usize);
        let rows = rel.get("rows").and_then(Json::as_array).ok_or_else(|| {
            WireError::new(format!("relation {name:?} needs an array field 'rows'"))
        })?;
        for row in rows {
            let cells = row
                .as_array()
                .ok_or_else(|| WireError::new(format!("rows of {name:?} must be arrays")))?;
            let cells: Result<Vec<Constant>, WireError> =
                cells.iter().map(decode_constant).collect();
            relation
                .insert(Tuple::new(cells?))
                .map_err(|e| WireError::new(format!("bad row in {name:?}: {e}")))?;
        }
        instance.insert_relation(name.clone(), relation);
    }
    Ok(instance)
}

/// A delta: `{"ops": [{"op": "insert"|"retract"|"conjoin", ...}, ...]}`.
pub fn encode_delta(delta: &Delta) -> Json {
    let ops = delta
        .ops()
        .iter()
        .map(|op| match op {
            DeltaOp::Insert { table, row } => Json::Object(vec![
                ("op".into(), Json::str("insert")),
                ("table".into(), Json::str(table.as_str())),
                ("row".into(), encode_row(row)),
            ]),
            DeltaOp::Retract { table, row } => Json::Object(vec![
                ("op".into(), Json::str("retract")),
                ("table".into(), Json::str(table.as_str())),
                ("row".into(), Json::Int(*row as i64)),
            ]),
            DeltaOp::Conjoin {
                table,
                row,
                condition,
            } => Json::Object(vec![
                ("op".into(), Json::str("conjoin")),
                ("table".into(), Json::str(table.as_str())),
                ("row".into(), Json::Int(*row as i64)),
                ("condition".into(), encode_conjunction(condition)),
            ]),
        })
        .collect();
    Json::Object(vec![("ops".into(), Json::Array(ops))])
}

/// Decode a delta (the inverse of [`encode_delta`]).
pub fn decode_delta(j: &Json) -> Result<Delta, WireError> {
    let ops = j
        .get("ops")
        .and_then(Json::as_array)
        .ok_or_else(|| WireError::new("a delta needs an array field 'ops'"))?;
    let mut delta = Delta::new();
    for op in ops {
        let kind = op
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::new("a delta op needs a string field 'op'"))?;
        let table = op
            .get("table")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::new("a delta op needs a string field 'table'"))?
            .to_string();
        match kind {
            "insert" => {
                let row = decode_row(
                    op.get("row")
                        .ok_or_else(|| WireError::new("'insert' needs a row object in 'row'"))?,
                )?;
                delta.push(DeltaOp::Insert { table, row });
            }
            "retract" => {
                let row = op.get("row").and_then(Json::as_u64).ok_or_else(|| {
                    WireError::new("'retract' needs an integer row index in 'row'")
                })?;
                delta.push(DeltaOp::Retract {
                    table,
                    row: row as usize,
                });
            }
            "conjoin" => {
                let row = op.get("row").and_then(Json::as_u64).ok_or_else(|| {
                    WireError::new("'conjoin' needs an integer row index in 'row'")
                })?;
                let condition = decode_conjunction(
                    op.get("condition")
                        .ok_or_else(|| WireError::new("'conjoin' needs a field 'condition'"))?,
                )?;
                delta.push(DeltaOp::Conjoin {
                    table,
                    row: row as usize,
                    condition,
                });
            }
            other => {
                return Err(WireError::new(format!(
                    "unknown delta op {other:?} (expected \"insert\", \"retract\" or \"conjoin\")"
                )))
            }
        }
    }
    Ok(delta)
}

// ---------------------------------------------------------------------------
// Delta windows and verdict flips (the subscription endpoints)
// ---------------------------------------------------------------------------

/// Decode a window spec: `{"kind": "tumbling", "size": N}` or
/// `{"kind": "sliding", "size": N, "slide": M}` (`slide` defaults to 1; must satisfy
/// `1 ≤ slide ≤ size`).
pub fn decode_window(j: &Json) -> Result<WindowKind, WireError> {
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new("a window needs a string field 'kind'"))?;
    let size = j
        .get("size")
        .and_then(Json::as_u64)
        .filter(|&s| s >= 1)
        .ok_or_else(|| WireError::new("a window needs an integer field 'size' ≥ 1"))?
        as usize;
    match kind {
        "tumbling" => Ok(WindowKind::Tumbling { size }),
        "sliding" => {
            let slide = j.get("slide").and_then(Json::as_u64).unwrap_or(1) as usize;
            if slide < 1 || slide > size {
                return Err(WireError::new(format!(
                    "window slide {slide} must satisfy 1 ≤ slide ≤ size ({size})"
                )));
            }
            Ok(WindowKind::Sliding { size, slide })
        }
        other => Err(WireError::new(format!(
            "unknown window kind {other:?} (expected \"tumbling\" or \"sliding\")"
        ))),
    }
}

/// Encode a window spec (the `/stats` mirror of [`decode_window`]).
pub fn encode_window(kind: WindowKind) -> Json {
    match kind {
        WindowKind::Tumbling { size } => Json::Object(vec![
            ("kind".into(), Json::str("tumbling")),
            ("size".into(), Json::Int(size as i64)),
        ]),
        WindowKind::Sliding { size, slide } => Json::Object(vec![
            ("kind".into(), Json::str("sliding")),
            ("size".into(), Json::Int(size as i64)),
            ("slide".into(), Json::Int(slide as i64)),
        ]),
    }
}

/// Encode one verdict-flip event as delivered by `GET /v1/subscriptions/{id}/flips`:
/// the per-subscription sequence number, the flipped request's id, and the decisions
/// on both sides of the flip ([`encode_decision`] shapes, certificates included when
/// the session certifies).
pub fn encode_flip(seq: u64, flip: &VerdictFlip) -> Json {
    Json::Object(vec![
        ("seq".into(), Json::Int(seq as i64)),
        ("request_id".into(), Json::Int(flip.request_id as i64)),
        ("old".into(), encode_decision(&flip.old)),
        ("new".into(), encode_decision(&flip.new)),
    ])
}

// ---------------------------------------------------------------------------
// Decision requests
// ---------------------------------------------------------------------------

/// Decode one decision request phrased against `db` (the registered database the URL
/// names).  Containment's right-hand side is another registered database, resolved
/// through `lookup` by its integer id.
pub fn decode_request(
    j: &Json,
    db: &CDatabase,
    lookup: &dyn Fn(u64) -> Option<CDatabase>,
) -> Result<DecisionRequest, WireError> {
    let problem = j
        .get("problem")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new("a request needs a string field 'problem'"))?;
    let view = || View::identity(db.clone());
    let instance = |field: &str| -> Result<Instance, WireError> {
        decode_instance(j.get(field).ok_or_else(|| {
            WireError::new(format!(
                "problem {problem:?} needs an instance in '{field}'"
            ))
        })?)
    };
    match problem {
        "membership" => Ok(DecisionRequest::Membership {
            view: view(),
            instance: instance("instance")?,
        }),
        "uniqueness" => Ok(DecisionRequest::Uniqueness {
            view: view(),
            instance: instance("instance")?,
        }),
        "possibility" => Ok(DecisionRequest::Possibility {
            view: view(),
            facts: instance("facts")?,
        }),
        "certainty" => Ok(DecisionRequest::Certainty {
            view: view(),
            facts: instance("facts")?,
        }),
        "containment" => {
            let right_id = j.get("right").and_then(Json::as_u64).ok_or_else(|| {
                WireError::new("'containment' needs a registered database id in 'right'")
            })?;
            let right = lookup(right_id).ok_or_else(|| {
                WireError::new(format!("no registered database with id {right_id}"))
            })?;
            Ok(DecisionRequest::Containment {
                left: view(),
                right: View::identity(right),
            })
        }
        other => Err(WireError::new(format!(
            "unknown problem {other:?} (expected \"membership\", \"uniqueness\", \
             \"containment\", \"possibility\" or \"certainty\")"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Decisions, certificates, statistics (encode-only)
// ---------------------------------------------------------------------------

/// The stable wire code of a [`DecisionError`] (the `code` of a per-request error).
pub fn error_code(e: &DecisionError) -> &'static str {
    match e {
        DecisionError::BudgetExceeded => "budget-exceeded",
        DecisionError::DeadlineExceeded => "deadline-exceeded",
        DecisionError::Cancelled => "cancelled",
        DecisionError::WorkerPanicked(_) => "worker-panicked",
    }
}

/// A decision: `{"answer", "strategy", "certificate"}` on success,
/// `{"error": {"code", "message"}, "strategy"}` on a typed error.
pub fn encode_decision(d: &Decision) -> Json {
    let mut members = Vec::new();
    match &d.answer {
        Ok(answer) => members.push(("answer".into(), Json::Bool(*answer))),
        Err(e) => members.push((
            "error".into(),
            Json::Object(vec![
                ("code".into(), Json::str(error_code(e))),
                ("message".into(), Json::str(e.to_string())),
            ]),
        )),
    }
    members.push(("strategy".into(), encode_strategy(d.strategy)));
    members.push((
        "certificate".into(),
        match &d.certificate {
            Some(c) => encode_certificate(c),
            None => Json::Null,
        },
    ));
    Json::Object(members)
}

/// A strategy as its display name; the per-shard fan-out carries its group count:
/// `{"per-shard": {"groups": n}}`.
pub fn encode_strategy(s: Strategy) -> Json {
    match s {
        Strategy::PerShard { groups } => Json::Object(vec![(
            "per-shard".into(),
            Json::Object(vec![("groups".into(), Json::Int(groups as i64))]),
        )]),
        other => Json::str(other.to_string()),
    }
}

fn encode_valuation(v: &Valuation) -> Json {
    let pairs = v
        .iter()
        .map(|(var, _)| {
            Json::Object(vec![
                ("var".into(), Json::Int(i64::from(var.0))),
                (
                    "value".into(),
                    match v.get(var) {
                        Some(c) => encode_constant(&c),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    Json::Array(pairs)
}

/// A certificate, tagged by [`Certificate::kind`] and encoded recursively.
pub fn encode_certificate(c: &Certificate) -> Json {
    let mut members = vec![("kind".into(), Json::str(c.kind()))];
    match c {
        Certificate::Witness { valuation } | Certificate::CounterWorld { valuation } => {
            members.push(("valuation".into(), encode_valuation(valuation)));
        }
        Certificate::EmptyRep | Certificate::CertainByFreeze | Certificate::Exhaustive => {}
        Certificate::FrozenMembership { witness } => {
            members.push(("witness".into(), encode_certificate(witness)));
        }
        Certificate::Decomposition { pairs } => {
            let pairs = pairs
                .iter()
                .map(
                    |PairCert {
                         relations,
                         certificate,
                     }| {
                        Json::Object(vec![
                            (
                                "relations".into(),
                                Json::Array(relations.iter().map(Json::str).collect()),
                            ),
                            ("certificate".into(), encode_certificate(certificate)),
                        ])
                    },
                )
                .collect();
            members.push(("pairs".into(), Json::Array(pairs)));
        }
    }
    Json::Object(members)
}

/// Engine counters for the stats endpoint.
pub fn encode_engine_stats(s: &EngineStats) -> Json {
    Json::Object(vec![
        (
            "steals_attempted".into(),
            Json::Int(s.steals_attempted as i64),
        ),
        (
            "steals_succeeded".into(),
            Json::Int(s.steals_succeeded as i64),
        ),
        ("resplits".into(), Json::Int(s.resplits as i64)),
        ("idle_polls".into(), Json::Int(s.idle_polls as i64)),
        ("peak_queue".into(), Json::Int(s.peak_queue as i64)),
        ("busy_total_ns".into(), Json::Int(s.busy_total_ns as i64)),
        ("busy_max_ns".into(), Json::Int(s.busy_max_ns as i64)),
    ])
}

/// Decision-memo counters for the stats endpoint.
pub fn encode_memo_stats(s: &MemoStats) -> Json {
    Json::Object(vec![
        ("hits".into(), Json::Int(s.hits as i64)),
        ("misses".into(), Json::Int(s.misses as i64)),
        ("entries".into(), Json::Int(s.entries as i64)),
        ("evictions".into(), Json::Int(s.evictions as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::VarGen;

    fn demo_db() -> CDatabase {
        let mut g = VarGen::new();
        let x = g.fresh();
        let y = g.fresh();
        CDatabase::new([
            CTable::new(
                "R",
                2,
                Conjunction::new([Atom::neq(x, y)]),
                [
                    CTuple::of_terms([Term::constant(1), Term::Var(x)]),
                    CTuple::with_condition(
                        [Term::Var(y), Term::constant("name")],
                        Conjunction::new([Atom::eq(y, 7)]),
                    ),
                ],
            )
            .unwrap(),
            CTable::new(
                "S",
                1,
                Conjunction::truth(),
                [CTuple::of_terms([Term::constant(true)])],
            )
            .unwrap(),
        ])
    }

    #[test]
    fn database_round_trips_bit_identically() {
        let db = demo_db();
        let encoded = encode_cdatabase(&db);
        let text = encoded.to_string();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed, encoded);
        let decoded = decode_cdatabase(&reparsed).unwrap();
        assert_eq!(encode_cdatabase(&decoded), encoded);
    }

    #[test]
    fn delta_round_trips_bit_identically() {
        let mut g = VarGen::new();
        let z = g.fresh();
        let delta = Delta::new()
            .insert("R", CTuple::of_terms([Term::constant(9), Term::Var(z)]))
            .retract("R", 0)
            .conjoin("R", 0, Conjunction::new([Atom::eq(z, 3)]));
        let encoded = encode_delta(&delta);
        let reparsed = Json::parse(&encoded.to_string()).unwrap();
        assert_eq!(reparsed, encoded);
        assert_eq!(encode_delta(&decode_delta(&reparsed).unwrap()), encoded);
    }

    #[test]
    fn requests_decode_against_registered_databases() {
        let db = demo_db();
        let body = Json::parse(r#"{"problem":"containment","right":4}"#).unwrap();
        let lookup = |id: u64| if id == 4 { Some(demo_db()) } else { None };
        let request = decode_request(&body, &db, &lookup).unwrap();
        assert!(matches!(request, DecisionRequest::Containment { .. }));
        let missing = Json::parse(r#"{"problem":"containment","right":5}"#).unwrap();
        assert!(decode_request(&missing, &db, &lookup).is_err());
    }

    #[test]
    fn decision_errors_have_stable_codes() {
        let d = Decision::of(Err(DecisionError::DeadlineExceeded), Strategy::Backtracking);
        let j = encode_decision(&d);
        assert_eq!(
            j.get("error").unwrap().get("code").unwrap().as_str(),
            Some("deadline-exceeded")
        );
        assert_eq!(j.get("strategy").unwrap().as_str(), Some("backtracking"));
    }

    #[test]
    fn hostile_trees_error_without_panicking() {
        let db = demo_db();
        let lookup = |_: u64| None;
        for text in [
            "{}",
            r#"{"problem":"osmosis"}"#,
            r#"{"problem":"membership"}"#,
            r#"{"problem":"membership","instance":{"R":{"rows":[[1]]}}}"#,
            r#"{"problem":"membership","instance":{"R":{"arity":2,"rows":[[1]]}}}"#,
        ] {
            let j = Json::parse(text).unwrap();
            assert!(decode_request(&j, &db, &lookup).is_err(), "{text}");
        }
        assert!(decode_cdatabase(&Json::parse(r#"{"tables":[{"name":"R"}]}"#).unwrap()).is_err());
        assert!(
            decode_delta(&Json::parse(r#"{"ops":[{"op":"warp","table":"R"}]}"#).unwrap()).is_err()
        );
    }
}
