//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The service needs exactly one conversation shape — read one request, write one
//! response, close — so that is all this module implements: no keep-alive, no chunked
//! transfer coding, no pipelining.  What it *is* careful about is hostile input:
//!
//! * the request head is capped at [`MAX_HEAD_BYTES`] and the body at the caller's
//!   limit — an over-long body is refused with `413` *before* it is read;
//! * a `Transfer-Encoding` the layer does not speak is refused with `501`;
//! * socket read/write timeouts are installed by the server before parsing, so a
//!   client that stalls mid-request is dropped with `408` instead of pinning a worker;
//! * every failure is a typed [`HttpError`] with the status and machine-readable
//!   `code` the JSON error body carries — parsing never panics.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method, uppercased by the client per HTTP (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the request target (any `?query` is split off and kept
    /// in [`Request::query`]).
    pub path: String,
    /// The raw query string (without the `?`), empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs; names are lowercased at parse time.
    pub headers: Vec<(String, String)>,
    /// The request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A refused request: the HTTP status to answer with, a stable machine-readable code
/// for the JSON error body, and a human-readable message.
#[derive(Clone, Debug)]
pub struct HttpError {
    /// HTTP status code (`400`, `408`, `413`, …).
    pub status: u16,
    /// Stable error code for the JSON body (`"bad-request"`, `"payload-too-large"`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl HttpError {
    /// A `400 Bad Request`.
    pub fn bad_request(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            code: "bad-request",
            message: message.into(),
        }
    }
}

/// The reason phrase for the handful of statuses the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Read and parse one request from `stream`.  `max_body` caps the declared
/// `Content-Length`; the head is capped at [`MAX_HEAD_BYTES`].
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let head = read_head(stream)?;
    let head_text = String::from_utf8(head)
        .map_err(|_| HttpError::bad_request("request head is not valid UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::bad_request("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::bad_request("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("missing request target"))?;
    match parts.next() {
        Some("HTTP/1.1" | "HTTP/1.0") => {}
        _ => return Err(HttpError::bad_request("expected HTTP/1.0 or HTTP/1.1")),
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::bad_request(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if let Some(te) = headers.iter().find(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError {
            status: 501,
            code: "unsupported-transfer-encoding",
            message: format!("transfer-encoding {:?} is not supported", te.1),
        });
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::bad_request("content-length is not an integer"))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError {
            status: 413,
            code: "payload-too-large",
            message: format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        });
    }

    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(read_error)?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Read bytes until the `\r\n\r\n` head terminator, never more than
/// [`MAX_HEAD_BYTES`].  One byte at a time so not a single body byte is consumed past
/// the terminator; heads are well under a kilobyte, so the syscall count is irrelevant
/// next to a decision procedure.
fn read_head(stream: &mut TcpStream) -> Result<Vec<u8>, HttpError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte).map_err(read_error)?;
        if n == 0 {
            return Err(HttpError::bad_request("connection closed mid-request"));
        }
        head.push(byte[0]);
        if head.ends_with(b"\r\n\r\n") {
            head.truncate(head.len() - 4);
            return Ok(head);
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError {
                status: 431,
                code: "headers-too-large",
                message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            });
        }
    }
}

fn read_error(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError {
            status: 408,
            code: "request-timeout",
            message: "timed out reading the request".to_string(),
        },
        _ => HttpError::bad_request(format!("failed to read request: {e}")),
    }
}

/// Write one response and flush.  `extra_headers` are emitted verbatim after the
/// standard set; the connection is always marked `close`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        status_text(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    fn round_trip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&raw).unwrap();
            c
        });
        let (mut server_side, _) = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let parsed = read_request(&mut server_side, 1024);
        drop(writer.join().unwrap());
        parsed
    }

    #[test]
    fn parses_a_post_with_body() {
        let request = round_trip(
            b"POST /v1/databases?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/databases");
        assert_eq!(request.query, "x=1");
        assert_eq!(request.header("host"), Some("h"));
        assert_eq!(request.body, b"abcd");
    }

    #[test]
    fn refuses_oversized_bodies_without_reading_them() {
        let err = round_trip(b"POST / HTTP/1.1\r\nContent-Length: 4096\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 413);
        assert_eq!(err.code, "payload-too-large");
    }

    #[test]
    fn refuses_chunked_transfer() {
        let err = round_trip(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 501);
    }

    #[test]
    fn malformed_request_line_is_a_400() {
        let err = round_trip(b"GARBAGE\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
    }
}
