//! A small, dependency-free JSON codec: the wire layer's only serialization format.
//!
//! The build environment has no access to crates.io, so the service hand-rolls the
//! ~300 lines of RFC 8259 it actually needs instead of depending on `serde_json`:
//!
//! * a [`Json`] tree whose integers stay integers ([`Json::Int`] is `i64`, never
//!   silently widened to a float) and whose objects preserve insertion order — both
//!   properties the round-trip tests rely on for *bit-identical* serialize→parse
//!   cycles;
//! * an escape-correct serializer (`Json::to_string` via its [`std::fmt::Display`] impl),
//!   including `\uXXXX` escapes for control characters and surrogate-pair decoding on
//!   the way back in;
//! * a recursive-descent parser with explicit limits — input size
//!   ([`MAX_TEXT_BYTES`]) and nesting depth ([`MAX_DEPTH`]) — that returns a typed
//!   [`JsonError`] on malformed, oversized or too-deep input and never panics.
//!   Untrusted bytes from the network hit this parser first; everything behind it
//!   ([`crate::wire`]) can assume a well-formed tree.

use std::fmt;

/// Maximum nesting depth the parser accepts.  Deeper input is an error, not a stack
/// overflow: the recursive-descent parser charges one unit per `[`/`{` and refuses to
/// recurse past this bound.
pub const MAX_DEPTH: usize = 64;

/// Default maximum input size (bytes) for [`Json::parse`].  The HTTP layer enforces
/// its own body cap before the text ever reaches the parser; this bound is the
/// defense-in-depth backstop for direct library callers.
pub const MAX_TEXT_BYTES: usize = 4 << 20;

/// A parsed JSON value.
///
/// Integers and floats are distinct variants: `1` parses to [`Json::Int`] and
/// re-serializes as `1`, never `1.0`.  Objects are insertion-ordered vectors of
/// `(key, value)` pairs — serialization order equals construction/parse order, which
/// keeps encode→serialize→parse cycles bit-identical.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no fraction or exponent in the source text).
    Int(i64),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.  Duplicate keys are preserved by the parser;
    /// [`Json::get`] returns the first match.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A [`Json::Str`] from anything string-like.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The boolean, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer, if this is a [`Json::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer as a `u64`, if this is a non-negative [`Json::Int`].
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The string slice, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a [`Json::Array`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is a [`Json::Object`].
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The first member named `key`, if this is a [`Json::Object`] containing one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Parse with the default limits ([`MAX_DEPTH`], [`MAX_TEXT_BYTES`]).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        Json::parse_with_limits(text, MAX_DEPTH, MAX_TEXT_BYTES)
    }

    /// Parse with explicit limits.  Returns a [`JsonError`] — never panics — on
    /// malformed input, input longer than `max_bytes`, or nesting deeper than
    /// `max_depth`.
    pub fn parse_with_limits(
        text: &str,
        max_depth: usize,
        max_bytes: usize,
    ) -> Result<Json, JsonError> {
        if text.len() > max_bytes {
            return Err(JsonError {
                pos: 0,
                message: format!(
                    "input of {} bytes exceeds the {max_bytes}-byte limit",
                    text.len()
                ),
            });
        }
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            max_depth,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            // Non-finite floats have no JSON spelling; the parser never produces
            // them, so this arm only guards hand-built values.
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: byte offset plus a human-readable reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    max_depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > self.max_depth {
            return Err(self.err(format!(
                "nesting deeper than the {}-level limit",
                self.max_depth
            )));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes up to the next quote or backslash.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so slices between ASCII delimiters are valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 inside string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let unit = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&unit) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    let low = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&low) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00)
                } else {
                    unit
                };
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => return Err(self.err("escape is not a Unicode scalar value")),
                }
            }
            other => return Err(self.err(format!("invalid escape '\\{}'", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII digits/signs, so the str conversion cannot fail.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            match text.parse::<f64>() {
                Ok(x) if x.is_finite() => Ok(Json::Float(x)),
                _ => Err(self.err("number out of range")),
            }
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of i64 range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "9007199254740993",
            "\"hi\"",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn integers_stay_integers() {
        assert_eq!(Json::parse("5").unwrap(), Json::Int(5));
        assert_eq!(Json::parse("5.0").unwrap(), Json::Float(5.0));
        assert_eq!(Json::parse("5").unwrap().to_string(), "5");
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z":1,"a":[{"k":null}],"m":"x"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn escapes_round_trip() {
        let original = Json::str("line\nquote\"back\\slash\ttab\u{1}bel\u{1F600}");
        let reparsed = Json::parse(&original.to_string()).unwrap();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::str("\u{1F600}")
        );
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("\"\\ud83dx\"").is_err());
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn size_limit_is_enforced() {
        let text = format!("\"{}\"", "a".repeat(64));
        assert!(Json::parse_with_limits(&text, MAX_DEPTH, 16).is_err());
        assert!(Json::parse_with_limits(&text, MAX_DEPTH, 1024).is_ok());
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "nul",
            "truex",
            "\"\\q\"",
            "[1 2]",
            "{\"a\":1,}",
            "--1",
            "\u{7}",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }
}
