//! # `pw-serve` — the decision engine as a service
//!
//! A dependency-free HTTP/1.1 server (std [`std::net::TcpListener`] plus a small
//! fixed thread pool) that owns one [`pw_decide::Session`] per registered c-database
//! and exposes the batched decision API over a versioned JSON wire protocol:
//!
//! | method & path | purpose |
//! |---|---|
//! | `POST /v1/databases` | register a c-database, get an integer handle |
//! | `POST /v1/databases/{id}/decide` | decide a batch of requests (all five problems) |
//! | `POST /v1/databases/{id}/delta` | apply a [`pw_core::Delta`] (optionally through a delta window), re-decide the standing requests, fan verdict flips out to subscriptions |
//! | `GET /v1/databases/{id}/stats` | engine + decision-memo + subscription counters |
//! | `POST /v1/subscriptions` | open a verdict-flip subscription (standing requests + optional tumbling/sliding window) |
//! | `GET /v1/subscriptions/{id}/flips` | long-poll the subscription's flip events |
//! | `POST /v1/shutdown` | graceful drain |
//! | `GET /healthz` | liveness |
//!
//! The wire schema (`schema_version` 1) is documented with worked examples in
//! `docs/BOOK.md` §16 (core protocol) and §17 (standing queries and verdict-flip
//! streams).  Serving-grade behaviour is part of the contract, not an
//! afterthought: bounded admission (`429`/`503` with `Retry-After`, never an
//! unbounded queue), per-request deadlines (`x-deadline-ms`) mapped onto the
//! engine's deadline, socket timeouts, size- and depth-limited parsing (`400`, never
//! a panic), and graceful shutdown that drains in-flight batches.
//!
//! The crate splits along trust boundaries: [`json`] (untrusted bytes → checked
//! tree), [`wire`] (checked tree ↔ library types), [`http`] (socket ↔ request), and
//! [`server`] (admission, sessions, routing).

#![warn(missing_docs)]

pub mod http;
pub mod json;
pub mod server;
pub mod wire;

pub use json::{Json, JsonError};
pub use server::{client, Server, ServerConfig};
pub use wire::{WireError, SCHEMA_VERSION};
