//! `serve-smoke`: the CI service-smoke client.
//!
//! Drives one full register → decide → delta → stats cycle against a running
//! `pw-serve`, asserts every response, then posts `/v1/shutdown` so the server (run
//! as a separate process by CI) can be waited on for a clean exit.
//!
//! With `--stream`, drives the standing-query surface instead: register → subscribe
//! (with a tumbling delta window) → push deltas → long-poll verdict flips →
//! flush → stats → shutdown.  A library-side mirror ([`Session::push_delta`] fed by
//! an identical [`DeltaWindow`]) runs the same stream in-process, and every baseline,
//! flip and long-polled event from the wire must be **bit-identical** to the mirror's.
//!
//! ```text
//! serve-smoke 127.0.0.1:7171            # drive an already-running server
//! serve-smoke                           # start an in-process server on a free port
//! serve-smoke --stream 127.0.0.1:7272   # standing-query smoke against a server
//! serve-smoke --stream                  # the same, in-process
//! ```
//!
//! Exits 0 on success, 1 with a message on the first failed assertion.

use pw_condition::{Atom, Conjunction, Term, VarGen};
use pw_core::{CDatabase, CTable, CTuple, Delta, DeltaWindow, View};
use pw_decide::{Budget, DecisionRequest, EngineConfig, Session};
use pw_relational::{rel, Instance};
use pw_serve::client;
use pw_serve::json::Json;
use pw_serve::{wire, Server, ServerConfig};
use std::net::SocketAddr;

fn main() {
    let mut stream = false;
    let mut addr_arg: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--stream" => stream = true,
            other => addr_arg = Some(other.to_string()),
        }
    }
    let drive: fn(SocketAddr) = if stream { run_stream } else { run };
    match addr_arg {
        Some(addr) => {
            let addr: SocketAddr = addr.parse().unwrap_or_else(|_| {
                eprintln!("{addr:?} is not an ADDR:PORT");
                std::process::exit(2);
            });
            drive(addr);
        }
        None => {
            let server = Server::start(ServerConfig::default()).unwrap_or_else(|e| {
                eprintln!("failed to start in-process server: {e}");
                std::process::exit(1);
            });
            let addr = server.local_addr();
            drive(addr);
            server.join();
        }
    }
    println!("serve-smoke: all checks passed");
}

fn check(name: &str, ok: bool, detail: &dyn std::fmt::Display) {
    if !ok {
        eprintln!("serve-smoke: FAILED {name}: {detail}");
        std::process::exit(1);
    }
    println!("serve-smoke: ok {name}");
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Json) {
    let response = client::request(addr, "POST", path, &[], body).unwrap_or_else(|e| {
        eprintln!("serve-smoke: FAILED {path}: {e}");
        std::process::exit(1);
    });
    let json = response.json().unwrap_or_else(|e| {
        eprintln!("serve-smoke: FAILED {path}: non-JSON body: {e}");
        std::process::exit(1);
    });
    (response.status, json)
}

fn run(addr: SocketAddr) {
    // Liveness.
    let health = client::get(addr, "/healthz").expect("healthz reachable");
    check("healthz", health.status == 200, &health.body);

    // Register: R(a) where row (2) is conditional on x = 0.
    let (status, registered) = post(
        addr,
        "/v1/databases",
        r#"{"schema_version":1,"database":{"tables":[
            {"name":"R","arity":1,"global_condition":[],"rows":[
                {"terms":[1]},
                {"terms":[2],"condition":[{"op":"eq","left":{"var":0},"right":0}]}
            ]}
        ]}}"#,
    );
    check("register", status == 201, &registered.to_string());
    let id = registered.get("id").and_then(Json::as_u64).unwrap_or(0);
    check("register-id", id > 0, &registered.to_string());

    // Decide all five problems (containment against the same database).
    let decide_body = format!(
        r#"{{"schema_version":1,"standing":true,"requests":[
            {{"problem":"possibility","facts":{{"R":{{"arity":1,"rows":[[1],[2]]}}}}}},
            {{"problem":"certainty","facts":{{"R":{{"arity":1,"rows":[[1]]}}}}}},
            {{"problem":"membership","instance":{{"R":{{"arity":1,"rows":[[1]]}}}}}},
            {{"problem":"uniqueness","instance":{{"R":{{"arity":1,"rows":[[1]]}}}}}},
            {{"problem":"containment","right":{id}}}
        ]}}"#
    );
    let (status, decided) = post(addr, &format!("/v1/databases/{id}/decide"), &decide_body);
    check("decide", status == 200, &decided.to_string());
    let answers: Vec<Option<bool>> = decided
        .get("outcomes")
        .and_then(Json::as_array)
        .map(|o| {
            o.iter()
                .map(|d| d.get("answer").and_then(Json::as_bool))
                .collect()
        })
        .unwrap_or_default();
    check(
        "decide-answers",
        answers
            == vec![
                Some(true),  // (1),(2) jointly possible (x = 0)
                Some(true),  // (1) certain
                Some(true),  // {(1)} is a possible world (x ≠ 0)
                Some(false), // …but not the unique one
                Some(true),  // every view contains itself
            ],
        &decided.to_string(),
    );

    // Delta: force x = 0, making row (2) unconditional; the standing requests
    // re-decide — now {(1)} is no longer even a member.
    let (status, deltaed) = post(
        addr,
        &format!("/v1/databases/{id}/delta"),
        r#"{"schema_version":1,"delta":{"ops":[
            {"op":"conjoin","table":"R","row":1,"condition":[{"op":"eq","left":{"var":0},"right":0}]},
            {"op":"insert","table":"R","row":{"terms":[3]}}
        ]}}"#,
    );
    check("delta", status == 200, &deltaed.to_string());
    let redecided: Vec<Option<bool>> = deltaed
        .get("outcomes")
        .and_then(Json::as_array)
        .map(|o| {
            o.iter()
                .map(|d| d.get("answer").and_then(Json::as_bool))
                .collect()
        })
        .unwrap_or_default();
    check(
        "delta-redecide",
        redecided.len() == 5 && redecided[2] == Some(false),
        &deltaed.to_string(),
    );

    // Stats are live.
    let stats = client::get(addr, &format!("/v1/databases/{id}/stats")).expect("stats reachable");
    let stats_json = stats.json().expect("stats is JSON");
    check(
        "stats",
        stats.status == 200
            && stats_json.get("memo").is_some()
            && stats_json.get("engine").is_some()
            && stats_json.get("standing_requests").and_then(Json::as_i64) == Some(5),
        &stats.body,
    );

    // Typed errors: malformed JSON and an unknown database.
    let (status, error) = post(addr, "/v1/databases", "{not json");
    check(
        "malformed-400",
        status == 400 && error.get("error").is_some(),
        &error.to_string(),
    );
    let missing = client::get(addr, "/v1/databases/999999/stats").expect("missing id reachable");
    check("missing-404", missing.status == 404, &missing.body);

    // Graceful shutdown.
    let (status, drained) = post(addr, "/v1/shutdown", r#"{"schema_version":1}"#);
    check(
        "shutdown",
        status == 200 && drained.get("status").and_then(Json::as_str) == Some("draining"),
        &drained.to_string(),
    );
}

/// The stream database: two decoupled relations, each with a ground *anchor* row
/// (certain iff present — the flip lever), a ground *keeper* row, and a null row under
/// an inert condition (so re-deciding a shard is real search work).
fn stream_db(vars: &mut VarGen) -> CDatabase {
    let tables: Vec<CTable> = [("A", 100), ("B", 200)]
        .into_iter()
        .map(|(name, anchor)| {
            let null = vars.fresh();
            CTable::new(
                name,
                1,
                Conjunction::truth(),
                vec![
                    CTuple::of_terms([Term::constant(anchor)]),
                    CTuple::of_terms([Term::constant(anchor * 10)]),
                    CTuple::with_condition(
                        [Term::Var(null)],
                        Conjunction::single(Atom::neq(null, -1)),
                    ),
                ],
            )
            .expect("stream table is well formed")
        })
        .collect();
    CDatabase::new(tables)
}

/// The standing requests, in both library form and the wire spelling the subscribe
/// body carries — decoded server-side against the same database, they are identical.
fn stream_requests(db: &CDatabase) -> (Vec<DecisionRequest>, Json) {
    let view = || View::identity(db.clone());
    let requests = vec![
        DecisionRequest::Certainty {
            view: view(),
            facts: Instance::single("A", rel![[100]]),
        },
        DecisionRequest::Possibility {
            view: view(),
            facts: Instance::single("A", rel![[100]]),
        },
        DecisionRequest::Certainty {
            view: view(),
            facts: Instance::single("B", rel![[200]]),
        },
    ];
    let wire_requests = Json::parse(
        r#"[
            {"problem":"certainty","facts":{"A":{"arity":1,"rows":[[100]]}}},
            {"problem":"possibility","facts":{"A":{"arity":1,"rows":[[100]]}}},
            {"problem":"certainty","facts":{"B":{"arity":1,"rows":[[200]]}}}
        ]"#,
    )
    .expect("request specs parse");
    (requests, wire_requests)
}

/// Encode an array of library decisions the way the server does.
fn encode_outcomes(outcomes: &[pw_decide::DecisionOutcome]) -> String {
    Json::Array(outcomes.iter().map(wire::encode_decision).collect()).to_string()
}

fn run_stream(addr: SocketAddr) {
    let health = client::get(addr, "/healthz").expect("healthz reachable");
    check("healthz", health.status == 200, &health.body);

    // The library-side mirror: the same database, requests, window and session
    // configuration as the server — its flips are the ground truth the wire events
    // must reproduce bit for bit.
    let defaults = ServerConfig::default();
    let mut vars = VarGen::new();
    let db = stream_db(&mut vars);
    let (requests, wire_requests) = stream_requests(&db);
    let cfg = EngineConfig::with_threads(defaults.session_threads.max(1), Budget(defaults.budget));
    let mut mirror = Session::new(&cfg);
    let (mirror_ids, mirror_baselines) = mirror.register_standing(&db, &requests);
    let mut mirror_window = DeltaWindow::tumbling(&db, 2);

    // Register the same database over the wire.
    let register_body = Json::Object(vec![
        ("schema_version".into(), Json::Int(1)),
        ("database".into(), wire::encode_cdatabase(&db)),
    ]);
    let (status, registered) = post(addr, "/v1/databases", &register_body.to_string());
    check("stream-register", status == 201, &registered.to_string());
    let id = registered.get("id").and_then(Json::as_u64).unwrap_or(0);
    check("stream-register-id", id > 0, &registered.to_string());

    // Subscribe with a tumbling window of two deltas.
    let subscribe_body = Json::Object(vec![
        ("schema_version".into(), Json::Int(1)),
        ("database".into(), Json::Int(id as i64)),
        ("requests".into(), wire_requests),
        (
            "window".into(),
            Json::parse(r#"{"kind":"tumbling","size":2}"#).expect("window spec parses"),
        ),
    ]);
    let (status, subscribed) = post(addr, "/v1/subscriptions", &subscribe_body.to_string());
    check("subscribe", status == 201, &subscribed.to_string());
    let sub_id = subscribed.get("id").and_then(Json::as_u64).unwrap_or(0);
    check("subscribe-id", sub_id > 0, &subscribed.to_string());
    check(
        "subscribe-request-ids",
        subscribed
            .get("request_ids")
            .and_then(Json::as_array)
            .map(|ids| {
                ids.iter().map(|j| j.as_u64()).collect::<Vec<_>>()
                    == mirror_ids.iter().map(|&i| Some(i)).collect::<Vec<_>>()
            })
            .unwrap_or(false),
        &subscribed.to_string(),
    );
    check(
        "subscribe-baseline-bit-identical",
        subscribed
            .get("baseline")
            .map(|b| b.to_string() == encode_outcomes(&mirror_baselines))
            .unwrap_or(false),
        &subscribed.to_string(),
    );

    // The raw delta stream: two tumbling batches, then one flushed singleton.
    //   d1 retract A's anchor   }→ emits: certainty(A) flips true→false
    //   d2 insert a null into B }
    //   d3 re-insert A's anchor }→ emits: certainty(A) flips back, certainty(B)
    //   d4 retract B's anchor   }   flips true→false
    //   d5 insert a null into A  → buffered, then flushed: no flips, A re-decided
    let stream: Vec<Delta> = vec![
        Delta::new().retract("A", 0),
        Delta::new().insert("B", CTuple::of_terms([Term::Var(vars.fresh())])),
        Delta::new().insert("A", CTuple::of_terms([Term::constant(100)])),
        Delta::new().retract("B", 0),
        Delta::new().insert("A", CTuple::of_terms([Term::Var(vars.fresh())])),
    ];

    let mut expected_events: Vec<String> = Vec::new();
    let mut next_seq = 1u64;
    for (tick, delta) in stream.iter().enumerate() {
        let body = Json::Object(vec![
            ("schema_version".into(), Json::Int(1)),
            ("delta".into(), wire::encode_delta(delta)),
        ]);
        let (status, reply) = post(
            addr,
            &format!("/v1/databases/{id}/delta"),
            &body.to_string(),
        );
        check(&format!("delta-{tick}"), status == 200, &reply.to_string());
        let compacted = mirror_window
            .push(delta.clone())
            .expect("stream deltas validate");
        match compacted {
            None => {
                check(
                    &format!("delta-{tick}-buffered"),
                    reply.get("buffered").and_then(Json::as_bool) == Some(true)
                        && reply.get("pending").and_then(Json::as_u64) == Some(1),
                    &reply.to_string(),
                );
            }
            Some(compacted) => {
                let update = mirror
                    .push_delta(&compacted)
                    .expect("compacted deltas apply");
                let expected_flips: Vec<Json> = update
                    .flips
                    .iter()
                    .map(|f| {
                        let event = wire::encode_flip(next_seq, f);
                        expected_events.push(event.to_string());
                        next_seq += 1;
                        event
                    })
                    .collect();
                check(
                    &format!("delta-{tick}-flips-bit-identical"),
                    reply.get("buffered").and_then(Json::as_bool) == Some(false)
                        && reply.get("flips").map(|f| f.to_string())
                            == Some(Json::Array(expected_flips).to_string())
                        && reply.get("redecided").and_then(Json::as_u64)
                            == Some(update.redecided as u64)
                        && reply.get("skipped").and_then(Json::as_u64)
                            == Some(update.skipped as u64),
                    &reply.to_string(),
                );
            }
        }
    }
    check(
        "stream-flip-count",
        expected_events.len() == 3,
        &expected_events.len(),
    );

    // Long-poll the flips: all three events, in order, bit-identical to the mirror's.
    let polled = client::get(
        addr,
        &format!("/v1/subscriptions/{sub_id}/flips?timeout_ms=2000&max=10"),
    )
    .expect("flips reachable");
    let polled_json = polled.json().expect("flips is JSON");
    let events: Vec<String> = polled_json
        .get("events")
        .and_then(Json::as_array)
        .map(|e| e.iter().map(Json::to_string).collect())
        .unwrap_or_default();
    check(
        "flips-bit-identical",
        polled.status == 200
            && events == expected_events
            && polled_json.get("dropped").and_then(Json::as_u64) == Some(0)
            && polled_json.get("pending").and_then(Json::as_u64) == Some(0),
        &polled.body,
    );

    // Flush the buffered fifth delta: a real change, no flips.
    let (status, flushed) = post(
        addr,
        &format!("/v1/databases/{id}/delta"),
        r#"{"schema_version":1,"flush":true}"#,
    );
    let flush_compacted = mirror_window.flush().expect("one delta is buffered");
    let flush_update = mirror
        .push_delta(&flush_compacted)
        .expect("flushed delta applies");
    check(
        "flush",
        status == 200
            && flushed.get("buffered").and_then(Json::as_bool) == Some(false)
            && flushed.get("noop").and_then(Json::as_bool) == Some(false)
            && flushed
                .get("flips")
                .and_then(Json::as_array)
                .map(|f| f.len())
                == Some(0)
            && flushed.get("redecided").and_then(Json::as_u64)
                == Some(flush_update.redecided as u64)
            && flushed.get("skipped").and_then(Json::as_u64) == Some(flush_update.skipped as u64),
        &flushed.to_string(),
    );

    // An empty poll drains nothing and reports nothing lost.
    let drained =
        client::get(addr, &format!("/v1/subscriptions/{sub_id}/flips")).expect("flips reachable");
    let drained_json = drained.json().expect("flips is JSON");
    check(
        "flips-drained",
        drained.status == 200
            && drained_json
                .get("events")
                .and_then(Json::as_array)
                .map(|e| e.len())
                == Some(0)
            && drained_json.get("dropped").and_then(Json::as_u64) == Some(0),
        &drained.body,
    );

    // Stats reflect the stream: one subscription, five deltas received, three
    // batches applied, three flips, an idle tumbling window.
    let stats = client::get(addr, &format!("/v1/databases/{id}/stats")).expect("stats reachable");
    let stats_json = stats.json().expect("stats is JSON");
    check(
        "stream-stats",
        stats.status == 200
            && stats_json.get("subscriptions").and_then(Json::as_u64) == Some(1)
            && stats_json.get("subscribed_requests").and_then(Json::as_u64) == Some(3)
            && stats_json.get("deltas_received").and_then(Json::as_u64) == Some(5)
            && stats_json.get("deltas_applied").and_then(Json::as_u64) == Some(3)
            && stats_json.get("flips_emitted").and_then(Json::as_u64) == Some(3)
            && stats_json.get("window_pending").and_then(Json::as_u64) == Some(0)
            && stats_json
                .get("window")
                .map(|w| w.to_string() == wire::encode_window(mirror_window.kind()).to_string())
                .unwrap_or(false),
        &stats.body,
    );

    // Graceful shutdown.
    let (status, drained) = post(addr, "/v1/shutdown", r#"{"schema_version":1}"#);
    check(
        "stream-shutdown",
        status == 200 && drained.get("status").and_then(Json::as_str) == Some("draining"),
        &drained.to_string(),
    );
}
