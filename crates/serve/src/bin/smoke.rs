//! `serve-smoke`: the CI service-smoke client.
//!
//! Drives one full register → decide → delta → stats cycle against a running
//! `pw-serve`, asserts every response, then posts `/v1/shutdown` so the server (run
//! as a separate process by CI) can be waited on for a clean exit.
//!
//! ```text
//! serve-smoke 127.0.0.1:7171     # drive an already-running server
//! serve-smoke                    # start an in-process server on a free port
//! ```
//!
//! Exits 0 on success, 1 with a message on the first failed assertion.

use pw_serve::client;
use pw_serve::json::Json;
use pw_serve::{Server, ServerConfig};
use std::net::SocketAddr;

fn main() {
    let arg = std::env::args().nth(1);
    match arg {
        Some(addr) => {
            let addr: SocketAddr = addr.parse().unwrap_or_else(|_| {
                eprintln!("{addr:?} is not an ADDR:PORT");
                std::process::exit(2);
            });
            run(addr);
        }
        None => {
            let server = Server::start(ServerConfig::default()).unwrap_or_else(|e| {
                eprintln!("failed to start in-process server: {e}");
                std::process::exit(1);
            });
            let addr = server.local_addr();
            run(addr);
            server.join();
        }
    }
    println!("serve-smoke: all checks passed");
}

fn check(name: &str, ok: bool, detail: &dyn std::fmt::Display) {
    if !ok {
        eprintln!("serve-smoke: FAILED {name}: {detail}");
        std::process::exit(1);
    }
    println!("serve-smoke: ok {name}");
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Json) {
    let response = client::request(addr, "POST", path, &[], body).unwrap_or_else(|e| {
        eprintln!("serve-smoke: FAILED {path}: {e}");
        std::process::exit(1);
    });
    let json = response.json().unwrap_or_else(|e| {
        eprintln!("serve-smoke: FAILED {path}: non-JSON body: {e}");
        std::process::exit(1);
    });
    (response.status, json)
}

fn run(addr: SocketAddr) {
    // Liveness.
    let health = client::get(addr, "/healthz").expect("healthz reachable");
    check("healthz", health.status == 200, &health.body);

    // Register: R(a) where row (2) is conditional on x = 0.
    let (status, registered) = post(
        addr,
        "/v1/databases",
        r#"{"schema_version":1,"database":{"tables":[
            {"name":"R","arity":1,"global_condition":[],"rows":[
                {"terms":[1]},
                {"terms":[2],"condition":[{"op":"eq","left":{"var":0},"right":0}]}
            ]}
        ]}}"#,
    );
    check("register", status == 201, &registered.to_string());
    let id = registered.get("id").and_then(Json::as_u64).unwrap_or(0);
    check("register-id", id > 0, &registered.to_string());

    // Decide all five problems (containment against the same database).
    let decide_body = format!(
        r#"{{"schema_version":1,"standing":true,"requests":[
            {{"problem":"possibility","facts":{{"R":{{"arity":1,"rows":[[1],[2]]}}}}}},
            {{"problem":"certainty","facts":{{"R":{{"arity":1,"rows":[[1]]}}}}}},
            {{"problem":"membership","instance":{{"R":{{"arity":1,"rows":[[1]]}}}}}},
            {{"problem":"uniqueness","instance":{{"R":{{"arity":1,"rows":[[1]]}}}}}},
            {{"problem":"containment","right":{id}}}
        ]}}"#
    );
    let (status, decided) = post(addr, &format!("/v1/databases/{id}/decide"), &decide_body);
    check("decide", status == 200, &decided.to_string());
    let answers: Vec<Option<bool>> = decided
        .get("outcomes")
        .and_then(Json::as_array)
        .map(|o| {
            o.iter()
                .map(|d| d.get("answer").and_then(Json::as_bool))
                .collect()
        })
        .unwrap_or_default();
    check(
        "decide-answers",
        answers
            == vec![
                Some(true),  // (1),(2) jointly possible (x = 0)
                Some(true),  // (1) certain
                Some(true),  // {(1)} is a possible world (x ≠ 0)
                Some(false), // …but not the unique one
                Some(true),  // every view contains itself
            ],
        &decided.to_string(),
    );

    // Delta: force x = 0, making row (2) unconditional; the standing requests
    // re-decide — now {(1)} is no longer even a member.
    let (status, deltaed) = post(
        addr,
        &format!("/v1/databases/{id}/delta"),
        r#"{"schema_version":1,"delta":{"ops":[
            {"op":"conjoin","table":"R","row":1,"condition":[{"op":"eq","left":{"var":0},"right":0}]},
            {"op":"insert","table":"R","row":{"terms":[3]}}
        ]}}"#,
    );
    check("delta", status == 200, &deltaed.to_string());
    let redecided: Vec<Option<bool>> = deltaed
        .get("outcomes")
        .and_then(Json::as_array)
        .map(|o| {
            o.iter()
                .map(|d| d.get("answer").and_then(Json::as_bool))
                .collect()
        })
        .unwrap_or_default();
    check(
        "delta-redecide",
        redecided.len() == 5 && redecided[2] == Some(false),
        &deltaed.to_string(),
    );

    // Stats are live.
    let stats = client::get(addr, &format!("/v1/databases/{id}/stats")).expect("stats reachable");
    let stats_json = stats.json().expect("stats is JSON");
    check(
        "stats",
        stats.status == 200
            && stats_json.get("memo").is_some()
            && stats_json.get("engine").is_some()
            && stats_json.get("standing_requests").and_then(Json::as_i64) == Some(5),
        &stats.body,
    );

    // Typed errors: malformed JSON and an unknown database.
    let (status, error) = post(addr, "/v1/databases", "{not json");
    check(
        "malformed-400",
        status == 400 && error.get("error").is_some(),
        &error.to_string(),
    );
    let missing = client::get(addr, "/v1/databases/999999/stats").expect("missing id reachable");
    check("missing-404", missing.status == 404, &missing.body);

    // Graceful shutdown.
    let (status, drained) = post(addr, "/v1/shutdown", r#"{"schema_version":1}"#);
    check(
        "shutdown",
        status == 200 && drained.get("status").and_then(Json::as_str) == Some("draining"),
        &drained.to_string(),
    );
}
