//! The ∀∃3CNF problem (Π₂ᵖ-complete), source of the containment lower bounds.
//!
//! Theorem 4.2 reduces from the problem the paper states as:
//!
//! > **input**: two disjoint sets X and Y of variables, and a conjunction H of or-clauses
//! > over X ∪ Y such that each clause has three literals.
//! > **question**: does there exist, for each truth assignment of X, a truth assignment of
//! > Y which makes H true?
//!
//! The decision procedure enumerates the 2^|X| universal assignments and calls the DPLL
//! solver on the remaining existential formula — doubly exponential-free but still
//! exponential, as a Π₂ᵖ-complete problem demands of an exact solver.

use crate::sat::{Clause, CnfFormula, Literal};
use std::fmt;

/// A ∀∃3CNF instance: the first `universal_vars` variables are universally quantified,
/// the remaining `existential_vars` are existentially quantified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForallExists3Cnf {
    /// Number of universally quantified variables (indices `0..universal_vars`).
    pub universal_vars: usize,
    /// Number of existentially quantified variables
    /// (indices `universal_vars..universal_vars + existential_vars`).
    pub existential_vars: usize,
    /// The matrix: a conjunction of or-clauses over all variables.
    pub clauses: Vec<Clause>,
}

impl ForallExists3Cnf {
    /// Build an instance.
    pub fn new(
        universal_vars: usize,
        existential_vars: usize,
        clauses: impl IntoIterator<Item = Clause>,
    ) -> Self {
        ForallExists3Cnf {
            universal_vars,
            existential_vars,
            clauses: clauses.into_iter().collect(),
        }
    }

    /// Total number of variables.
    pub fn num_vars(&self) -> usize {
        self.universal_vars + self.existential_vars
    }

    /// The paper's Fig. 5 instance: X = {x₁, x₂}, Y = {x₃, x₄, x₅}, H the five clauses
    /// (read as a CNF).  Variables are stored 0-based.
    pub fn paper_fig5() -> ForallExists3Cnf {
        let c = |lits: [(usize, bool); 3]| {
            Clause::new(lits.iter().map(|&(v, s)| Literal {
                var: v,
                positive: s,
            }))
        };
        ForallExists3Cnf::new(
            2,
            3,
            [
                c([(0, true), (1, true), (2, true)]),
                c([(0, true), (1, false), (3, true)]),
                c([(0, true), (3, true), (4, true)]),
                c([(1, true), (0, false), (4, true)]),
                c([(0, false), (1, false), (4, false)]),
            ],
        )
    }
}

impl fmt::Display for ForallExists3Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "∀x0..x{} ∃x{}..x{} : {} clauses",
            self.universal_vars.saturating_sub(1),
            self.universal_vars,
            self.num_vars().saturating_sub(1),
            self.clauses.len()
        )
    }
}

/// Decide a ∀∃3CNF instance: for every assignment of the universal variables, is the
/// residual CNF over the existential variables satisfiable?
pub fn decide_forall_exists(instance: &ForallExists3Cnf) -> bool {
    let u = instance.universal_vars;
    let e = instance.existential_vars;
    assert!(
        u <= 24,
        "universal enumeration is for moderate instance sizes"
    );

    'universal: for bits in 0..(1usize << u) {
        let universal: Vec<bool> = (0..u).map(|i| bits & (1 << i) != 0).collect();
        // Build the residual formula over the existential variables only.
        let mut residual_clauses: Vec<Clause> = Vec::new();
        for clause in &instance.clauses {
            let mut satisfied = false;
            let mut remaining: Vec<Literal> = Vec::new();
            for &lit in clause.literals() {
                if lit.var < u {
                    if lit.eval(&universal) {
                        satisfied = true;
                        break;
                    }
                    // Falsified universal literal: drop it.
                } else {
                    remaining.push(Literal {
                        var: lit.var - u,
                        positive: lit.positive,
                    });
                }
            }
            if satisfied {
                continue;
            }
            if remaining.is_empty() {
                // Clause falsified by the universal assignment alone: no existential
                // assignment can rescue it.
                return false;
            }
            residual_clauses.push(Clause::new(remaining));
        }
        let residual = CnfFormula::new(e, residual_clauses);
        if residual.solve().is_sat() {
            continue 'universal;
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, s: bool) -> Literal {
        Literal {
            var: v,
            positive: s,
        }
    }

    #[test]
    fn forall_x_exists_y_x_equals_y_is_true() {
        // ∀x ∃y (x ∨ ¬y) ∧ (¬x ∨ y)  — y := x always works.
        let inst = ForallExists3Cnf::new(
            1,
            1,
            [
                Clause::new([lit(0, true), lit(1, false)]),
                Clause::new([lit(0, false), lit(1, true)]),
            ],
        );
        assert!(decide_forall_exists(&inst));
    }

    #[test]
    fn forall_x_x_alone_is_false() {
        // ∀x ∃y (x): false — the universal assignment x=false falsifies the clause.
        let inst = ForallExists3Cnf::new(1, 1, [Clause::new([lit(0, true)])]);
        assert!(!decide_forall_exists(&inst));
    }

    #[test]
    fn pure_existential_instance_degenerates_to_sat() {
        let sat = ForallExists3Cnf::new(0, 2, [Clause::new([lit(0, true), lit(1, true)])]);
        assert!(decide_forall_exists(&sat));
        let unsat = ForallExists3Cnf::new(
            0,
            1,
            [Clause::new([lit(0, true)]), Clause::new([lit(0, false)])],
        );
        assert!(!decide_forall_exists(&unsat));
    }

    #[test]
    fn pure_universal_instance_requires_tautology() {
        // ∀x (x ∨ ¬x) is true; ∀x (x) is false.
        let taut = ForallExists3Cnf::new(1, 0, [Clause::new([lit(0, true), lit(0, false)])]);
        assert!(decide_forall_exists(&taut));
        let not_taut = ForallExists3Cnf::new(1, 0, [Clause::new([lit(0, true)])]);
        assert!(!decide_forall_exists(&not_taut));
    }

    #[test]
    fn paper_fig5_instance_decides() {
        // The Fig. 5 ∀∃3CNF instance: check against brute force.
        let inst = ForallExists3Cnf::paper_fig5();
        let expected = brute_force(&inst);
        assert_eq!(decide_forall_exists(&inst), expected);
    }

    #[test]
    fn agrees_with_brute_force_on_structured_instances() {
        // A family of small instances mixing forced and free clauses.
        for seed in 0..16usize {
            let clauses: Vec<Clause> = (0..4)
                .map(|i| {
                    let a = (seed + i) % 4;
                    let b = (seed + 2 * i + 1) % 4;
                    let c = (seed * 3 + i) % 4;
                    Clause::new([
                        lit(a, (seed + i) % 2 == 0),
                        lit(b, (seed / 2 + i) % 2 == 0),
                        lit(c, (seed / 4 + i) % 2 == 0),
                    ])
                })
                .collect();
            let inst = ForallExists3Cnf::new(2, 2, clauses);
            assert_eq!(
                decide_forall_exists(&inst),
                brute_force(&inst),
                "seed {seed}"
            );
        }
    }

    /// Exhaustive double enumeration, for cross-checking.
    fn brute_force(inst: &ForallExists3Cnf) -> bool {
        let (u, e) = (inst.universal_vars, inst.existential_vars);
        (0..(1usize << u)).all(|ub| {
            (0..(1usize << e)).any(|eb| {
                let assignment: Vec<bool> = (0..u)
                    .map(|i| ub & (1 << i) != 0)
                    .chain((0..e).map(|i| eb & (1 << i) != 0))
                    .collect();
                inst.clauses
                    .iter()
                    .all(|c| c.literals().iter().any(|l| l.eval(&assignment)))
            })
        })
    }
}
