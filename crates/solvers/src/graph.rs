//! Simple undirected graphs.
//!
//! The lower-bound reductions of the paper (Theorems 3.1(2–4), 3.2(4)) start from the graph
//! 3-colourability problem; this module provides the graph type those reductions and the
//! workload generators share.  Vertices are `0..n`; edges are stored once with an arbitrary
//! orientation (the paper likewise "picks an arbitrary orientation of the edges").

use std::collections::BTreeSet;
use std::fmt;

/// An undirected graph over vertices `0..n` without self-loops or parallel edges.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Graph {
    vertices: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl Graph {
    /// An empty graph on `n` vertices.
    pub fn new(vertices: usize) -> Self {
        Graph {
            vertices,
            edges: BTreeSet::new(),
        }
    }

    /// Build a graph from an edge list.
    pub fn from_edges(vertices: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Graph::new(vertices);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add an (undirected) edge.  Self-loops and out-of-range endpoints are ignored; the
    /// stored orientation is `(min, max)`.
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        if a == b || a >= self.vertices || b >= self.vertices {
            return false;
        }
        self.edges.insert((a.min(b), a.max(b)))
    }

    /// Whether the edge is present.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// The edges, each listed once with its stored orientation.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Neighbours of a vertex.
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == v {
                    Some(b)
                } else if b == v {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// The complete graph K_n.
    pub fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        g
    }

    /// A cycle C_n.
    pub fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    /// The example graph of Fig. 4(a) of the paper: vertices 1..5 (stored as 0..4), edges
    /// {1-2, 2-3, 3-4, 4-1, 3-5}.
    pub fn paper_fig4a() -> Graph {
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 0), (2, 4)])
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges={:?})",
            self.vertices,
            self.edges.len(),
            self.edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_normalises_and_rejects_loops() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(2, 1));
        assert!(!g.add_edge(1, 2), "same edge, other orientation");
        assert!(!g.add_edge(1, 1), "self loop");
        assert!(!g.add_edge(0, 5), "out of range");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = Graph::cycle(4);
        assert_eq!(g.neighbors(0), vec![1, 3]);
        assert_eq!(g.neighbors(2), vec![1, 3]);
    }

    #[test]
    fn complete_and_cycle_sizes() {
        assert_eq!(Graph::complete(5).edge_count(), 10);
        assert_eq!(Graph::cycle(5).edge_count(), 5);
        assert_eq!(Graph::paper_fig4a().edge_count(), 5);
        assert_eq!(Graph::paper_fig4a().vertex_count(), 5);
    }
}
