//! Graph k-colouring by backtracking with forward checking.
//!
//! Graph 3-colourability is the NP-complete source problem of the membership and
//! uniqueness lower bounds (Theorems 3.1(2–4) and 3.2(4)).  The solver here provides
//! ground truth for the reduction tests and labels for the workload generators; it is
//! exponential in the worst case, as it must be.

use crate::graph::Graph;

/// Find a proper colouring of `g` with colours `0..k`, if one exists.
pub fn color_graph(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let n = g.vertex_count();
    if n == 0 {
        return Some(Vec::new());
    }
    if k == 0 {
        return None;
    }
    // Order vertices by degree (descending) — a simple but effective heuristic.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.neighbors(v).len()));

    let mut colors: Vec<Option<usize>> = vec![None; n];
    if assign(g, k, &order, 0, &mut colors) {
        Some(colors.into_iter().map(|c| c.unwrap_or(0)).collect())
    } else {
        None
    }
}

fn assign(
    g: &Graph,
    k: usize,
    order: &[usize],
    idx: usize,
    colors: &mut Vec<Option<usize>>,
) -> bool {
    if idx == order.len() {
        return true;
    }
    let v = order[idx];
    // Symmetry breaking: the first vertex only tries colour 0, the second at most 0/1, …
    let max_color = k.min(idx + 1);
    'colors: for c in 0..max_color {
        for u in g.neighbors(v) {
            if colors[u] == Some(c) {
                continue 'colors;
            }
        }
        colors[v] = Some(c);
        if assign(g, k, order, idx + 1, colors) {
            return true;
        }
        colors[v] = None;
    }
    false
}

/// Check that a colouring is proper.
pub fn is_proper_coloring(g: &Graph, colors: &[usize], k: usize) -> bool {
    if colors.len() != g.vertex_count() {
        return false;
    }
    if colors.iter().any(|&c| c >= k) {
        return false;
    }
    g.edges().all(|(a, b)| colors[a] != colors[b])
}

/// Convenience wrapper: is the graph 3-colourable?
pub fn is_three_colorable(g: &Graph) -> bool {
    color_graph(g, 3).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_cycle_needs_three_colors() {
        let c5 = Graph::cycle(5);
        assert!(color_graph(&c5, 2).is_none());
        let coloring = color_graph(&c5, 3).unwrap();
        assert!(is_proper_coloring(&c5, &coloring, 3));
        assert!(is_three_colorable(&c5));
    }

    #[test]
    fn even_cycle_is_bipartite() {
        let c6 = Graph::cycle(6);
        let coloring = color_graph(&c6, 2).unwrap();
        assert!(is_proper_coloring(&c6, &coloring, 2));
    }

    #[test]
    fn complete_graph_chromatic_number() {
        let k4 = Graph::complete(4);
        assert!(color_graph(&k4, 3).is_none());
        assert!(color_graph(&k4, 4).is_some());
        assert!(!is_three_colorable(&k4));
    }

    #[test]
    fn paper_fig4a_is_three_colorable() {
        let g = Graph::paper_fig4a();
        let coloring = color_graph(&g, 3).unwrap();
        assert!(is_proper_coloring(&g, &coloring, 3));
    }

    #[test]
    fn empty_and_edge_cases() {
        assert_eq!(color_graph(&Graph::new(0), 3), Some(vec![]));
        assert!(
            color_graph(&Graph::new(3), 1).is_some(),
            "no edges: one colour suffices"
        );
        assert!(color_graph(&Graph::complete(2), 0).is_none());
        assert!(
            !is_proper_coloring(&Graph::complete(2), &[0], 3),
            "wrong length"
        );
        assert!(
            !is_proper_coloring(&Graph::complete(2), &[0, 5], 3),
            "colour out of range"
        );
        assert!(
            !is_proper_coloring(&Graph::complete(2), &[1, 1], 3),
            "monochromatic edge"
        );
    }
}
