//! Propositional CNF/DNF formulas and a DPLL satisfiability solver.
//!
//! The possibility and certainty lower bounds of the paper (Theorems 5.1–5.3, and the
//! uniqueness bound 3.2(3)) reduce from 3CNF satisfiability and 3DNF tautology.  The
//! workload generators use this module to create formulas and to label them with ground
//! truth; the reduction tests use it to verify the iff-property of each construction.

use std::collections::BTreeSet;
use std::fmt;

/// A propositional literal: variable index plus sign.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// The positive literal of a variable.
    pub fn pos(var: usize) -> Literal {
        Literal {
            var,
            positive: true,
        }
    }

    /// The negative literal of a variable.
    pub fn neg(var: usize) -> Literal {
        Literal {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> Literal {
        Literal {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Evaluate under an assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A clause: a disjunction of literals (for CNF) or a conjunction (for DNF) — the
/// interpretation is fixed by the containing formula type.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Clause(pub Vec<Literal>);

impl Clause {
    /// Build a clause.
    pub fn new(lits: impl IntoIterator<Item = Literal>) -> Self {
        Clause(lits.into_iter().collect())
    }

    /// The literals.
    pub fn literals(&self) -> &[Literal] {
        &self.0
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the clause has no literals.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

/// Result of a satisfiability call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witnessing assignment (indexed by variable).
    Satisfiable(Vec<bool>),
    /// Unsatisfiable.
    Unsatisfiable,
}

impl SatResult {
    /// Whether the formula was satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Satisfiable(_))
    }

    /// The witnessing assignment, if satisfiable.
    pub fn assignment(&self) -> Option<&[bool]> {
        match self {
            SatResult::Satisfiable(a) => Some(a),
            SatResult::Unsatisfiable => None,
        }
    }
}

/// A CNF formula: a conjunction of or-clauses over variables `0..num_vars`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CnfFormula {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Build a formula.
    pub fn new(num_vars: usize, clauses: impl IntoIterator<Item = Clause>) -> Self {
        CnfFormula {
            num_vars,
            clauses: clauses.into_iter().collect(),
        }
    }

    /// Evaluate under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.literals().iter().any(|l| l.eval(assignment)))
    }

    /// Decide satisfiability with DPLL (unit propagation + pure literal elimination).
    pub fn solve(&self) -> SatResult {
        // Partial assignment: None = unassigned.
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        if self.dpll(&mut assignment) {
            let full: Vec<bool> = assignment.into_iter().map(|v| v.unwrap_or(false)).collect();
            debug_assert!(self.eval(&full));
            SatResult::Satisfiable(full)
        } else {
            SatResult::Unsatisfiable
        }
    }

    /// Count satisfying assignments by exhaustive enumeration (exponential; used only by
    /// tests and tiny cross-validation workloads).
    pub fn count_models(&self) -> usize {
        let n = self.num_vars;
        assert!(n <= 24, "model counting is for small formulas only");
        (0..(1usize << n))
            .filter(|bits| {
                let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
                self.eval(&assignment)
            })
            .count()
    }

    fn dpll(&self, assignment: &mut Vec<Option<bool>>) -> bool {
        // Simplify: detect satisfied clauses, unit clauses and conflicts.
        loop {
            let mut unit: Option<Literal> = None;
            for clause in &self.clauses {
                let mut satisfied = false;
                let mut unassigned: Vec<Literal> = Vec::new();
                for &lit in clause.literals() {
                    match assignment[lit.var] {
                        Some(v) if v == lit.positive => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => unassigned.push(lit),
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned.len() {
                    0 => return false, // conflict
                    1 => {
                        unit = Some(unassigned[0]);
                        break;
                    }
                    _ => {}
                }
            }
            match unit {
                Some(lit) => assignment[lit.var] = Some(lit.positive),
                None => break,
            }
        }

        // Pure literal elimination.
        let mut occurs_pos = vec![false; self.num_vars];
        let mut occurs_neg = vec![false; self.num_vars];
        let mut all_satisfied = true;
        for clause in &self.clauses {
            let satisfied = clause
                .literals()
                .iter()
                .any(|l| assignment[l.var] == Some(l.positive));
            if satisfied {
                continue;
            }
            all_satisfied = false;
            for &lit in clause.literals() {
                if assignment[lit.var].is_none() {
                    if lit.positive {
                        occurs_pos[lit.var] = true;
                    } else {
                        occurs_neg[lit.var] = true;
                    }
                }
            }
        }
        if all_satisfied {
            return true;
        }
        for v in 0..self.num_vars {
            if assignment[v].is_none() && (occurs_pos[v] ^ occurs_neg[v]) {
                assignment[v] = Some(occurs_pos[v]);
            }
        }

        // Branch on the first unassigned variable occurring in an unsatisfied clause.
        let branch_var = self.pick_branch_variable(assignment);
        let Some(var) = branch_var else {
            // Everything relevant assigned; check.
            let full: Vec<bool> = assignment.iter().map(|v| v.unwrap_or(false)).collect();
            return self.eval(&full);
        };
        for value in [true, false] {
            let mut trial = assignment.clone();
            trial[var] = Some(value);
            if self.dpll(&mut trial) {
                *assignment = trial;
                return true;
            }
        }
        false
    }

    fn pick_branch_variable(&self, assignment: &[Option<bool>]) -> Option<usize> {
        for clause in &self.clauses {
            let satisfied = clause
                .literals()
                .iter()
                .any(|l| assignment[l.var] == Some(l.positive));
            if satisfied {
                continue;
            }
            for &lit in clause.literals() {
                if assignment[lit.var].is_none() {
                    return Some(lit.var);
                }
            }
        }
        None
    }

    /// Variables actually used by the formula.
    pub fn used_variables(&self) -> BTreeSet<usize> {
        self.clauses
            .iter()
            .flat_map(|c| c.literals().iter().map(|l| l.var))
            .collect()
    }
}

/// A DNF formula: a disjunction of and-clauses over variables `0..num_vars`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct DnfFormula {
    /// Number of variables.
    pub num_vars: usize,
    /// The conjunctive clauses (disjuncts).
    pub clauses: Vec<Clause>,
}

impl DnfFormula {
    /// Build a formula.
    pub fn new(num_vars: usize, clauses: impl IntoIterator<Item = Clause>) -> Self {
        DnfFormula {
            num_vars,
            clauses: clauses.into_iter().collect(),
        }
    }

    /// Evaluate under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .any(|c| c.literals().iter().all(|l| l.eval(assignment)))
    }

    /// Is the formula a tautology?  A DNF φ is a tautology iff ¬φ (a CNF) is unsatisfiable.
    pub fn is_tautology(&self) -> bool {
        let negated = CnfFormula::new(
            self.num_vars,
            self.clauses
                .iter()
                .map(|c| Clause::new(c.literals().iter().map(|l| l.negated()))),
        );
        !negated.solve().is_sat()
    }

    /// The paper's Fig. 5 example 3DNF formula (5 clauses over x₁…x₅, stored 0-based).
    pub fn paper_fig5() -> DnfFormula {
        let c = |lits: [(usize, bool); 3]| {
            Clause::new(lits.iter().map(|&(v, s)| Literal {
                var: v,
                positive: s,
            }))
        };
        DnfFormula::new(
            5,
            [
                c([(0, true), (1, true), (2, true)]),
                c([(0, true), (1, false), (3, true)]),
                c([(0, true), (3, true), (4, true)]),
                c([(1, true), (0, false), (4, true)]),
                c([(0, false), (1, false), (4, false)]),
            ],
        )
    }
}

/// The paper's Fig. 5 example 3CNF formula (the dual reading of the same clause list).
pub fn paper_fig5_cnf() -> CnfFormula {
    let c = |lits: [(usize, bool); 3]| {
        Clause::new(lits.iter().map(|&(v, s)| Literal {
            var: v,
            positive: s,
        }))
    };
    CnfFormula::new(
        5,
        [
            c([(0, true), (1, true), (2, true)]),
            c([(0, true), (1, false), (3, true)]),
            c([(0, true), (3, true), (4, true)]),
            c([(1, true), (0, false), (4, true)]),
            c([(0, false), (1, false), (4, false)]),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, s: bool) -> Literal {
        Literal {
            var: v,
            positive: s,
        }
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let sat = CnfFormula::new(1, [Clause::new([lit(0, true)])]);
        assert!(sat.solve().is_sat());
        let unsat = CnfFormula::new(
            1,
            [Clause::new([lit(0, true)]), Clause::new([lit(0, false)])],
        );
        assert_eq!(unsat.solve(), SatResult::Unsatisfiable);
        let empty_clause = CnfFormula::new(1, [Clause::new([])]);
        assert!(!empty_clause.solve().is_sat());
        let empty_formula = CnfFormula::new(0, []);
        assert!(empty_formula.solve().is_sat());
    }

    #[test]
    fn solver_agrees_with_enumeration_on_small_formulas() {
        // A pigeonhole-ish formula: 3 vars, at least one true, at most one true pairwise.
        let f = CnfFormula::new(
            3,
            [
                Clause::new([lit(0, true), lit(1, true), lit(2, true)]),
                Clause::new([lit(0, false), lit(1, false)]),
                Clause::new([lit(0, false), lit(2, false)]),
                Clause::new([lit(1, false), lit(2, false)]),
            ],
        );
        assert_eq!(f.count_models(), 3);
        let res = f.solve();
        assert!(res.is_sat());
        assert!(f.eval(res.assignment().unwrap()));
    }

    #[test]
    fn unsat_formula_with_all_sign_patterns() {
        // (x∨y)(x∨¬y)(¬x∨y)(¬x∨¬y) is unsatisfiable.
        let f = CnfFormula::new(
            2,
            [
                Clause::new([lit(0, true), lit(1, true)]),
                Clause::new([lit(0, true), lit(1, false)]),
                Clause::new([lit(0, false), lit(1, true)]),
                Clause::new([lit(0, false), lit(1, false)]),
            ],
        );
        assert!(!f.solve().is_sat());
        assert_eq!(f.count_models(), 0);
        assert_eq!(f.used_variables().len(), 2);
    }

    #[test]
    fn dnf_tautology_detection() {
        // x ∨ ¬x is a tautology.
        let taut = DnfFormula::new(
            1,
            [Clause::new([lit(0, true)]), Clause::new([lit(0, false)])],
        );
        assert!(taut.is_tautology());
        // A single conjunction is not (for ≥1 variable).
        let not_taut = DnfFormula::new(2, [Clause::new([lit(0, true), lit(1, false)])]);
        assert!(!not_taut.is_tautology());
        assert!(not_taut.eval(&[true, false]));
        assert!(!not_taut.eval(&[true, true]));
    }

    #[test]
    fn paper_fig5_formulas() {
        let dnf = DnfFormula::paper_fig5();
        assert_eq!(dnf.clauses.len(), 5);
        assert!(!dnf.is_tautology(), "the Fig. 5 DNF is not a tautology (e.g. all-false kills every clause except the last, which needs x5 false … check one witness)");
        // Witness: x0=false, x1=true, x4=true falsifies clauses 1,2,3,5 and clause 4 needs ¬x0 ∧ x1 ∧ x4 — actually satisfied.
        // Use a genuinely falsifying assignment: x0=false, x1=true, x2=false, x3=false, x4=false.
        assert!(!dnf.eval(&[false, true, false, false, false]));
        let cnf = paper_fig5_cnf();
        assert!(cnf.solve().is_sat());
    }

    #[test]
    fn literal_negation_round_trips() {
        let l = lit(3, true);
        assert_eq!(l.negated().negated(), l);
        assert_eq!(l.to_string(), "x3");
        assert_eq!(l.negated().to_string(), "¬x3");
    }
}
