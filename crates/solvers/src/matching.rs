//! Maximum bipartite matching (Hopcroft–Karp).
//!
//! Theorem 3.1(1) reduces membership for Codd-tables to maximum-cardinality bipartite
//! matching: left vertices are the instance facts, right vertices the table rows, and an
//! edge means the row can be instantiated to the fact.  Hopcroft–Karp runs in
//! `O(E · √V)`, keeping the whole membership test polynomial.

use std::collections::VecDeque;

/// A bipartite graph with `left` and `right` vertex sets, represented by the adjacency
/// lists of the left vertices.
#[derive(Clone, Debug, Default)]
pub struct BipartiteGraph {
    left: usize,
    right: usize,
    adj: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// Create a graph with the given part sizes and no edges.
    pub fn new(left: usize, right: usize) -> Self {
        BipartiteGraph {
            left,
            right,
            adj: vec![Vec::new(); left],
        }
    }

    /// Number of left vertices.
    pub fn left_count(&self) -> usize {
        self.left
    }

    /// Number of right vertices.
    pub fn right_count(&self) -> usize {
        self.right
    }

    /// Add an edge between left vertex `l` and right vertex `r`.
    ///
    /// # Panics
    /// Panics when an endpoint is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.left, "left vertex out of range");
        assert!(r < self.right, "right vertex out of range");
        self.adj[l].push(r);
    }

    /// Neighbours of a left vertex.
    pub fn neighbors(&self, l: usize) -> &[usize] {
        &self.adj[l]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }
}

/// The result of a maximum matching computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// For each left vertex, the matched right vertex (if any).
    pub pair_left: Vec<Option<usize>>,
    /// For each right vertex, the matched left vertex (if any).
    pub pair_right: Vec<Option<usize>>,
}

impl Matching {
    /// The matching cardinality.
    pub fn cardinality(&self) -> usize {
        self.pair_left.iter().filter(|p| p.is_some()).count()
    }

    /// Whether every left vertex is matched.
    pub fn saturates_left(&self) -> bool {
        self.pair_left.iter().all(Option::is_some)
    }
}

/// Compute a maximum-cardinality matching with the Hopcroft–Karp algorithm.
pub fn maximum_matching(g: &BipartiteGraph) -> Matching {
    const INF: u32 = u32::MAX;
    let n = g.left;
    let mut pair_left: Vec<Option<usize>> = vec![None; g.left];
    let mut pair_right: Vec<Option<usize>> = vec![None; g.right];
    let mut dist: Vec<u32> = vec![INF; g.left];

    // BFS phase: layer the graph from unmatched left vertices; returns true when an
    // augmenting path exists.
    fn bfs(
        g: &BipartiteGraph,
        pair_left: &[Option<usize>],
        pair_right: &[Option<usize>],
        dist: &mut [u32],
    ) -> bool {
        let mut queue = VecDeque::new();
        for l in 0..g.left {
            if pair_left[l].is_none() {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found = false;
        while let Some(l) = queue.pop_front() {
            for &r in &g.adj[l] {
                match pair_right[r] {
                    None => found = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push_back(l2);
                        }
                    }
                }
            }
        }
        found
    }

    // DFS phase: find augmenting paths along the BFS layering.
    fn dfs(
        g: &BipartiteGraph,
        l: usize,
        pair_left: &mut [Option<usize>],
        pair_right: &mut [Option<usize>],
        dist: &mut [u32],
    ) -> bool {
        for i in 0..g.adj[l].len() {
            let r = g.adj[l][i];
            let ok = match pair_right[r] {
                None => true,
                Some(l2) => {
                    dist[l2] == dist[l].saturating_add(1) && dfs(g, l2, pair_left, pair_right, dist)
                }
            };
            if ok {
                pair_left[l] = Some(r);
                pair_right[r] = Some(l);
                return true;
            }
        }
        dist[l] = INF;
        false
    }

    while bfs(g, &pair_left, &pair_right, &mut dist) {
        for l in 0..n {
            if pair_left[l].is_none() {
                dfs(g, l, &mut pair_left, &mut pair_right, &mut dist);
            }
        }
    }

    Matching {
        pair_left,
        pair_right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_identity_graph() {
        let mut g = BipartiteGraph::new(4, 4);
        for i in 0..4 {
            g.add_edge(i, i);
        }
        let m = maximum_matching(&g);
        assert_eq!(m.cardinality(), 4);
        assert!(m.saturates_left());
    }

    #[test]
    fn matching_respects_bottlenecks() {
        // Three left vertices all only adjacent to right vertex 0.
        let mut g = BipartiteGraph::new(3, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(2, 0);
        g.add_edge(2, 1);
        let m = maximum_matching(&g);
        assert_eq!(m.cardinality(), 2);
        assert!(!m.saturates_left());
    }

    #[test]
    fn augmenting_paths_are_found() {
        // A graph where a greedy assignment can get stuck but an augmenting path fixes it:
        // 0-{0}, 1-{0,1}, 2-{1,2}
        let mut g = BipartiteGraph::new(3, 3);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        g.add_edge(2, 1);
        g.add_edge(2, 2);
        let m = maximum_matching(&g);
        assert_eq!(m.cardinality(), 3);
    }

    #[test]
    fn empty_graph_has_empty_matching() {
        let g = BipartiteGraph::new(3, 3);
        let m = maximum_matching(&g);
        assert_eq!(m.cardinality(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn large_crown_graph_matches_fully() {
        // K_{n,n} minus the identity still has a perfect matching for n ≥ 2.
        let n = 50;
        let mut g = BipartiteGraph::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    g.add_edge(i, j);
                }
            }
        }
        let m = maximum_matching(&g);
        assert_eq!(m.cardinality(), n);
        // Consistency of the two directions of the matching.
        for (l, r) in m.pair_left.iter().enumerate() {
            if let Some(r) = r {
                assert_eq!(m.pair_right[*r], Some(l));
            }
        }
    }
}
