//! # `pw-solvers` — combinatorial solvers used by the upper bounds and the reductions
//!
//! The paper's results lean on a handful of classic combinatorial problems:
//!
//! * **maximum bipartite matching** — the PTIME membership algorithm for Codd-tables
//!   (Theorem 3.1(1)) reduces membership to finding a maximum matching; we implement
//!   Hopcroft–Karp ([`matching`]);
//! * **graph 3-colourability** — the NP-hard source problem for the membership and
//!   uniqueness lower bounds (Theorems 3.1(2–4), 3.2(4)); [`coloring`] provides a
//!   backtracking k-colouring solver used to generate labelled workloads and to
//!   cross-validate the reductions;
//! * **3CNF satisfiability and 3DNF tautology** — source problems for the possibility and
//!   certainty lower bounds (Theorems 5.1–5.3); [`sat`] provides CNF/DNF types and a DPLL
//!   solver;
//! * **∀∃3CNF** — the Π₂ᵖ-complete source problem for the containment lower bounds
//!   (Theorem 4.2); [`qbf`] decides it by enumerating universal assignments with the SAT
//!   solver as oracle.
//!
//! These solvers are exact and exponential in the worst case (except matching); they are
//! used on the *source* side of reductions — to label small instances with ground truth —
//! and inside the PTIME membership algorithm (matching only).

#![warn(missing_docs)]

pub mod coloring;
pub mod graph;
pub mod matching;
pub mod qbf;
pub mod sat;

pub use coloring::color_graph;
pub use graph::Graph;
pub use matching::{maximum_matching, BipartiteGraph};
pub use qbf::{decide_forall_exists, ForallExists3Cnf};
pub use sat::{paper_fig5_cnf, Clause, CnfFormula, DnfFormula, Literal, SatResult};
