//! A small union–find (disjoint set) structure over [`Term`]s, with an undo trail.
//!
//! Conjunction satisfiability (Section 2.2: "this can be checked in PTIME because a global
//! condition is a conjunction") reduces to:
//!
//! 1. union the two sides of every equality atom,
//! 2. fail if two *distinct constants* end up in the same class,
//! 3. fail if an inequality atom has both sides in the same class.
//!
//! The structure interns terms on demand; constants in the same class are detected by
//! storing, per class root, the unique constant (if any) known to belong to the class.
//!
//! Every mutation (interning, path-compression writes, unions) is recorded on an **undo
//! trail** so that a search can fork the structure in O(1) with [`TermUnionFind::mark`] and
//! restore it with [`TermUnionFind::undo_to`] instead of cloning the whole store at every
//! choice point — the mechanism behind [`crate::ConstraintSet::checkpoint`] that the
//! parallel decision engine of `pw-decide` relies on.

use crate::Term;
use pw_relational::Sym;
use std::collections::HashMap;

/// One recorded mutation, undone in reverse order by [`TermUnionFind::undo_to`].
#[derive(Clone, Copy, Debug)]
enum TrailEntry {
    /// A term was interned (always the most recent node).
    Intern,
    /// `parent[node]` was overwritten (union or path compression).
    Parent { node: usize, old: usize },
    /// `rank[node]` was bumped by a union.
    Rank { node: usize, old: u8 },
    /// `constant[node]` was overwritten by a union.
    Constant { node: usize, old: Option<Sym> },
}

/// A position in the undo trail, as returned by [`TermUnionFind::mark`].
pub type UfMark = usize;

/// Union–find over interned terms with per-class constant tracking and an undo trail.
///
/// `Clone` copies the *state* but starts the clone with an **empty undo history**: marks
/// taken on the source do not apply to the clone.  This keeps cloning cheap for the
/// searches that fork a store per choice point without ever rolling it back (they would
/// otherwise drag an ever-growing trail through every clone of an exponential search).
#[derive(Debug, Default)]
pub struct TermUnionFind {
    index: HashMap<Term, usize>,
    /// The interned terms, indexed by node id (needed to unwind `index` on undo).
    terms: Vec<Term>,
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// For each node (valid at roots): the interned constant the class is bound to.
    constant: Vec<Option<Sym>>,
    trail: Vec<TrailEntry>,
}

impl Clone for TermUnionFind {
    fn clone(&self) -> Self {
        TermUnionFind {
            index: self.index.clone(),
            terms: self.terms.clone(),
            parent: self.parent.clone(),
            rank: self.rank.clone(),
            constant: self.constant.clone(),
            // A fresh history: the clone's first mark starts at zero.
            trail: Vec::new(),
        }
    }
}

impl TermUnionFind {
    /// Create an empty structure.
    pub fn new() -> Self {
        TermUnionFind::default()
    }

    /// The current undo-trail position.  All mutations made after a `mark` can be reverted
    /// with [`TermUnionFind::undo_to`], in LIFO order with respect to other marks.
    pub fn mark(&self) -> UfMark {
        self.trail.len()
    }

    /// Revert every mutation recorded after `mark`.
    ///
    /// Marks must be unwound in LIFO order; undoing to an *older* mark is fine (it simply
    /// discards the younger ones), but a mark taken before an `undo_to` that already passed
    /// it is no longer valid.
    pub fn undo_to(&mut self, mark: UfMark) {
        while self.trail.len() > mark {
            match self.trail.pop().expect("len checked") {
                TrailEntry::Intern => {
                    let term = self.terms.pop().expect("intern recorded");
                    self.index.remove(&term);
                    self.parent.pop();
                    self.rank.pop();
                    self.constant.pop();
                }
                TrailEntry::Parent { node, old } => self.parent[node] = old,
                TrailEntry::Rank { node, old } => self.rank[node] = old,
                TrailEntry::Constant { node, old } => self.constant[node] = old,
            }
        }
    }

    /// Intern a term, returning its node index.  Terms are `Copy` two-word values, so
    /// this allocates nothing beyond the amortised growth of the node vectors.
    pub fn intern(&mut self, t: Term) -> usize {
        if let Some(&i) = self.index.get(&t) {
            return i;
        }
        let i = self.parent.len();
        self.parent.push(i);
        self.rank.push(0);
        self.constant.push(t.as_sym());
        self.index.insert(t, i);
        self.terms.push(t);
        self.trail.push(TrailEntry::Intern);
        i
    }

    /// Find with (trail-recorded) path compression.
    pub fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            let grandparent = self.parent[self.parent[i]];
            if self.parent[i] != grandparent {
                self.trail.push(TrailEntry::Parent {
                    node: i,
                    old: self.parent[i],
                });
                self.parent[i] = grandparent;
            }
            i = grandparent;
        }
        i
    }

    /// Union the classes of two terms.  Returns `false` — meaning *inconsistent* — when the
    /// merge would identify two distinct constants.
    pub fn union_terms(&mut self, a: Term, b: Term) -> bool {
        let ia = self.intern(a);
        let ib = self.intern(b);
        self.union(ia, ib)
    }

    /// Union two interned nodes; `false` on constant clash.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        let merged_const = match (self.constant[ra], self.constant[rb]) {
            (Some(x), Some(y)) if x != y => return false,
            (Some(x), _) => Some(x),
            (_, Some(y)) => Some(y),
            (None, None) => None,
        };
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.trail.push(TrailEntry::Parent {
            node: lo,
            old: self.parent[lo],
        });
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.trail.push(TrailEntry::Rank {
                node: hi,
                old: self.rank[hi],
            });
            self.rank[hi] += 1;
        }
        if self.constant[hi] != merged_const {
            self.trail.push(TrailEntry::Constant {
                node: hi,
                old: self.constant[hi].take(),
            });
            self.constant[hi] = merged_const;
        }
        true
    }

    /// Are the two terms known to be in the same class?  (Terms never seen before are
    /// interned and therefore trivially in distinct singleton classes.)
    pub fn same_class(&mut self, a: Term, b: Term) -> bool {
        let ia = self.intern(a);
        let ib = self.intern(b);
        self.find(ia) == self.find(ib)
    }

    /// The interned constant the class of `t` is bound to, if any.
    pub fn constant_of(&mut self, t: Term) -> Option<Sym> {
        let i = self.intern(t);
        let r = self.find(i);
        self.constant[r]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Drop the undo history in place (all outstanding marks become invalid).  Rarely
    /// needed — `Clone` already starts clones with an empty history — but useful to
    /// release trail memory on a long-lived store between searches.
    pub fn forget_history(&mut self) {
        self.trail.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{VarGen, Variable};

    fn vars(n: usize) -> Vec<Variable> {
        let mut g = VarGen::new();
        (0..n).map(|_| g.fresh()).collect()
    }

    #[test]
    fn transitive_equality_is_detected() {
        let v = vars(3);
        let mut uf = TermUnionFind::new();
        assert!(uf.union_terms(Term::Var(v[0]), Term::Var(v[1])));
        assert!(uf.union_terms(Term::Var(v[1]), Term::Var(v[2])));
        assert!(uf.same_class(Term::Var(v[0]), Term::Var(v[2])));
        assert!(!uf.is_empty());
        assert_eq!(uf.len(), 3);
    }

    #[test]
    fn constant_clash_is_reported() {
        let v = vars(1);
        let mut uf = TermUnionFind::new();
        assert!(uf.union_terms(Term::Var(v[0]), Term::constant(1)));
        assert!(!uf.union_terms(Term::Var(v[0]), Term::constant(2)));
    }

    #[test]
    fn constant_of_propagates_through_unions() {
        let v = vars(2);
        let mut uf = TermUnionFind::new();
        uf.union_terms(Term::Var(v[0]), Term::Var(v[1]));
        assert_eq!(uf.constant_of(Term::Var(v[1])), None);
        uf.union_terms(Term::Var(v[0]), Term::constant(9));
        assert_eq!(uf.constant_of(Term::Var(v[1])), Some(Sym::Int(9)));
    }

    #[test]
    fn distinct_constants_live_in_distinct_classes() {
        let mut uf = TermUnionFind::new();
        assert!(!uf.same_class(Term::constant(1), Term::constant(2)));
        assert!(uf.same_class(Term::constant(1), Term::constant(1)));
    }

    #[test]
    fn undo_restores_classes_and_interning() {
        let v = vars(3);
        let mut uf = TermUnionFind::new();
        uf.union_terms(Term::Var(v[0]), Term::Var(v[1]));
        let mark = uf.mark();
        let len_before = uf.len();

        uf.union_terms(Term::Var(v[1]), Term::Var(v[2]));
        uf.union_terms(Term::Var(v[0]), Term::constant(4));
        assert!(uf.same_class(Term::Var(v[0]), Term::Var(v[2])));
        assert_eq!(uf.constant_of(Term::Var(v[2])), Some(Sym::Int(4)));

        uf.undo_to(mark);
        assert_eq!(uf.len(), len_before, "interned terms unwound");
        assert!(
            uf.same_class(Term::Var(v[0]), Term::Var(v[1])),
            "pre-mark state kept"
        );
        assert!(!uf.same_class(Term::Var(v[0]), Term::Var(v[2])));
        assert_eq!(uf.constant_of(Term::Var(v[0])), None);
    }

    #[test]
    fn undo_restores_after_failed_union() {
        let v = vars(1);
        let mut uf = TermUnionFind::new();
        let mark = uf.mark();
        assert!(uf.union_terms(Term::Var(v[0]), Term::constant(1)));
        assert!(!uf.union_terms(Term::Var(v[0]), Term::constant(2)));
        uf.undo_to(mark);
        assert!(
            uf.union_terms(Term::Var(v[0]), Term::constant(2)),
            "conflict unwound"
        );
    }

    #[test]
    fn clones_start_with_an_empty_history() {
        let v = vars(2);
        let mut uf = TermUnionFind::new();
        uf.union_terms(Term::Var(v[0]), Term::Var(v[1]));
        let mut clone = uf.clone();
        assert_eq!(clone.mark(), 0, "no inherited trail");
        assert!(
            clone.same_class(Term::Var(v[0]), Term::Var(v[1])),
            "state is copied"
        );
        // A source mark is meaningless on the clone: undoing to it is a no-op there.
        let m = clone.mark();
        clone.union_terms(Term::Var(v[0]), Term::constant(3));
        clone.undo_to(m);
        assert_eq!(clone.constant_of(Term::Var(v[1])), None);
        assert_eq!(uf.constant_of(Term::Var(v[1])), None, "source untouched");
    }

    #[test]
    fn nested_marks_unwind_in_lifo_order() {
        let v = vars(4);
        let mut uf = TermUnionFind::new();
        let outer = uf.mark();
        uf.union_terms(Term::Var(v[0]), Term::Var(v[1]));
        let inner = uf.mark();
        uf.union_terms(Term::Var(v[2]), Term::Var(v[3]));
        uf.undo_to(inner);
        assert!(!uf.same_class(Term::Var(v[2]), Term::Var(v[3])));
        assert!(uf.same_class(Term::Var(v[0]), Term::Var(v[1])));
        uf.undo_to(outer);
        assert!(uf.is_empty());
    }
}
