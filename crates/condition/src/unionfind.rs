//! A small union–find (disjoint set) structure over [`Term`]s.
//!
//! Conjunction satisfiability (Section 2.2: "this can be checked in PTIME because a global
//! condition is a conjunction") reduces to:
//!
//! 1. union the two sides of every equality atom,
//! 2. fail if two *distinct constants* end up in the same class,
//! 3. fail if an inequality atom has both sides in the same class.
//!
//! The structure interns terms on demand; constants in the same class are detected by
//! storing, per class root, the unique constant (if any) known to belong to the class.

use crate::Term;
use pw_relational::Constant;
use std::collections::HashMap;

/// Union–find over interned terms with per-class constant tracking.
#[derive(Clone, Debug, Default)]
pub struct TermUnionFind {
    index: HashMap<Term, usize>,
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// For each node (valid at roots): the constant this class is bound to, if any.
    constant: Vec<Option<Constant>>,
}

impl TermUnionFind {
    /// Create an empty structure.
    pub fn new() -> Self {
        TermUnionFind::default()
    }

    /// Intern a term, returning its node index.
    pub fn intern(&mut self, t: &Term) -> usize {
        if let Some(&i) = self.index.get(t) {
            return i;
        }
        let i = self.parent.len();
        self.parent.push(i);
        self.rank.push(0);
        self.constant.push(t.as_const().cloned());
        self.index.insert(t.clone(), i);
        i
    }

    /// Find with path compression.
    pub fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    /// Union the classes of two terms.  Returns `false` — meaning *inconsistent* — when the
    /// merge would identify two distinct constants.
    pub fn union_terms(&mut self, a: &Term, b: &Term) -> bool {
        let ia = self.intern(a);
        let ib = self.intern(b);
        self.union(ia, ib)
    }

    /// Union two interned nodes; `false` on constant clash.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        let merged_const = match (&self.constant[ra], &self.constant[rb]) {
            (Some(x), Some(y)) if x != y => return false,
            (Some(x), _) => Some(x.clone()),
            (_, Some(y)) => Some(y.clone()),
            (None, None) => None,
        };
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.constant[hi] = merged_const;
        true
    }

    /// Are the two terms known to be in the same class?  (Terms never seen before are
    /// interned and therefore trivially in distinct singleton classes.)
    pub fn same_class(&mut self, a: &Term, b: &Term) -> bool {
        let ia = self.intern(a);
        let ib = self.intern(b);
        self.find(ia) == self.find(ib)
    }

    /// The constant the class of `t` is bound to, if any.
    pub fn constant_of(&mut self, t: &Term) -> Option<Constant> {
        let i = self.intern(t);
        let r = self.find(i);
        self.constant[r].clone()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{VarGen, Variable};

    fn vars(n: usize) -> Vec<Variable> {
        let mut g = VarGen::new();
        (0..n).map(|_| g.fresh()).collect()
    }

    #[test]
    fn transitive_equality_is_detected() {
        let v = vars(3);
        let mut uf = TermUnionFind::new();
        assert!(uf.union_terms(&Term::Var(v[0]), &Term::Var(v[1])));
        assert!(uf.union_terms(&Term::Var(v[1]), &Term::Var(v[2])));
        assert!(uf.same_class(&Term::Var(v[0]), &Term::Var(v[2])));
        assert!(!uf.is_empty());
        assert_eq!(uf.len(), 3);
    }

    #[test]
    fn constant_clash_is_reported() {
        let v = vars(1);
        let mut uf = TermUnionFind::new();
        assert!(uf.union_terms(&Term::Var(v[0]), &Term::constant(1)));
        assert!(!uf.union_terms(&Term::Var(v[0]), &Term::constant(2)));
    }

    #[test]
    fn constant_of_propagates_through_unions() {
        let v = vars(2);
        let mut uf = TermUnionFind::new();
        uf.union_terms(&Term::Var(v[0]), &Term::Var(v[1]));
        assert_eq!(uf.constant_of(&Term::Var(v[1])), None);
        uf.union_terms(&Term::Var(v[0]), &Term::constant(9));
        assert_eq!(uf.constant_of(&Term::Var(v[1])), Some(Constant::int(9)));
    }

    #[test]
    fn distinct_constants_live_in_distinct_classes() {
        let mut uf = TermUnionFind::new();
        assert!(!uf.same_class(&Term::constant(1), &Term::constant(2)));
        assert!(uf.same_class(&Term::constant(1), &Term::constant(1)));
    }
}
