//! Condition atoms and conjunctions.

use crate::unionfind::TermUnionFind;
use crate::{Term, Variable};
use pw_relational::{Constant, Sym};
use std::collections::BTreeSet;
use std::fmt;

/// An equality or inequality atom over terms.
///
/// The paper's atoms are `x = y`, `x = c`, `x ≠ y`, `x ≠ c`; we allow constants on both
/// sides as well (`c = c'` is simply true or false), which makes substitution closed.
///
/// Atoms are `Copy` (two two-word terms plus a tag): building and rewriting conditions
/// moves values instead of cloning heap allocations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Atom {
    /// The two terms must be equal.
    Eq(Term, Term),
    /// The two terms must differ.
    Neq(Term, Term),
}

impl Atom {
    /// `x = y` style constructor accepting anything convertible into terms.
    pub fn eq(a: impl Into<Term>, b: impl Into<Term>) -> Atom {
        Atom::Eq(a.into(), b.into())
    }

    /// `x ≠ y` style constructor.
    pub fn neq(a: impl Into<Term>, b: impl Into<Term>) -> Atom {
        Atom::Neq(a.into(), b.into())
    }

    /// The always-true atom, encoded as the paper suggests (`x = x`, here `0 = 0`).
    pub fn truth() -> Atom {
        Atom::Eq(Term::constant(0), Term::constant(0))
    }

    /// The always-false atom (`x ≠ x`, here `0 ≠ 0`).
    pub fn falsity() -> Atom {
        Atom::Neq(Term::constant(0), Term::constant(0))
    }

    /// The two operand terms.
    pub fn terms(self) -> (Term, Term) {
        match self {
            Atom::Eq(a, b) | Atom::Neq(a, b) => (a, b),
        }
    }

    /// Is this an equality atom?
    pub fn is_equality(self) -> bool {
        matches!(self, Atom::Eq(..))
    }

    /// Variables mentioned by the atom.
    pub fn variables(self) -> impl Iterator<Item = Variable> {
        let (a, b) = self.terms();
        a.as_var().into_iter().chain(b.as_var())
    }

    /// Evaluate under a *total* assignment of interned constants to the atom's variables.
    /// Returns `None` if some variable is unassigned.
    pub fn eval(self, lookup: &impl Fn(Variable) -> Option<Sym>) -> Option<bool> {
        let value = |t: Term| -> Option<Sym> {
            match t {
                Term::Const(c) => Some(c),
                Term::Var(v) => lookup(v),
            }
        };
        let (a, b) = self.terms();
        let (va, vb) = (value(a)?, value(b)?);
        Some(match self {
            Atom::Eq(..) => va == vb,
            Atom::Neq(..) => va != vb,
        })
    }

    /// Replace variable `v` by `t` in both operands.
    pub fn substitute(self, v: Variable, t: Term) -> Atom {
        match self {
            Atom::Eq(a, b) => Atom::Eq(a.substitute(v, t), b.substitute(v, t)),
            Atom::Neq(a, b) => Atom::Neq(a.substitute(v, t), b.substitute(v, t)),
        }
    }

    /// Trivial truth value, when decidable without knowing variable values:
    /// `Some(true)` / `Some(false)` for ground or reflexive atoms, `None` otherwise.
    pub fn trivial_value(self) -> Option<bool> {
        let (a, b) = self.terms();
        match (a, b) {
            (Term::Const(x), Term::Const(y)) => Some(match self {
                Atom::Eq(..) => x == y,
                Atom::Neq(..) => x != y,
            }),
            _ if a == b => Some(self.is_equality()),
            _ => None,
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Eq(a, b) => write!(f, "{a} = {b}"),
            Atom::Neq(a, b) => write!(f, "{a} ≠ {b}"),
        }
    }
}

/// A conjunction of atoms — the only connective the paper's conditions use.
///
/// The empty conjunction is *true*.  Atoms are `Copy`, so cloning a conjunction is a
/// single flat memcpy and hashing never touches a string — `SatCache` keys hash ids.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Conjunction {
    atoms: Vec<Atom>,
}

impl Conjunction {
    /// The empty (true) conjunction.
    pub fn truth() -> Self {
        Conjunction::default()
    }

    /// A conjunction that is unsatisfiable.
    pub fn falsity() -> Self {
        Conjunction {
            atoms: vec![Atom::falsity()],
        }
    }

    /// Build from atoms.
    pub fn new(atoms: impl IntoIterator<Item = Atom>) -> Self {
        Conjunction {
            atoms: atoms.into_iter().collect(),
        }
    }

    /// Build a conjunction with a single atom.
    pub fn single(atom: Atom) -> Self {
        Conjunction { atoms: vec![atom] }
    }

    /// The atoms, in insertion order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether this is the empty (true) conjunction.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Append an atom.
    pub fn push(&mut self, atom: Atom) {
        self.atoms.push(atom);
    }

    /// Conjoin with another conjunction.
    pub fn and(&self, other: &Conjunction) -> Conjunction {
        let mut atoms = self.atoms.clone();
        atoms.extend_from_slice(&other.atoms);
        Conjunction { atoms }
    }

    /// All variables mentioned.
    pub fn variables(&self) -> BTreeSet<Variable> {
        self.atoms.iter().flat_map(|a| a.variables()).collect()
    }

    /// All interned constants mentioned.
    pub fn syms(&self) -> BTreeSet<Sym> {
        self.atoms
            .iter()
            .flat_map(|a| {
                let (x, y) = a.terms();
                x.as_sym().into_iter().chain(y.as_sym())
            })
            .collect()
    }

    /// All constants mentioned, resolved through the global symbol table (boundary use).
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.syms().into_iter().map(Sym::constant).collect()
    }

    /// Whether the conjunction contains only equality atoms (e-table global condition).
    pub fn is_equalities_only(&self) -> bool {
        self.atoms.iter().all(|a| a.is_equality())
    }

    /// Whether the conjunction contains only inequality atoms (i-table global condition).
    pub fn is_inequalities_only(&self) -> bool {
        self.atoms.iter().all(|a| !a.is_equality())
    }

    /// PTIME satisfiability (union–find over equalities, then inequality checks).
    pub fn is_satisfiable(&self) -> bool {
        let mut uf = TermUnionFind::new();
        for atom in &self.atoms {
            if let Atom::Eq(a, b) = atom {
                if !uf.union_terms(*a, *b) {
                    return false;
                }
            }
        }
        for atom in &self.atoms {
            if let Atom::Neq(a, b) = atom {
                if uf.same_class(*a, *b) {
                    return false;
                }
                // Two classes bound to the same constant are also equal.
                if let (Some(ca), Some(cb)) = (uf.constant_of(*a), uf.constant_of(*b)) {
                    if ca == cb {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Evaluate under a total assignment; `None` if a variable is unassigned.
    pub fn eval(&self, lookup: &impl Fn(Variable) -> Option<Sym>) -> Option<bool> {
        let mut all = true;
        for atom in &self.atoms {
            match atom.eval(lookup) {
                Some(true) => {}
                Some(false) => all = false,
                None => return None,
            }
        }
        Some(all)
    }

    /// Replace variable `v` by term `t` everywhere.
    pub fn substitute(&self, v: Variable, t: Term) -> Conjunction {
        Conjunction {
            atoms: self.atoms.iter().map(|a| a.substitute(v, t)).collect(),
        }
    }

    /// The interned constant each variable is *forced* to equal by this conjunction, if
    /// any.
    ///
    /// Used by the g-table uniqueness algorithm of Theorem 3.2(1): "if it follows from the
    /// global condition that a variable equals a constant, then the variable is replaced by
    /// that constant".  Returns `None` if the conjunction is unsatisfiable.
    pub fn forced_constants(&self) -> Option<Vec<(Variable, Sym)>> {
        if !self.is_satisfiable() {
            return None;
        }
        let mut uf = TermUnionFind::new();
        for atom in &self.atoms {
            if let Atom::Eq(a, b) = atom {
                // Satisfiability above guarantees these unions succeed.
                uf.union_terms(*a, *b);
            }
        }
        let mut out = Vec::new();
        for v in self.variables() {
            if let Some(c) = uf.constant_of(Term::Var(v)) {
                out.push((v, c));
            }
        }
        Some(out)
    }

    /// Does this conjunction logically imply `other`?
    ///
    /// Sound and complete for the equality fragment (an implied equality must follow from
    /// the union–find closure); an inequality is implied when its two sides are forced to
    /// distinct constants or when the conjunction is unsatisfiable.  This is sufficient for
    /// the normalisation performed by the decision procedures; it is *not* used where full
    /// inequality reasoning would be needed.
    pub fn implies(&self, other: &Conjunction) -> bool {
        if !self.is_satisfiable() {
            return true;
        }
        let mut uf = TermUnionFind::new();
        for atom in &self.atoms {
            if let Atom::Eq(a, b) = atom {
                uf.union_terms(*a, *b);
            }
        }
        for atom in &other.atoms {
            let (a, b) = atom.terms();
            match atom {
                Atom::Eq(..) => {
                    if !uf.same_class(a, b) {
                        return false;
                    }
                }
                Atom::Neq(..) => {
                    // Implied if terms are bound to distinct constants, or if conjoining the
                    // equality a = b with self is unsatisfiable.
                    let with_eq = self.and(&Conjunction::single(Atom::Eq(a, b)));
                    if with_eq.is_satisfiable() {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl FromIterator<Atom> for Conjunction {
    fn from_iter<T: IntoIterator<Item = Atom>>(iter: T) -> Self {
        Conjunction::new(iter)
    }
}

impl fmt::Debug for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarGen;

    #[test]
    fn satisfiability_of_pure_equalities() {
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        let c = Conjunction::new([Atom::eq(x, y), Atom::eq(y, z), Atom::eq(z, 5)]);
        assert!(c.is_satisfiable());
        let c2 = c.and(&Conjunction::single(Atom::eq(x, 6)));
        assert!(!c2.is_satisfiable(), "x forced to both 5 and 6");
    }

    #[test]
    fn satisfiability_with_inequalities() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        assert!(Conjunction::new([Atom::neq(x, y)]).is_satisfiable());
        assert!(!Conjunction::new([Atom::eq(x, y), Atom::neq(x, y)]).is_satisfiable());
        assert!(
            !Conjunction::new([Atom::eq(x, 1), Atom::eq(y, 1), Atom::neq(x, y)]).is_satisfiable()
        );
        assert!(
            Conjunction::new([Atom::eq(x, 1), Atom::eq(y, 2), Atom::neq(x, y)]).is_satisfiable()
        );
        assert!(!Conjunction::new([Atom::neq(x, x)]).is_satisfiable());
    }

    #[test]
    fn string_constants_behave_like_integers() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        assert!(
            !Conjunction::new([Atom::eq(x, "alice"), Atom::eq(y, "bob"), Atom::eq(x, y)])
                .is_satisfiable()
        );
        assert!(
            Conjunction::new([Atom::eq(x, "alice"), Atom::eq(y, "alice"), Atom::eq(x, y)])
                .is_satisfiable()
        );
    }

    #[test]
    fn truth_and_falsity() {
        assert!(Conjunction::truth().is_satisfiable());
        assert!(Conjunction::truth().is_empty());
        assert!(!Conjunction::falsity().is_satisfiable());
        assert_eq!(Atom::truth().trivial_value(), Some(true));
        assert_eq!(Atom::falsity().trivial_value(), Some(false));
    }

    #[test]
    fn eval_under_total_assignment() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let c = Conjunction::new([Atom::eq(x, 1), Atom::neq(x, y)]);
        let lookup = |v: Variable| -> Option<Sym> {
            if v == x {
                Some(Sym::Int(1))
            } else if v == y {
                Some(Sym::Int(2))
            } else {
                None
            }
        };
        assert_eq!(c.eval(&lookup), Some(true));
        let lookup_bad = |v: Variable| -> Option<Sym> {
            if v == x || v == y {
                Some(Sym::Int(1))
            } else {
                None
            }
        };
        assert_eq!(c.eval(&lookup_bad), Some(false));
        let partial = |v: Variable| -> Option<Sym> {
            if v == x {
                Some(Sym::Int(1))
            } else {
                None
            }
        };
        assert_eq!(c.eval(&partial), None);
    }

    #[test]
    fn forced_constants_follow_equality_chains() {
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        let c = Conjunction::new([Atom::eq(x, y), Atom::eq(y, 3), Atom::neq(z, 1)]);
        let forced = c.forced_constants().unwrap();
        assert!(forced.contains(&(x, Sym::Int(3))));
        assert!(forced.contains(&(y, Sym::Int(3))));
        assert!(!forced.iter().any(|(v, _)| *v == z));
        assert_eq!(Conjunction::falsity().forced_constants(), None);
    }

    #[test]
    fn implication() {
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        let c = Conjunction::new([Atom::eq(x, y), Atom::eq(y, z)]);
        assert!(c.implies(&Conjunction::single(Atom::eq(x, z))));
        assert!(!c.implies(&Conjunction::single(Atom::eq(x, 1))));
        let d = Conjunction::new([Atom::eq(x, 1), Atom::eq(y, 2)]);
        assert!(d.implies(&Conjunction::single(Atom::neq(x, y))));
        assert!(Conjunction::falsity().implies(&Conjunction::single(Atom::eq(x, 1))));
    }

    #[test]
    fn classification_helpers() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        assert!(Conjunction::new([Atom::eq(x, y)]).is_equalities_only());
        assert!(!Conjunction::new([Atom::eq(x, y)]).is_inequalities_only());
        assert!(Conjunction::new([Atom::neq(x, y)]).is_inequalities_only());
        assert!(Conjunction::truth().is_equalities_only());
        assert!(Conjunction::truth().is_inequalities_only());
    }

    #[test]
    fn substitution_and_display() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let c = Conjunction::new([Atom::eq(x, y)]);
        let c2 = c.substitute(x, Term::constant(7));
        assert_eq!(c2.atoms()[0], Atom::eq(7, y));
        assert!(c.to_string().contains('='));
        assert_eq!(Conjunction::truth().to_string(), "true");
        assert!(Conjunction::new([Atom::neq(x, y)])
            .to_string()
            .contains('≠'));
    }

    #[test]
    fn variables_and_constants_are_collected() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let c = Conjunction::new([Atom::eq(x, 3), Atom::neq(y, "a")]);
        assert_eq!(c.variables().len(), 2);
        assert_eq!(c.constants().len(), 2);
        assert!(c.constants().contains(&pw_relational::Constant::str("a")));
    }
}
