//! Memoized condition satisfiability over hash-consed conjunctions.
//!
//! Dispatch and preprocessing ask the same satisfiability questions over and over: every
//! decision on a database re-checks the global conditions, the batched front door of
//! `pw-decide` asks them once per request, and the c-table algebra checks each produced
//! row's condition.  A [`SatCache`] interns conjunctions (hash-consing: structurally equal
//! conjunctions share one `Arc` allocation) and memoizes [`Conjunction::is_satisfiable`]
//! on the interned keys, so each distinct condition is solved exactly once per cache
//! lifetime.
//!
//! The cache is `Sync` — a single instance is shared by all worker threads of the parallel
//! engine.  Contention is low because satisfiability is checked at dispatch time, not
//! inside the search hot loop (the searches use the incremental
//! [`crate::ConstraintSet`] there).

use crate::Conjunction;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Hit/miss counters of a [`SatCache`], for the benchmark harness and for tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the union–find satisfiability check.
    pub misses: u64,
    /// Number of distinct conjunctions interned.
    pub entries: usize,
}

/// An interning, memoizing satisfiability cache for [`Conjunction`]s.
#[derive(Debug, Default)]
pub struct SatCache {
    map: Mutex<HashMap<Arc<Conjunction>, bool>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SatCache {
    /// An empty cache.
    pub fn new() -> Self {
        SatCache::default()
    }

    /// The map guard, recovering from a poisoned lock: a panic elsewhere cannot leave
    /// the map logically inconsistent (every critical section is a single map
    /// operation), so entries computed before the panic stay usable.
    fn lock_map(&self) -> MutexGuard<'_, HashMap<Arc<Conjunction>, bool>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drop every interned conjunction for which `keep` returns false.  Engine-side
    /// cache hygiene: when a database version is retired after a delta, the
    /// conditions it no longer shares with the live version are purged so week-long
    /// sessions do not accumulate dead entries.
    pub fn retain(&self, mut keep: impl FnMut(&Conjunction) -> bool) {
        self.lock_map().retain(|cond, _| keep(cond));
    }

    /// Memoized satisfiability: equivalent to [`Conjunction::is_satisfiable`], but each
    /// distinct conjunction is solved at most once per cache (up to a benign race: two
    /// workers missing the same condition concurrently may both solve it — the lock is
    /// *not* held across the solve, so a miss never blocks unrelated lookups).
    pub fn is_satisfiable(&self, c: &Conjunction) -> bool {
        {
            let map = self.lock_map();
            // `Arc<Conjunction>: Borrow<Conjunction>`, so lookups need no allocation.
            if let Some(&sat) = map.get(c) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return sat;
            }
        }
        let sat = c.is_satisfiable();
        let mut map = self.lock_map();
        map.entry(Arc::new(c.clone())).or_insert(sat);
        self.misses.fetch_add(1, Ordering::Relaxed);
        sat
    }

    /// Intern a conjunction: returns the canonical shared allocation for this (structural)
    /// value, creating and solving it on first sight.  Callers that keep many copies of the
    /// same condition (e.g. a batch of requests against one database) can swap them for the
    /// interned `Arc` to deduplicate memory and make later cache lookups pointer-cheap.
    pub fn intern(&self, c: &Conjunction) -> Arc<Conjunction> {
        {
            let map = self.lock_map();
            if let Some((key, _)) = map.get_key_value(c) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(key);
            }
        }
        let sat = c.is_satisfiable();
        let mut map = self.lock_map();
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some((key, _)) = map.get_key_value(c) {
            return Arc::clone(key);
        }
        let key = Arc::new(c.clone());
        map.insert(Arc::clone(&key), sat);
        key
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let map = self.lock_map();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, VarGen};

    #[test]
    fn memoizes_and_counts() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let sat = Conjunction::new([Atom::eq(x, y), Atom::neq(x, 3)]);
        let unsat = Conjunction::new([Atom::eq(x, y), Atom::neq(x, y)]);
        let cache = SatCache::new();
        assert!(cache.is_satisfiable(&sat));
        assert!(!cache.is_satisfiable(&unsat));
        assert!(cache.is_satisfiable(&sat));
        assert!(cache.is_satisfiable(&sat.clone()));
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn interning_shares_allocations() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let c = Conjunction::single(Atom::eq(x, 1));
        let cache = SatCache::new();
        let a = cache.intern(&c);
        let b = cache.intern(&c.clone());
        assert!(
            Arc::ptr_eq(&a, &b),
            "structurally equal conjunctions are hash-consed"
        );
        assert!(cache.is_satisfiable(&c));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let cache = SatCache::new();
        std::thread::scope(|scope| {
            for i in 0..4 {
                let cache = &cache;
                let c = Conjunction::single(Atom::eq(x, i % 2));
                scope.spawn(move || assert!(cache.is_satisfiable(&c)));
            }
        });
        assert_eq!(cache.stats().entries, 2);
    }
}
