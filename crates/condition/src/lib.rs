//! # `pw-condition` — symbolic conditions over null values
//!
//! Section 2.2 of the paper augments tables with *conditions*: conjunctions of equality
//! atoms (`x = y`, `x = c`) and inequality atoms (`x ≠ y`, `x ≠ c`) over variables (nulls)
//! and constants.  Conditions appear in two places:
//!
//! * a **global condition** φ_T attached to a whole table (g-/i-/e-tables), and
//! * a **local condition** φ_t attached to each tuple of a c-table.
//!
//! This crate provides:
//!
//! * [`Variable`]s and [`Term`]s (variable or constant),
//! * [`Atom`]s and [`Conjunction`]s with PTIME satisfiability ([`Conjunction::is_satisfiable`])
//!   via union–find — exactly the check the paper notes "can be done in PTIME because a
//!   global condition is a conjunction",
//! * [`BoolExpr`] — positive boolean combinations of atoms with conversion to disjunctive
//!   normal form, needed by the uniqueness algorithm of Theorem 3.2(2) (step (c)) and by the
//!   c-table algebra, and
//! * [`ConstraintSet`] — an incremental union–find based constraint store used by the
//!   backtracking decision procedures of `pw-decide` (partial valuations with equality
//!   propagation and inequality checking), forkable in O(1) via
//!   [`ConstraintSet::checkpoint`] / [`ConstraintSet::rollback`] (an undo trail), and
//! * [`SatCache`] — a hash-consing, memoizing satisfiability cache shared by the parallel
//!   decision engine of `pw-decide`.

#![warn(missing_docs)]

pub mod atom;
pub mod boolexpr;
pub mod cache;
pub mod solve;
pub mod term;
pub mod unionfind;
pub mod variable;

pub use atom::{Atom, Conjunction};
pub use boolexpr::BoolExpr;
pub use cache::{CacheStats, SatCache};
pub use solve::{Checkpoint, ConstraintSet};
pub use term::Term;
pub use variable::{VarGen, Variable};
