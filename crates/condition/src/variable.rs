//! Variables (null values) and variable generators.
//!
//! The paper assumes a set of variables 𝒱 disjoint from the constants.  A variable is
//! identified by a numeric id; a human-readable name can be attached for display (the
//! paper's tables use names like `x`, `y`, `z`, `x_a`).  Identity — and therefore equality,
//! hashing and ordering — is by id only, so renaming a variable for display never changes
//! the semantics of a table.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// A null value: a variable drawn from the countable set 𝒱.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub u32);

impl Variable {
    /// Numeric identifier.
    pub const fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A generator of fresh variables with optional display names.
///
/// Each `VarGen` hands out globally unique ids (process-wide), so variables created by
/// different generators never collide — this gives "the sets of variables appearing in each
/// table are pairwise disjoint" (Section 2.2) for free as long as distinct tables use
/// distinct generators or a shared one.
#[derive(Debug, Default)]
pub struct VarGen {
    names: BTreeMap<Variable, String>,
}

static NEXT_VAR_ID: AtomicU32 = AtomicU32::new(0);

impl VarGen {
    /// Create a fresh generator.
    pub fn new() -> Self {
        VarGen::default()
    }

    /// Allocate a fresh anonymous variable.
    pub fn fresh(&mut self) -> Variable {
        Variable(NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocate a fresh variable and remember a display name for it.
    pub fn named(&mut self, name: impl Into<String>) -> Variable {
        let v = self.fresh();
        self.names.insert(v, name.into());
        v
    }

    /// The display name previously attached to `v`, if any.
    pub fn name_of(&self, v: Variable) -> Option<&str> {
        self.names.get(&v).map(String::as_str)
    }

    /// Render a variable: its attached name if known, `x<id>` otherwise.
    pub fn display(&self, v: Variable) -> String {
        self.name_of(v).map_or_else(|| v.to_string(), str::to_owned)
    }

    /// Number of named variables tracked by this generator.
    pub fn named_count(&self) -> usize {
        self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_variables_are_distinct() {
        let mut g = VarGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        let mut g2 = VarGen::new();
        let c = g2.fresh();
        assert_ne!(a, c, "ids are unique across generators");
        assert_ne!(b, c);
    }

    #[test]
    fn named_variables_remember_their_names() {
        let mut g = VarGen::new();
        let x = g.named("x_a");
        let y = g.fresh();
        assert_eq!(g.name_of(x), Some("x_a"));
        assert_eq!(g.name_of(y), None);
        assert_eq!(g.display(x), "x_a");
        assert_eq!(g.display(y), format!("x{}", y.id()));
        assert_eq!(g.named_count(), 1);
    }

    #[test]
    fn ordering_is_by_id() {
        let mut g = VarGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert!(a < b);
    }
}
