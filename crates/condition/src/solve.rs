//! Incremental constraint store for partial valuations.
//!
//! The backtracking decision procedures of `pw-decide` build a valuation piece by piece:
//! "this table row maps onto that instance fact" induces a batch of equalities between the
//! row's terms and the fact's constants; global and local conditions add further equalities
//! and inequalities.  [`ConstraintSet`] maintains the conjunction collected so far and
//! answers consistency queries in (amortised) near-linear time.
//!
//! Everything inside the store is interned: terms are `Copy` two-word values and
//! constants are [`Sym`] ids, so asserting, checkpointing and rolling back allocate
//! nothing beyond the amortised growth of the trail vectors.
//!
//! Searches fork the store at choice points.  Two mechanisms are offered:
//!
//! * [`ConstraintSet::checkpoint`] / [`ConstraintSet::rollback`] — an **undo trail**: O(1)
//!   to fork, O(mutations-since-fork) to restore.  This is what the depth-first searches of
//!   `pw-decide` use on their hot path.
//! * `Clone` — a full copy of the *state* with an **empty undo history** (checkpoints from
//!   the source do not transfer), used when a search node is shipped to another thread by
//!   the parallel engine and by the legacy clone-per-choice-point searches, which never
//!   roll back and must not pay for the trail.

use crate::unionfind::{TermUnionFind, UfMark};
use crate::{Atom, Conjunction, Term, Variable};
use pw_relational::{Constant, Sym};
use std::collections::BTreeSet;

/// A set of equality/inequality constraints with incremental consistency checking.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSet {
    uf: TermUnionFind,
    /// Inequality constraints recorded so far (checked on every mutation).
    disequalities: Vec<(Term, Term)>,
    /// Whether an inconsistency has already been detected.
    contradictory: bool,
}

/// A restore point for a [`ConstraintSet`], produced by [`ConstraintSet::checkpoint`].
///
/// Checkpoints must be rolled back in LIFO order (innermost first), exactly like the
/// choice points of a backtracking search.
#[derive(Clone, Copy, Debug)]
pub struct Checkpoint {
    uf_mark: UfMark,
    diseq_len: usize,
    contradictory: bool,
}

impl ConstraintSet {
    /// An empty, consistent store.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Record a restore point.  O(1).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            uf_mark: self.uf.mark(),
            diseq_len: self.disequalities.len(),
            contradictory: self.contradictory,
        }
    }

    /// Restore the store to the state it had when `cp` was taken, undoing every assertion
    /// (and every internal path-compression write) made since.  Cost is proportional to the
    /// number of mutations being undone, not to the size of the store.
    pub fn rollback(&mut self, cp: Checkpoint) {
        self.uf.undo_to(cp.uf_mark);
        self.disequalities.truncate(cp.diseq_len);
        self.contradictory = cp.contradictory;
    }

    /// Drop the undo history accumulated so far; all outstanding [`Checkpoint`]s become
    /// invalid.  Clones already start with an empty history — this is for releasing trail
    /// memory on a long-lived store between searches.
    pub fn forget_history(&mut self) {
        self.uf.forget_history();
    }

    /// Whether the constraints collected so far are consistent.
    ///
    /// Consistency here means: no equality chain identifies two distinct constants and no
    /// recorded inequality has both sides in the same equality class.  For conjunctions of
    /// equality/inequality atoms over an infinite domain this is exactly satisfiability.
    pub fn is_consistent(&mut self) -> bool {
        if self.contradictory {
            return false;
        }
        // Re-validate disequalities against the current classes.
        for i in 0..self.disequalities.len() {
            let (a, b) = self.disequalities[i];
            if self.uf.same_class(a, b) {
                self.contradictory = true;
                return false;
            }
            if let (Some(ca), Some(cb)) = (self.uf.constant_of(a), self.uf.constant_of(b)) {
                if ca == cb {
                    self.contradictory = true;
                    return false;
                }
            }
        }
        true
    }

    /// Assert `a = b`.  Returns the new consistency status.
    pub fn assert_eq(&mut self, a: Term, b: Term) -> bool {
        if self.contradictory {
            return false;
        }
        if !self.uf.union_terms(a, b) {
            self.contradictory = true;
            return false;
        }
        self.is_consistent()
    }

    /// Assert `a ≠ b`.  Returns the new consistency status.
    pub fn assert_neq(&mut self, a: Term, b: Term) -> bool {
        if self.contradictory {
            return false;
        }
        self.disequalities.push((a, b));
        self.is_consistent()
    }

    /// Assert a whole atom.
    pub fn assert_atom(&mut self, atom: Atom) -> bool {
        match atom {
            Atom::Eq(a, b) => self.assert_eq(a, b),
            Atom::Neq(a, b) => self.assert_neq(a, b),
        }
    }

    /// Assert every atom of a conjunction.
    pub fn assert_conjunction(&mut self, c: &Conjunction) -> bool {
        for &atom in c.atoms() {
            if !self.assert_atom(atom) {
                return false;
            }
        }
        true
    }

    /// Bind a variable to a constant (`v = c`).
    pub fn bind(&mut self, v: Variable, c: impl Into<Sym>) -> bool {
        self.assert_eq(Term::Var(v), Term::Const(c.into()))
    }

    /// The interned constant the variable is currently forced to, if any.
    pub fn value_of(&mut self, v: Variable) -> Option<Sym> {
        self.uf.constant_of(Term::Var(v))
    }

    /// Whether two terms are currently known equal.
    pub fn known_equal(&mut self, a: Term, b: Term) -> bool {
        self.uf.same_class(a, b)
    }

    /// Whether two terms are currently known distinct (bound to different constants or
    /// separated by a recorded inequality whose sides are in their classes).
    pub fn known_distinct(&mut self, a: Term, b: Term) -> bool {
        if let (Some(ca), Some(cb)) = (self.uf.constant_of(a), self.uf.constant_of(b)) {
            if ca != cb {
                return true;
            }
        }
        for i in 0..self.disequalities.len() {
            let (x, y) = self.disequalities[i];
            let direct = self.uf.same_class(x, a) && self.uf.same_class(y, b);
            let flipped = self.uf.same_class(x, b) && self.uf.same_class(y, a);
            if direct || flipped {
                return true;
            }
        }
        false
    }

    /// Extend to a *total* valuation of `vars`: every unbound variable is assigned a fresh
    /// constant not in `avoid` (fresh constants are pairwise distinct).  Returns `None` when
    /// the store is inconsistent.
    ///
    /// This realises the paper's observation that only valuations into Δ ∪ Δ′ matter: bound
    /// variables take their forced value from Δ (or a previously chosen fresh value), and
    /// every remaining variable can safely take a brand-new constant.  Fresh constants are
    /// materialised (and interned) here, at the boundary — this is not a hot path.
    pub fn complete_valuation(
        &mut self,
        vars: impl IntoIterator<Item = Variable>,
        avoid: &BTreeSet<Constant>,
    ) -> Option<Vec<(Variable, Constant)>> {
        if !self.is_consistent() {
            return None;
        }
        let vars: Vec<Variable> = vars.into_iter().collect();
        let mut used: BTreeSet<Constant> = avoid.clone();
        // Account for constants already forced, so fresh values do not collide with them.
        for &v in &vars {
            if let Some(c) = self.value_of(v) {
                used.insert(c.constant());
            }
        }
        let mut out = Vec::with_capacity(vars.len());
        let mut scratch = self.clone();
        for v in vars {
            let value = match scratch.value_of(v) {
                Some(c) => c.constant(),
                None => {
                    let fresh = Constant::fresh(&used, used.len());
                    // Binding a fresh constant can conflict only through recorded
                    // inequalities against other fresh constants, which cannot happen since
                    // fresh constants are pairwise distinct; still, keep the store honest.
                    if !scratch.bind(v, &fresh) {
                        return None;
                    }
                    fresh
                }
            };
            used.insert(value.clone());
            out.push((v, value));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarGen;

    #[test]
    fn equality_then_conflicting_binding_is_inconsistent() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let mut cs = ConstraintSet::new();
        assert!(cs.assert_eq(Term::Var(x), Term::Var(y)));
        assert!(cs.bind(x, 1));
        assert_eq!(cs.value_of(y), Some(Sym::Int(1)));
        assert!(!cs.bind(y, 2));
        assert!(!cs.is_consistent());
    }

    #[test]
    fn disequality_violation_detected_later() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let mut cs = ConstraintSet::new();
        assert!(cs.assert_neq(Term::Var(x), Term::Var(y)));
        assert!(cs.bind(x, 1));
        assert!(!cs.bind(y, 1));
    }

    #[test]
    fn interned_string_bindings_compare_by_id() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let mut cs = ConstraintSet::new();
        assert!(cs.bind(x, Sym::from("alice")));
        assert!(cs.bind(y, Sym::from("bob")));
        assert!(cs.known_distinct(Term::Var(x), Term::Var(y)));
        assert!(!cs.assert_eq(Term::Var(x), Term::Var(y)));
    }

    #[test]
    fn known_distinct_via_constants_and_disequalities() {
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        let mut cs = ConstraintSet::new();
        cs.bind(x, 1);
        cs.bind(y, 2);
        assert!(cs.known_distinct(Term::Var(x), Term::Var(y)));
        assert!(!cs.known_distinct(Term::Var(x), Term::Var(z)));
        cs.assert_neq(Term::Var(z), Term::Var(x));
        assert!(cs.known_distinct(Term::Var(z), Term::Var(x)));
    }

    #[test]
    fn assert_conjunction_short_circuits() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let mut cs = ConstraintSet::new();
        let c = Conjunction::new([Atom::eq(x, 1), Atom::eq(x, 2)]);
        assert!(!cs.assert_conjunction(&c));
        assert!(!cs.is_consistent());
    }

    #[test]
    fn complete_valuation_assigns_fresh_distinct_values() {
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        let mut cs = ConstraintSet::new();
        cs.bind(x, 1);
        cs.assert_neq(Term::Var(y), Term::Var(z));
        let avoid: BTreeSet<Constant> = [Constant::int(1)].into();
        let val = cs.complete_valuation([x, y, z], &avoid).unwrap();
        assert_eq!(val[0].1, Constant::int(1));
        assert_ne!(val[1].1, val[2].1, "fresh values are pairwise distinct");
        assert_ne!(val[1].1, Constant::int(1));
    }

    #[test]
    fn checkpoint_rollback_restores_consistency_and_bindings() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let mut cs = ConstraintSet::new();
        assert!(cs.bind(x, 1));

        let cp = cs.checkpoint();
        assert!(cs.assert_eq(Term::Var(x), Term::Var(y)));
        assert_eq!(cs.value_of(y), Some(Sym::Int(1)));
        assert!(
            !cs.assert_neq(Term::Var(x), Term::Var(y)),
            "contradiction detected"
        );
        assert!(!cs.is_consistent());

        cs.rollback(cp);
        assert!(cs.is_consistent(), "contradiction unwound");
        assert_eq!(
            cs.value_of(x),
            Some(Sym::Int(1)),
            "pre-checkpoint binding kept"
        );
        assert_eq!(cs.value_of(y), None, "post-checkpoint binding gone");
        // The store is fully usable again after the rollback.
        assert!(cs.bind(y, 2));
        assert!(cs.known_distinct(Term::Var(x), Term::Var(y)));
    }

    #[test]
    fn nested_checkpoints_unwind_lifo() {
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        let mut cs = ConstraintSet::new();
        let outer = cs.checkpoint();
        cs.bind(x, 1);
        let inner = cs.checkpoint();
        cs.assert_eq(Term::Var(y), Term::Var(z));
        cs.rollback(inner);
        assert!(!cs.known_equal(Term::Var(y), Term::Var(z)));
        assert_eq!(cs.value_of(x), Some(Sym::Int(1)));
        cs.rollback(outer);
        assert_eq!(cs.value_of(x), None);
    }

    #[test]
    fn complete_valuation_fails_on_inconsistent_store() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let mut cs = ConstraintSet::new();
        cs.bind(x, 1);
        cs.bind(x, 2);
        assert!(cs.complete_valuation([x], &BTreeSet::new()).is_none());
    }
}
