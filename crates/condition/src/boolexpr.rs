//! Positive boolean combinations of condition atoms.
//!
//! c-table *local conditions* are conjunctions of atoms, but two places in the paper need
//! richer (still negation-free) formulas:
//!
//! * the c-table algebra of Imieliński–Lipski generates local conditions "with both ors and
//!   ands" during query evaluation (Theorem 3.2(2), remark (*)), which are then put in
//!   disjunctive normal form; and
//! * projection/union of c-tables naturally produces disjunctions of the conditions of the
//!   merged tuples.
//!
//! [`BoolExpr`] is that formula language: atoms, conjunction, disjunction and the two
//! constants.  Negation is deliberately absent — the paper's conditions never need it
//! (inequality is an atom, not a negation).

use crate::{Atom, Conjunction, Term, Variable};
use pw_relational::Sym;
use std::collections::BTreeSet;
use std::fmt;

/// A negation-free boolean combination of condition atoms.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum BoolExpr {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A single atom.
    Atom(Atom),
    /// Conjunction of sub-expressions (empty = true).
    And(Vec<BoolExpr>),
    /// Disjunction of sub-expressions (empty = false).
    Or(Vec<BoolExpr>),
}

impl BoolExpr {
    /// Lift a conjunction of atoms.
    pub fn from_conjunction(c: &Conjunction) -> BoolExpr {
        if c.is_empty() {
            BoolExpr::True
        } else {
            BoolExpr::And(c.atoms().iter().cloned().map(BoolExpr::Atom).collect())
        }
    }

    /// Conjunction of two expressions with light simplification.
    pub fn and(self, other: BoolExpr) -> BoolExpr {
        match (self, other) {
            (BoolExpr::False, _) | (_, BoolExpr::False) => BoolExpr::False,
            (BoolExpr::True, e) | (e, BoolExpr::True) => e,
            (BoolExpr::And(mut a), BoolExpr::And(b)) => {
                a.extend(b);
                BoolExpr::And(a)
            }
            (BoolExpr::And(mut a), e) => {
                a.push(e);
                BoolExpr::And(a)
            }
            (e, BoolExpr::And(mut b)) => {
                b.insert(0, e);
                BoolExpr::And(b)
            }
            (a, b) => BoolExpr::And(vec![a, b]),
        }
    }

    /// Disjunction of two expressions with light simplification.
    pub fn or(self, other: BoolExpr) -> BoolExpr {
        match (self, other) {
            (BoolExpr::True, _) | (_, BoolExpr::True) => BoolExpr::True,
            (BoolExpr::False, e) | (e, BoolExpr::False) => e,
            (BoolExpr::Or(mut a), BoolExpr::Or(b)) => {
                a.extend(b);
                BoolExpr::Or(a)
            }
            (BoolExpr::Or(mut a), e) => {
                a.push(e);
                BoolExpr::Or(a)
            }
            (e, BoolExpr::Or(mut b)) => {
                b.insert(0, e);
                BoolExpr::Or(b)
            }
            (a, b) => BoolExpr::Or(vec![a, b]),
        }
    }

    /// All variables mentioned.
    pub fn variables(&self) -> BTreeSet<Variable> {
        let mut out = BTreeSet::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut BTreeSet<Variable>) {
        match self {
            BoolExpr::True | BoolExpr::False => {}
            BoolExpr::Atom(a) => out.extend(a.variables()),
            BoolExpr::And(es) | BoolExpr::Or(es) => {
                for e in es {
                    e.collect_variables(out);
                }
            }
        }
    }

    /// Evaluate under a total assignment; `None` if a relevant variable is unassigned.
    pub fn eval(&self, lookup: &impl Fn(Variable) -> Option<Sym>) -> Option<bool> {
        match self {
            BoolExpr::True => Some(true),
            BoolExpr::False => Some(false),
            BoolExpr::Atom(a) => a.eval(lookup),
            BoolExpr::And(es) => {
                let mut acc = true;
                for e in es {
                    acc &= e.eval(lookup)?;
                }
                Some(acc)
            }
            BoolExpr::Or(es) => {
                let mut acc = false;
                for e in es {
                    acc |= e.eval(lookup)?;
                }
                Some(acc)
            }
        }
    }

    /// Replace a variable by a term everywhere.
    pub fn substitute(&self, v: Variable, t: Term) -> BoolExpr {
        match self {
            BoolExpr::True => BoolExpr::True,
            BoolExpr::False => BoolExpr::False,
            BoolExpr::Atom(a) => BoolExpr::Atom(a.substitute(v, t)),
            BoolExpr::And(es) => BoolExpr::And(es.iter().map(|e| e.substitute(v, t)).collect()),
            BoolExpr::Or(es) => BoolExpr::Or(es.iter().map(|e| e.substitute(v, t)).collect()),
        }
    }

    /// Disjunctive normal form: a list of conjunctions whose disjunction is equivalent to
    /// the expression.  Unsatisfiable disjuncts are dropped; an empty list means *false*.
    ///
    /// Worst-case exponential in the formula size, but the formulas produced by a *fixed*
    /// query are of bounded size (the argument used in Theorem 3.2(2) step (c)), so the
    /// data-complexity of callers stays polynomial.
    pub fn to_dnf(&self) -> Vec<Conjunction> {
        let disjuncts = self.dnf_raw();
        disjuncts
            .into_iter()
            .filter(Conjunction::is_satisfiable)
            .collect()
    }

    fn dnf_raw(&self) -> Vec<Conjunction> {
        match self {
            BoolExpr::True => vec![Conjunction::truth()],
            BoolExpr::False => vec![],
            BoolExpr::Atom(a) => match a.trivial_value() {
                Some(true) => vec![Conjunction::truth()],
                Some(false) => vec![],
                None => vec![Conjunction::single(*a)],
            },
            BoolExpr::Or(es) => es.iter().flat_map(BoolExpr::dnf_raw).collect(),
            BoolExpr::And(es) => {
                let mut acc = vec![Conjunction::truth()];
                for e in es {
                    let rhs = e.dnf_raw();
                    let mut next = Vec::with_capacity(acc.len() * rhs.len().max(1));
                    for a in &acc {
                        for b in &rhs {
                            next.push(a.and(b));
                        }
                    }
                    acc = next;
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
        }
    }

    /// Whether some assignment satisfies the expression (via DNF + conjunction SAT).
    pub fn is_satisfiable(&self) -> bool {
        !self.to_dnf().is_empty()
    }
}

impl From<Atom> for BoolExpr {
    fn from(value: Atom) -> Self {
        BoolExpr::Atom(value)
    }
}

impl From<Conjunction> for BoolExpr {
    fn from(value: Conjunction) -> Self {
        BoolExpr::from_conjunction(&value)
    }
}

impl fmt::Debug for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::True => write!(f, "true"),
            BoolExpr::False => write!(f, "false"),
            BoolExpr::Atom(a) => write!(f, "{a}"),
            BoolExpr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarGen;

    #[test]
    fn and_or_simplify_constants() {
        let a = BoolExpr::Atom(Atom::eq(1, 1));
        assert_eq!(BoolExpr::True.and(a.clone()), a);
        assert_eq!(BoolExpr::False.and(a.clone()), BoolExpr::False);
        assert_eq!(BoolExpr::False.or(a.clone()), a);
        assert_eq!(BoolExpr::True.or(a), BoolExpr::True);
    }

    #[test]
    fn dnf_of_conjunction_of_disjunctions() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        // (x=1 ∨ x=2) ∧ (y=3)
        let e = BoolExpr::Atom(Atom::eq(x, 1))
            .or(BoolExpr::Atom(Atom::eq(x, 2)))
            .and(BoolExpr::Atom(Atom::eq(y, 3)));
        let dnf = e.to_dnf();
        assert_eq!(dnf.len(), 2);
        assert!(dnf.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn dnf_drops_unsatisfiable_disjuncts() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // (x=1 ∧ x=2) ∨ (x=3)
        let e = BoolExpr::Atom(Atom::eq(x, 1))
            .and(BoolExpr::Atom(Atom::eq(x, 2)))
            .or(BoolExpr::Atom(Atom::eq(x, 3)));
        let dnf = e.to_dnf();
        assert_eq!(dnf.len(), 1);
        assert!(e.is_satisfiable());
        let contradiction = BoolExpr::Atom(Atom::eq(x, 1)).and(BoolExpr::Atom(Atom::neq(x, 1)));
        assert!(!contradiction.is_satisfiable());
        assert!(contradiction.to_dnf().is_empty());
    }

    #[test]
    fn eval_and_substitute() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let e = BoolExpr::Atom(Atom::eq(x, 1)).or(BoolExpr::Atom(Atom::eq(y, 2)));
        let lookup = |v: Variable| -> Option<Sym> {
            if v == x {
                Some(Sym::Int(9))
            } else if v == y {
                Some(Sym::Int(2))
            } else {
                None
            }
        };
        assert_eq!(e.eval(&lookup), Some(true));
        let e2 = e.substitute(y, Term::constant(5));
        assert_eq!(e2.eval(&lookup), Some(false));
        assert_eq!(e.variables().len(), 2);
    }

    #[test]
    fn conversion_from_conjunction() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let c = Conjunction::new([Atom::eq(x, 1), Atom::neq(x, 2)]);
        let e: BoolExpr = c.clone().into();
        assert_eq!(e.to_dnf(), vec![c]);
        assert_eq!(
            BoolExpr::from_conjunction(&Conjunction::truth()),
            BoolExpr::True
        );
    }

    #[test]
    fn display_nested() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let e = BoolExpr::Atom(Atom::eq(x, 1)).or(BoolExpr::Atom(Atom::neq(x, 2)));
        let s = e.to_string();
        assert!(s.contains('∨'));
    }
}
