//! Terms: a variable or an interned constant, the entries of tables and condition atoms.
//!
//! `Term` is the atom of every decision hot path — the union-find trail, the constraint
//! store, the c-table rows — so it is a two-word `Copy` value: a [`Variable`] or an
//! interned [`Sym`].  Copies are register moves and equality is a machine-word compare;
//! no string is ever touched inside a search.  [`Constant`]s are accepted at the
//! construction boundary (interned on entry, via the global [`pw_relational::SymbolTable`])
//! and recovered at the display/inspection boundary ([`Term::as_const`]).

use crate::Variable;
use pw_relational::{Constant, Sym};
use std::fmt;

/// A table entry or condition operand: either a null ([`Variable`]) or an interned
/// constant ([`Sym`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable (null value).
    Var(Variable),
    /// An interned constant.
    Const(Sym),
}

impl Term {
    /// Is this term a variable?
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Is this term a constant?
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// The variable, if this term is one.
    pub fn as_var(self) -> Option<Variable> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The interned constant, if this term is one.  This is the hot-path accessor —
    /// no resolution, no allocation.
    pub fn as_sym(self) -> Option<Sym> {
        match self {
            Term::Var(_) => None,
            Term::Const(s) => Some(s),
        }
    }

    /// The constant, if this term is one, resolved through the global symbol table.
    /// Boundary/inspection use only; hot paths compare [`Term::as_sym`] ids instead.
    pub fn as_const(self) -> Option<Constant> {
        self.as_sym().map(Sym::constant)
    }

    /// Build a constant term from anything convertible into [`Constant`], interning it in
    /// the global symbol table.
    pub fn constant(c: impl Into<Constant>) -> Term {
        Term::Const(Sym::of(&c.into()))
    }

    /// Substitute: if this term is the variable `v`, replace it by `replacement`.
    pub fn substitute(self, v: Variable, replacement: Term) -> Term {
        match self {
            Term::Var(w) if w == v => replacement,
            other => other,
        }
    }
}

impl From<Variable> for Term {
    fn from(value: Variable) -> Self {
        Term::Var(value)
    }
}

impl From<Sym> for Term {
    fn from(value: Sym) -> Self {
        Term::Const(value)
    }
}

impl From<Constant> for Term {
    fn from(value: Constant) -> Self {
        Term::Const(Sym::of(&value))
    }
}

impl From<&Constant> for Term {
    fn from(value: &Constant) -> Self {
        Term::Const(Sym::of(value))
    }
}

impl From<i64> for Term {
    fn from(value: i64) -> Self {
        Term::Const(Sym::Int(value))
    }
}

impl From<i32> for Term {
    fn from(value: i32) -> Self {
        Term::Const(Sym::Int(i64::from(value)))
    }
}

impl From<&str> for Term {
    fn from(value: &str) -> Self {
        Term::Const(Sym::from(value))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarGen;

    #[test]
    fn term_is_a_two_word_copy_value() {
        assert!(std::mem::size_of::<Term>() <= 2 * std::mem::size_of::<usize>());
        fn assert_copy<T: Copy>() {}
        assert_copy::<Term>();
    }

    #[test]
    fn accessors_and_conversions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let tv: Term = x.into();
        let tc: Term = 5i64.into();
        let ts: Term = "a".into();
        assert!(tv.is_var());
        assert!(tc.is_const());
        assert_eq!(tv.as_var(), Some(x));
        assert_eq!(tc.as_const(), Some(Constant::int(5)));
        assert_eq!(tc.as_sym(), Some(Sym::Int(5)));
        assert_eq!(ts.as_const(), Some(Constant::str("a")));
        assert_eq!(tv.as_const(), None);
        assert_eq!(tc.as_var(), None);
        assert_eq!(ts, Term::from("a"), "equal strings intern to equal ids");
        assert_ne!(ts, Term::from("b"));
    }

    #[test]
    fn substitution_replaces_only_the_target_variable() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let y = g.fresh();
        let t = Term::Var(x);
        assert_eq!(t.substitute(x, Term::constant(3)), Term::constant(3));
        assert_eq!(t.substitute(y, Term::constant(3)), Term::Var(x));
        assert_eq!(
            Term::constant(7).substitute(x, Term::Var(y)),
            Term::constant(7)
        );
    }
}
