//! Terms: a variable or a constant, the entries of tables and of condition atoms.

use crate::Variable;
use pw_relational::Constant;
use std::fmt;

/// A table entry or condition operand: either a null ([`Variable`]) or a [`Constant`].
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable (null value).
    Var(Variable),
    /// A constant.
    Const(Constant),
}

impl Term {
    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Is this term a constant?
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<Variable> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is one.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// Build a constant term from anything convertible into [`Constant`].
    pub fn constant(c: impl Into<Constant>) -> Term {
        Term::Const(c.into())
    }

    /// Substitute: if this term is the variable `v`, replace it by `replacement`.
    pub fn substitute(&self, v: Variable, replacement: &Term) -> Term {
        match self {
            Term::Var(w) if *w == v => replacement.clone(),
            other => other.clone(),
        }
    }
}

impl From<Variable> for Term {
    fn from(value: Variable) -> Self {
        Term::Var(value)
    }
}

impl From<Constant> for Term {
    fn from(value: Constant) -> Self {
        Term::Const(value)
    }
}

impl From<i64> for Term {
    fn from(value: i64) -> Self {
        Term::Const(Constant::Int(value))
    }
}

impl From<i32> for Term {
    fn from(value: i32) -> Self {
        Term::Const(Constant::Int(i64::from(value)))
    }
}

impl From<&str> for Term {
    fn from(value: &str) -> Self {
        Term::Const(Constant::str(value))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarGen;

    #[test]
    fn accessors_and_conversions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let tv: Term = x.into();
        let tc: Term = 5i64.into();
        let ts: Term = "a".into();
        assert!(tv.is_var());
        assert!(tc.is_const());
        assert_eq!(tv.as_var(), Some(x));
        assert_eq!(tc.as_const(), Some(&Constant::int(5)));
        assert_eq!(ts.as_const(), Some(&Constant::str("a")));
        assert_eq!(tv.as_const(), None);
        assert_eq!(tc.as_var(), None);
    }

    #[test]
    fn substitution_replaces_only_the_target_variable() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let y = g.fresh();
        let t = Term::Var(x);
        assert_eq!(t.substitute(x, &Term::constant(3)), Term::constant(3));
        assert_eq!(t.substitute(y, &Term::constant(3)), Term::Var(x));
        assert_eq!(
            Term::constant(7).substitute(x, &Term::Var(y)),
            Term::constant(7)
        );
    }
}
