//! Positional relational algebra over [`Relation`]s.
//!
//! These are the operators the paper lists for positive existential queries — project,
//! natural (equi-)join, union, renaming, positive select — plus difference (needed for the
//! first order queries), cartesian product and constant-column extension (needed to express
//! the reductions' queries, which mention explicit constants like `0` and `1`).
//!
//! Every operator validates arities and returns [`ArityError`] on misuse; the query layer
//! (`pw-query`) performs static arity inference so that well-formed query ASTs can never
//! trigger these errors at evaluation time.

use crate::{ArityError, Constant, Relation, Tuple};

/// A selection predicate over tuple positions.
///
/// `EqConst`/`EqCols` are the paper's *positive* selections; the `Neq*` forms are only used
/// by first-order queries and by the "positive existential with ≠" query of Theorem 3.2(4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pred {
    /// Column `col` equals the constant.
    EqConst(usize, Constant),
    /// Columns are equal.
    EqCols(usize, usize),
    /// Column `col` differs from the constant.
    NeqConst(usize, Constant),
    /// Columns differ.
    NeqCols(usize, usize),
}

impl Pred {
    /// Largest column index mentioned by the predicate.
    pub fn max_col(&self) -> usize {
        match self {
            Pred::EqConst(c, _) | Pred::NeqConst(c, _) => *c,
            Pred::EqCols(a, b) | Pred::NeqCols(a, b) => (*a).max(*b),
        }
    }

    /// Whether the predicate is *positive* (no ≠).
    pub fn is_positive(&self) -> bool {
        matches!(self, Pred::EqConst(..) | Pred::EqCols(..))
    }

    /// Evaluate the predicate on a tuple.
    pub fn eval(&self, t: &Tuple) -> bool {
        match self {
            Pred::EqConst(c, k) => &t[*c] == k,
            Pred::NeqConst(c, k) => &t[*c] != k,
            Pred::EqCols(a, b) => t[*a] == t[*b],
            Pred::NeqCols(a, b) => t[*a] != t[*b],
        }
    }
}

fn check_cols(arity: usize, max_col: usize, context: &'static str) -> Result<(), ArityError> {
    if max_col >= arity {
        Err(ArityError {
            expected: arity,
            found: max_col + 1,
            context,
        })
    } else {
        Ok(())
    }
}

/// σ — keep the tuples satisfying *all* predicates.
pub fn select(r: &Relation, preds: &[Pred]) -> Result<Relation, ArityError> {
    for p in preds {
        check_cols(r.arity(), p.max_col(), "select")?;
    }
    let mut out = Relation::empty(r.arity());
    for t in r.iter() {
        if preds.iter().all(|p| p.eval(t)) {
            out.insert(t.clone()).expect("same arity");
        }
    }
    Ok(out)
}

/// π — project onto the given columns (which may repeat or reorder).
pub fn project(r: &Relation, cols: &[usize]) -> Result<Relation, ArityError> {
    if let Some(&m) = cols.iter().max() {
        check_cols(r.arity(), m, "project")?;
    }
    let mut out = Relation::empty(cols.len());
    for t in r.iter() {
        out.insert(t.project(cols)).expect("projected arity");
    }
    Ok(out)
}

/// × — cartesian product; the result has `l.arity() + r.arity()` columns.
pub fn product(l: &Relation, r: &Relation) -> Result<Relation, ArityError> {
    let mut out = Relation::empty(l.arity() + r.arity());
    for a in l.iter() {
        for b in r.iter() {
            out.insert(a.concat(b)).expect("product arity");
        }
    }
    Ok(out)
}

/// ⋈ — equi-join on the listed column pairs `(left column, right column)`.
/// The result keeps all columns of both operands (like a product filtered by equality).
pub fn join(l: &Relation, r: &Relation, on: &[(usize, usize)]) -> Result<Relation, ArityError> {
    for &(a, b) in on {
        check_cols(l.arity(), a, "join (left)")?;
        check_cols(r.arity(), b, "join (right)")?;
    }
    let mut out = Relation::empty(l.arity() + r.arity());
    for a in l.iter() {
        for b in r.iter() {
            if on.iter().all(|&(la, rb)| a[la] == b[rb]) {
                out.insert(a.concat(b)).expect("join arity");
            }
        }
    }
    Ok(out)
}

/// ∪ — union of two relations of the same arity.
pub fn union(l: &Relation, r: &Relation) -> Result<Relation, ArityError> {
    if l.arity() != r.arity() {
        return Err(ArityError {
            expected: l.arity(),
            found: r.arity(),
            context: "union",
        });
    }
    let mut out = l.clone();
    for t in r.iter() {
        out.insert(t.clone()).expect("same arity");
    }
    Ok(out)
}

/// − — set difference of two relations of the same arity (first-order only).
pub fn difference(l: &Relation, r: &Relation) -> Result<Relation, ArityError> {
    if l.arity() != r.arity() {
        return Err(ArityError {
            expected: l.arity(),
            found: r.arity(),
            context: "difference",
        });
    }
    let mut out = Relation::empty(l.arity());
    for t in l.iter() {
        if !r.contains(t) {
            out.insert(t.clone()).expect("same arity");
        }
    }
    Ok(out)
}

/// ∩ — intersection of two relations of the same arity.
pub fn intersection(l: &Relation, r: &Relation) -> Result<Relation, ArityError> {
    if l.arity() != r.arity() {
        return Err(ArityError {
            expected: l.arity(),
            found: r.arity(),
            context: "intersection",
        });
    }
    let mut out = Relation::empty(l.arity());
    for t in l.iter() {
        if r.contains(t) {
            out.insert(t.clone()).expect("same arity");
        }
    }
    Ok(out)
}

/// Renaming, expressed as a column permutation; `perm[i]` is the source column for output
/// column `i`.  A permutation-based renaming keeps the algebra positional.
pub fn rename(r: &Relation, perm: &[usize]) -> Result<Relation, ArityError> {
    if perm.len() != r.arity() {
        return Err(ArityError {
            expected: r.arity(),
            found: perm.len(),
            context: "rename",
        });
    }
    project(r, perm)
}

/// Append constant columns to every tuple (used by reductions to emit literals such as 0/1).
pub fn extend_constants(r: &Relation, consts: &[Constant]) -> Result<Relation, ArityError> {
    let mut out = Relation::empty(r.arity() + consts.len());
    for t in r.iter() {
        out.insert(t.extend_with(consts)).expect("extended arity");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rel, tup};

    fn r() -> Relation {
        rel![[1, 2], [2, 2], [3, 4]]
    }

    #[test]
    fn select_positive_and_negative() {
        let eq = select(&r(), &[Pred::EqCols(0, 1)]).unwrap();
        assert_eq!(eq, rel![[2, 2]]);
        let neq = select(&r(), &[Pred::NeqCols(0, 1)]).unwrap();
        assert_eq!(neq.len(), 2);
        let by_const = select(&r(), &[Pred::EqConst(1, Constant::int(2))]).unwrap();
        assert_eq!(by_const.len(), 2);
        assert!(select(&r(), &[Pred::EqCols(0, 5)]).is_err());
        assert!(Pred::EqCols(0, 1).is_positive());
        assert!(!Pred::NeqConst(0, Constant::int(1)).is_positive());
    }

    #[test]
    fn project_dedups() {
        let p = project(&r(), &[1]).unwrap();
        assert_eq!(p, rel![[2], [4]]);
        assert!(project(&r(), &[9]).is_err());
    }

    #[test]
    fn product_and_join() {
        let s = rel![[2, 10], [4, 20]];
        let prod = product(&r(), &s).unwrap();
        assert_eq!(prod.len(), 6);
        assert_eq!(prod.arity(), 4);
        let j = join(&r(), &s, &[(1, 0)]).unwrap();
        // (1,2)⋈(2,10), (2,2)⋈(2,10), (3,4)⋈(4,20)
        assert_eq!(j.len(), 3);
        assert!(j.contains(&tup![3, 4, 4, 20]));
        assert!(join(&r(), &s, &[(5, 0)]).is_err());
    }

    #[test]
    fn union_difference_intersection() {
        let a = rel![[1, 2], [3, 4]];
        let b = rel![[3, 4], [5, 6]];
        assert_eq!(union(&a, &b).unwrap().len(), 3);
        assert_eq!(difference(&a, &b).unwrap(), rel![[1, 2]]);
        assert_eq!(intersection(&a, &b).unwrap(), rel![[3, 4]]);
        let c = rel![[1]];
        assert!(union(&a, &c).is_err());
        assert!(difference(&a, &c).is_err());
        assert!(intersection(&a, &c).is_err());
    }

    #[test]
    fn rename_is_a_permutation_projection() {
        let swapped = rename(&r(), &[1, 0]).unwrap();
        assert!(swapped.contains(&tup![2, 1]));
        assert!(rename(&r(), &[0]).is_err());
    }

    #[test]
    fn extend_constants_appends_columns() {
        let e = extend_constants(&rel![[1]], &[Constant::int(0), Constant::str("x")]).unwrap();
        assert_eq!(e.arity(), 3);
        assert!(e.contains(&tup![1, 0, "x"]));
    }
}
