//! # `pw-relational` — complete-information relational substrate
//!
//! This crate implements the *complete information database* model of Section 2.1 of
//! Abiteboul, Kanellakis and Grahne, "On the Representation and Querying of Sets of Possible
//! Worlds" (SIGMOD 1987 / TCS 78, 1991):
//!
//! * a countably infinite set of [`Constant`]s,
//! * [`Tuple`]s (facts) over constants,
//! * [`Relation`]s of a fixed arity — finite sets of facts,
//! * [`Instance`]s — finite vectors of named relations, and
//! * a positional relational algebra over relations ([`algebra`]).
//!
//! The incomplete-information layers (`pw-condition`, `pw-core`) are built on top of this
//! substrate: a possible world *is* an [`Instance`] of this crate.
//!
//! ## Design notes
//!
//! * Relations are kept as ordered sets ([`std::collections::BTreeSet`]) so that equality,
//!   hashing and iteration order are canonical.  The paper's problems (membership,
//!   uniqueness, containment) all hinge on *set* equality of instances, so canonical forms
//!   keep those comparisons cheap and deterministic.
//! * The algebra is positional (columns are addressed by index).  This mirrors the paper's
//!   use of tuple positions in its reductions and avoids carrying attribute names through
//!   every operator.

pub mod algebra;
pub mod constant;
pub mod domain;
pub mod instance;
pub mod intern;
pub mod relation;
pub mod tuple;

pub use constant::Constant;
pub use instance::{Instance, SchemaError};
pub use intern::{Catalog, RelId, StrId, Sym, SymbolTable, Symbols};
pub use relation::{ArityError, Relation};
pub use tuple::Tuple;

/// Crate-wide result alias for arity-checked operations.
pub type Result<T, E = ArityError> = std::result::Result<T, E>;
