//! Active-domain and genericity utilities.
//!
//! QPTIME queries are *generic*: for all bijections ρ on the constant domain,
//! `q(ρ(I)) = ρ(q(I))` (Section 2.1).  The helpers here build such bijections and check
//! instance isomorphism, which the test-suite uses to validate that our query evaluators are
//! generic and that the Δ ∪ Δ′ restriction of Proposition 2.1 is sound.

use crate::{Constant, Instance};
use std::collections::{BTreeMap, BTreeSet};

/// A finite injective renaming of constants, standing for a bijection on the (infinite)
/// domain that is the identity outside its support.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Renaming {
    map: BTreeMap<Constant, Constant>,
}

impl Renaming {
    /// The identity renaming.
    pub fn identity() -> Self {
        Renaming::default()
    }

    /// Build a renaming from explicit pairs.  Returns `None` if the mapping is not
    /// injective (and therefore cannot extend to a bijection).
    pub fn new(pairs: impl IntoIterator<Item = (Constant, Constant)>) -> Option<Self> {
        let mut map = BTreeMap::new();
        let mut image = BTreeSet::new();
        for (from, to) in pairs {
            if !image.insert(to.clone()) {
                return None;
            }
            if map.insert(from, to).is_some() {
                return None;
            }
        }
        Some(Renaming { map })
    }

    /// A renaming sending the i-th constant of `from` to the i-th constant of `to`.
    /// Panics if lengths differ; returns `None` when not injective.
    pub fn zip(from: &[Constant], to: &[Constant]) -> Option<Self> {
        assert_eq!(from.len(), to.len(), "Renaming::zip length mismatch");
        Renaming::new(from.iter().cloned().zip(to.iter().cloned()))
    }

    /// Apply to a single constant (identity outside the support).
    pub fn apply(&self, c: &Constant) -> Constant {
        self.map.get(c).cloned().unwrap_or_else(|| c.clone())
    }

    /// Apply to an instance.
    pub fn apply_instance(&self, i: &Instance) -> Instance {
        i.map_constants(|c| self.apply(c))
    }

    /// The inverse renaming (well-defined because renamings are injective).
    pub fn inverse(&self) -> Renaming {
        Renaming {
            map: self
                .map
                .iter()
                .map(|(a, b)| (b.clone(), a.clone()))
                .collect(),
        }
    }

    /// Number of constants moved.
    pub fn support_len(&self) -> usize {
        self.map.len()
    }
}

/// Fresh constants Δ′ disjoint from `used`, one per requested slot.
///
/// This is the device in the proof of Proposition 2.1: "let Δ′ be a set of constants
/// distinct from Δ, with the same cardinality as X".
pub fn fresh_constants(used: &BTreeSet<Constant>, count: usize) -> Vec<Constant> {
    let mut out = Vec::with_capacity(count);
    let mut pool = used.clone();
    for k in 0.. {
        if out.len() == count {
            break;
        }
        let c = Constant::fresh(&pool, k);
        pool.insert(c.clone());
        out.push(c);
    }
    out
}

/// Are two instances isomorphic, i.e. equal up to a bijective renaming of constants?
///
/// This is used only on the small instances of the cross-validation tests, so a simple
/// backtracking search over constant bijections is sufficient.
pub fn isomorphic(a: &Instance, b: &Instance) -> bool {
    if a.relation_count() != b.relation_count() || a.fact_count() != b.fact_count() {
        return false;
    }
    let names_a: Vec<&String> = a.relation_names().collect();
    let names_b: Vec<&String> = b.relation_names().collect();
    if names_a != names_b {
        return false;
    }
    let dom_a: Vec<Constant> = a.active_domain().into_iter().collect();
    let dom_b: Vec<Constant> = b.active_domain().into_iter().collect();
    if dom_a.len() != dom_b.len() {
        return false;
    }
    fn backtrack(
        a: &Instance,
        b: &Instance,
        dom_a: &[Constant],
        dom_b: &[Constant],
        idx: usize,
        used: &mut Vec<bool>,
        map: &mut BTreeMap<Constant, Constant>,
    ) -> bool {
        if idx == dom_a.len() {
            let renaming = Renaming { map: map.clone() };
            return renaming.apply_instance(a) == *b;
        }
        for (j, target) in dom_b.iter().enumerate() {
            if used[j] {
                continue;
            }
            used[j] = true;
            map.insert(dom_a[idx].clone(), target.clone());
            if backtrack(a, b, dom_a, dom_b, idx + 1, used, map) {
                return true;
            }
            map.remove(&dom_a[idx]);
            used[j] = false;
        }
        false
    }
    let mut used = vec![false; dom_b.len()];
    let mut map = BTreeMap::new();
    backtrack(a, b, &dom_a, &dom_b, 0, &mut used, &mut map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    #[test]
    fn renaming_rejects_non_injective_maps() {
        assert!(Renaming::new([
            (Constant::int(1), Constant::int(5)),
            (Constant::int(2), Constant::int(5)),
        ])
        .is_none());
        let r = Renaming::new([(Constant::int(1), Constant::int(5))]).unwrap();
        assert_eq!(r.apply(&Constant::int(1)), Constant::int(5));
        assert_eq!(r.apply(&Constant::int(9)), Constant::int(9));
        assert_eq!(r.inverse().apply(&Constant::int(5)), Constant::int(1));
        assert_eq!(r.support_len(), 1);
    }

    #[test]
    fn fresh_constants_are_distinct_and_unused() {
        let used: BTreeSet<Constant> = [Constant::int(1), Constant::str("⊥0")].into();
        let fresh = fresh_constants(&used, 3);
        assert_eq!(fresh.len(), 3);
        let set: BTreeSet<_> = fresh.iter().cloned().collect();
        assert_eq!(set.len(), 3);
        assert!(set.intersection(&used).next().is_none());
    }

    #[test]
    fn isomorphism_detects_renamed_instances() {
        let a = Instance::single("R", rel![[1, 2], [2, 3]]);
        let b = Instance::single("R", rel![[10, 20], [20, 30]]);
        let c = Instance::single("R", rel![[10, 20], [30, 20]]);
        assert!(isomorphic(&a, &b));
        assert!(
            !isomorphic(&a, &c),
            "different shape: chain vs. shared target"
        );
        let d = Instance::single("S", rel![[1, 2], [2, 3]]);
        assert!(!isomorphic(&a, &d), "relation names must match");
    }

    #[test]
    fn zip_builds_pointwise_renaming() {
        let r = Renaming::zip(
            &[Constant::int(1), Constant::int(2)],
            &[Constant::str("a"), Constant::str("b")],
        )
        .unwrap();
        assert_eq!(r.apply(&Constant::int(2)), Constant::str("b"));
    }
}
