//! Instances: complete information databases (named vectors of relations).

use crate::{Constant, Relation, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Error raised by instance-level operations when relation names or arities clash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The named relation does not exist in the instance.
    UnknownRelation(String),
    /// A relation with this name already exists with a different arity.
    ArityConflict {
        /// Relation name.
        name: String,
        /// Arity already registered.
        existing: usize,
        /// Arity supplied.
        supplied: usize,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownRelation(n) => write!(f, "unknown relation {n:?}"),
            SchemaError::ArityConflict {
                name,
                existing,
                supplied,
            } => write!(
                f,
                "arity conflict for relation {name:?}: existing {existing}, supplied {supplied}"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

/// A complete information database: a finite map from relation names to [`Relation`]s.
///
/// The paper's instances are *vectors* of relations (R₁, …, Rₙ); we key them by name so
/// queries and reductions can refer to relations symbolically ("R", "S", …), and we keep the
/// map ordered so that instance equality is canonical.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Instance {
    relations: BTreeMap<String, Relation>,
}

impl Instance {
    /// The empty instance (no relations).
    pub fn new() -> Self {
        Instance::default()
    }

    /// Build an instance from `(name, relation)` pairs.
    pub fn from_relations(rels: impl IntoIterator<Item = (String, Relation)>) -> Self {
        Instance {
            relations: rels.into_iter().collect(),
        }
    }

    /// Build a single-relation instance (the common case in the paper's constructions).
    pub fn single(name: impl Into<String>, relation: Relation) -> Self {
        let mut i = Instance::new();
        i.insert_relation(name, relation);
        i
    }

    /// Insert (or replace) a relation under `name`.
    pub fn insert_relation(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Insert a fact into the named relation, creating the relation if absent.
    pub fn insert_fact(
        &mut self,
        name: impl Into<String>,
        fact: Tuple,
    ) -> Result<bool, SchemaError> {
        let name = name.into();
        match self.relations.get_mut(&name) {
            Some(rel) => {
                if rel.arity() != fact.arity() {
                    return Err(SchemaError::ArityConflict {
                        name,
                        existing: rel.arity(),
                        supplied: fact.arity(),
                    });
                }
                Ok(rel.insert(fact).expect("arity checked above"))
            }
            None => {
                let mut rel = Relation::empty(fact.arity());
                rel.insert(fact).expect("fresh relation has matching arity");
                self.relations.insert(name, rel);
                Ok(true)
            }
        }
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Look up a relation, returning an empty relation of the given arity when the name is
    /// absent.  Queries use this so that referencing an unpopulated EDB relation is not an
    /// error.
    pub fn relation_or_empty(&self, name: &str, arity: usize) -> Relation {
        self.relations
            .get(name)
            .cloned()
            .unwrap_or_else(|| Relation::empty(arity))
    }

    /// Iterate over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    /// Relation names in the instance.
    pub fn relation_names(&self) -> impl Iterator<Item = &String> {
        self.relations.keys()
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Total number of facts across all relations (the instance "size" used for
    /// data-complexity sweeps).
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Whether a specific fact is present in the named relation.
    pub fn contains_fact(&self, name: &str, fact: &Tuple) -> bool {
        self.relations.get(name).is_some_and(|r| r.contains(fact))
    }

    /// Componentwise containment: every relation of `self` is a subset of the relation of
    /// the same name in `other` (missing relations count as empty).
    pub fn is_subinstance_of(&self, other: &Instance) -> bool {
        self.relations.iter().all(|(name, rel)| {
            rel.is_empty()
                || other
                    .relations
                    .get(name)
                    .is_some_and(|orel| rel.is_subset(orel))
        })
    }

    /// The active domain: all constants appearing in any relation.
    pub fn active_domain(&self) -> BTreeSet<Constant> {
        self.relations
            .values()
            .flat_map(Relation::active_domain)
            .collect()
    }

    /// Apply a constant renaming to every relation (the ρ of the genericity condition).
    pub fn map_constants(&self, mut f: impl FnMut(&Constant) -> Constant) -> Instance {
        Instance {
            relations: self
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), r.map_constants(&mut f)))
                .collect(),
        }
    }

    /// Equality up to empty relations: relations that are present but empty are ignored.
    ///
    /// The paper identifies an instance with the *set of facts* it holds; an empty relation
    /// carries no facts, so `{R: {}, S: {(1)}}` and `{S: {(1)}}` describe the same world.
    /// Views and decision procedures use this comparison.
    pub fn same_facts(&self, other: &Instance) -> bool {
        let non_empty = |i: &Instance| -> BTreeMap<String, Relation> {
            i.relations
                .iter()
                .filter(|(_, r)| !r.is_empty())
                .map(|(n, r)| (n.clone(), r.clone()))
                .collect()
        };
        non_empty(self) == non_empty(other)
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Instance {{")?;
        for (name, rel) in &self.relations {
            writeln!(f, "  {name}/{}: {rel}", rel.arity())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rel, tup};

    fn sample() -> Instance {
        let mut i = Instance::new();
        i.insert_relation("R", rel![[1, 2], [2, 3]]);
        i.insert_relation("S", rel![[5]]);
        i
    }

    #[test]
    fn insert_fact_creates_and_checks_arity() {
        let mut i = Instance::new();
        assert!(i.insert_fact("R", tup![1, 2]).unwrap());
        assert!(!i.insert_fact("R", tup![1, 2]).unwrap());
        let err = i.insert_fact("R", tup![1]).unwrap_err();
        assert!(matches!(err, SchemaError::ArityConflict { .. }));
    }

    #[test]
    fn lookup_and_counts() {
        let i = sample();
        assert_eq!(i.relation_count(), 2);
        assert_eq!(i.fact_count(), 3);
        assert!(i.contains_fact("R", &tup![1, 2]));
        assert!(!i.contains_fact("R", &tup![9, 9]));
        assert!(i.relation("T").is_none());
        assert_eq!(i.relation_or_empty("T", 4).arity(), 4);
    }

    #[test]
    fn subinstance_and_same_facts() {
        let i = sample();
        let mut j = i.clone();
        j.insert_fact("R", tup![7, 7]).unwrap();
        assert!(i.is_subinstance_of(&j));
        assert!(!j.is_subinstance_of(&i));

        let mut with_empty = i.clone();
        with_empty.insert_relation("Empty", Relation::empty(3));
        assert!(with_empty.same_facts(&i));
        assert_ne!(
            with_empty, i,
            "strict equality still sees the empty relation"
        );
    }

    #[test]
    fn active_domain_unions_relations() {
        let dom = sample().active_domain();
        assert_eq!(dom.len(), 4);
        assert!(dom.contains(&Constant::int(5)));
    }

    #[test]
    fn map_constants_applies_everywhere() {
        let renamed = sample().map_constants(|c| match c {
            Constant::Int(i) => Constant::Int(i * 10),
            c => c.clone(),
        });
        assert!(renamed.contains_fact("S", &tup![50]));
        assert!(renamed.contains_fact("R", &tup![20, 30]));
    }
}
