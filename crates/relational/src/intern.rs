//! Interned symbols: the dictionary-encoded twin of [`Constant`].
//!
//! Every decision procedure of the upper crates bottoms out in millions of term
//! comparisons and copies inside backtracking searches.  With [`Constant::Str`] in the hot
//! data model each of those is a heap clone plus a byte-by-byte compare; dictionary
//! encoding — intern every constant once at the front door, run the engine over
//! machine-word ids — turns them into register moves and integer compares, the same move
//! production Datalog engines (e.g. Vadalog) rely on for their throughput.
//!
//! The encoding is a hybrid:
//!
//! * [`Sym::Int`] and [`Sym::Bool`] carry their value **inline** — integers and booleans
//!   are already machine words, so routing them through a table would only add lock
//!   traffic (and would make context-free construction like `Term::from(3)` impossible);
//! * [`Sym::Str`] is a [`StrId`] — a `u32` index into a [`SymbolTable`].
//!
//! A `Sym` is therefore a two-word `Copy` value whose `==` is a plain value compare, and
//! [`SymbolTable`] realises the `Constant ↔ Sym` mapping the hot paths are built on.
//!
//! # Tables, the global table, and isolation
//!
//! A [`SymbolTable`] is an append-only, thread-safe interner: `intern` on a hit takes a
//! read lock only, so the parallel engine's workers can resolve and intern concurrently
//! through a shared handle (`Arc<SymbolTable>`).  Ids are only meaningful relative to the
//! table that issued them.
//!
//! Two usage modes exist:
//!
//! * **The global table** ([`SymbolTable::global`]) backs every context-free conversion
//!   (`Term::from("a")`, `Sym::from(&constant)`, `Display`).  This is the default: all
//!   values built through the ordinary constructors share it, so ids are comparable across
//!   databases within a process.
//! * **Private tables** (`SymbolTable::new`) give a session its own id space — a
//!   long-lived service can drop a session's table to reclaim its dictionary.  A database
//!   built against a private table must intern every constant through that table (the
//!   "all ids resolved at the front door" invariant); mixing ids from different tables is
//!   meaningless, exactly like comparing row-ids across two unrelated databases.
//!
//! # The relation catalog
//!
//! Constants are only half of the string traffic: every request also *addresses a
//! relation*, and a relation name is a string too.  A [`Catalog`] is the relation-side
//! twin of the [`SymbolTable`]: it interns relation names once, at registration, and hands
//! out dense `Copy` [`RelId`]s that the storage and decision layers use as shard keys —
//! `db.table(name)` survives only as a boundary resolver that performs the one name→id
//! lookup per request.
//!
//! A [`Symbols`] value bundles the two id spaces (constants + relations) into the single
//! context a database session owns: the global default ([`Symbols::global`]) backs every
//! context-free construction, and private spaces ([`Symbols::new`]) give a session its own
//! dictionary *and* its own catalog, dropped together when the session ends.  The
//! handle-threading rule is the same as for constants: **no layer below the front door may
//! touch the global table implicitly** — the handle travels explicitly with the database.

use crate::Constant;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Index of an interned string in a [`SymbolTable`].
///
/// Ordering is by id (allocation order), **not** lexicographic: canonical orders built
/// over `Sym`s are deterministic for a fixed construction order but do not sort strings
/// alphabetically.  Nothing in the decision procedures depends on the lexicographic order
/// of string constants — only on equality — so this is safe; resolve to [`Constant`] at
/// the boundary when a human-facing order matters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(u32);

impl StrId {
    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

/// An interned constant: a two-word `Copy` value with machine-word equality.
///
/// Variant order mirrors [`Constant`] so the derived ordering groups the same way
/// (integers, then strings, then booleans).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sym {
    /// An integer constant, carried inline.
    Int(i64),
    /// A string constant, as an id into a [`SymbolTable`].
    Str(StrId),
    /// A boolean constant, carried inline.
    Bool(bool),
}

impl Sym {
    /// Intern a constant in the **global** table.
    pub fn of(c: &Constant) -> Sym {
        SymbolTable::global().intern(c)
    }

    /// Resolve against the **global** table.
    ///
    /// # Panics
    /// Panics on a [`Sym::Str`] id issued by a private table (see the module docs); ids
    /// produced by the ordinary constructors always resolve.
    pub fn constant(self) -> Constant {
        SymbolTable::global()
            .resolve(self)
            .expect("Sym id was not issued by the global table")
    }

    /// The inline integer value, if any.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Sym::Int(i) => Some(i),
            _ => None,
        }
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Int(i) => write!(f, "{i}"),
            Sym::Bool(b) => write!(f, "{b}"),
            Sym::Str(id) => match SymbolTable::global().resolve_str(*id) {
                Some(s) => write!(f, "{s}"),
                None => write!(f, "⟨str#{}⟩", id.0),
            },
        }
    }
}

impl From<i64> for Sym {
    fn from(value: i64) -> Self {
        Sym::Int(value)
    }
}

impl From<i32> for Sym {
    fn from(value: i32) -> Self {
        Sym::Int(i64::from(value))
    }
}

impl From<bool> for Sym {
    fn from(value: bool) -> Self {
        Sym::Bool(value)
    }
}

impl From<&str> for Sym {
    fn from(value: &str) -> Self {
        Sym::Str(SymbolTable::global().intern_str(value))
    }
}

impl From<&Constant> for Sym {
    fn from(value: &Constant) -> Self {
        Sym::of(value)
    }
}

impl From<Constant> for Sym {
    fn from(value: Constant) -> Self {
        Sym::of(&value)
    }
}

#[derive(Default)]
struct Inner {
    ids: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

/// A thread-safe, append-only `Constant ↔ Sym` dictionary.
///
/// `intern` of an already-known string takes only a read lock; misses upgrade to a write
/// lock with a double-check.  Ids are dense and never recycled, so `resolve_str` is an
/// array index.
#[derive(Default)]
pub struct SymbolTable {
    inner: RwLock<Inner>,
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolTable")
            .field("len", &self.len())
            .finish()
    }
}

static GLOBAL: OnceLock<Arc<SymbolTable>> = OnceLock::new();

impl SymbolTable {
    /// A fresh, private table with its own id space.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// The process-wide table backing the context-free conversions.
    pub fn global() -> &'static SymbolTable {
        GLOBAL.get_or_init(|| Arc::new(SymbolTable::new()))
    }

    /// A shared handle to the global table (the same table [`SymbolTable::global`]
    /// returns), for storing on a database/engine session.
    pub fn global_handle() -> Arc<SymbolTable> {
        SymbolTable::global();
        Arc::clone(GLOBAL.get().expect("initialised on the previous line"))
    }

    /// Intern a string, returning its id (allocating one on first sight).
    pub fn intern_str(&self, s: &str) -> StrId {
        {
            let inner = self.inner.read().expect("symbol table poisoned");
            if let Some(&id) = inner.ids.get(s) {
                return StrId(id);
            }
        }
        let mut inner = self.inner.write().expect("symbol table poisoned");
        if let Some(&id) = inner.ids.get(s) {
            return StrId(id);
        }
        let id = u32::try_from(inner.strings.len()).expect("more than u32::MAX symbols");
        let shared: Arc<str> = Arc::from(s);
        inner.strings.push(Arc::clone(&shared));
        inner.ids.insert(shared, id);
        StrId(id)
    }

    /// The string behind an id, if this table issued it.
    pub fn resolve_str(&self, id: StrId) -> Option<Arc<str>> {
        let inner = self.inner.read().expect("symbol table poisoned");
        inner.strings.get(id.0 as usize).cloned()
    }

    /// Intern a constant (integers and booleans pass through inline).
    pub fn intern(&self, c: &Constant) -> Sym {
        match c {
            Constant::Int(i) => Sym::Int(*i),
            Constant::Bool(b) => Sym::Bool(*b),
            Constant::Str(s) => Sym::Str(self.intern_str(s)),
        }
    }

    /// Resolve a symbol back to a constant; `None` for a string id this table did not
    /// issue.
    pub fn resolve(&self, sym: Sym) -> Option<Constant> {
        match sym {
            Sym::Int(i) => Some(Constant::Int(i)),
            Sym::Bool(b) => Some(Constant::Bool(b)),
            Sym::Str(id) => self.resolve_str(id).map(Constant::Str),
        }
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("symbol table poisoned")
            .strings
            .len()
    }

    /// Whether no string has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Id of a relation registered in a [`Catalog`].
///
/// A `RelId` is the machine-word address of a relation: shard maps, cache keys and work
/// lists below the decision front door carry `RelId`s where they used to carry `String`
/// names.  Ids are dense (allocated `0, 1, 2, …` in registration order) and never
/// recycled, so they double as direct indices into per-catalog side tables.  Like
/// [`StrId`], a `RelId` is only meaningful relative to the catalog that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(u32);

impl RelId {
    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

#[derive(Default)]
struct CatalogInner {
    ids: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

/// A thread-safe, append-only relation-name ↔ [`RelId`] dictionary.
///
/// `register` of an already-known name takes only a read lock; misses upgrade to a write
/// lock with a double-check — the same discipline as [`SymbolTable::intern_str`], so
/// concurrent sessions can register and resolve relations through a shared handle.
#[derive(Default)]
pub struct Catalog {
    inner: RwLock<CatalogInner>,
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog").field("len", &self.len()).finish()
    }
}

impl Catalog {
    /// A fresh, private catalog with its own id space.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a relation name, returning its id (allocating one on first sight).
    pub fn register(&self, name: &str) -> RelId {
        {
            let inner = self.inner.read().expect("catalog poisoned");
            if let Some(&id) = inner.ids.get(name) {
                return RelId(id);
            }
        }
        let mut inner = self.inner.write().expect("catalog poisoned");
        if let Some(&id) = inner.ids.get(name) {
            return RelId(id);
        }
        let id = u32::try_from(inner.names.len()).expect("more than u32::MAX relations");
        let shared: Arc<str> = Arc::from(name);
        inner.names.push(Arc::clone(&shared));
        inner.ids.insert(shared, id);
        RelId(id)
    }

    /// The id of a name, if it has been registered — the boundary resolver (this is the
    /// one name hash a request pays).
    pub fn lookup(&self, name: &str) -> Option<RelId> {
        let inner = self.inner.read().expect("catalog poisoned");
        inner.ids.get(name).copied().map(RelId)
    }

    /// The name behind an id, if this catalog issued it.
    pub fn name(&self, id: RelId) -> Option<Arc<str>> {
        let inner = self.inner.read().expect("catalog poisoned");
        inner.names.get(id.0 as usize).cloned()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.inner.read().expect("catalog poisoned").names.len()
    }

    /// Whether no relation has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The id-space context of a database session: the constant dictionary
/// ([`SymbolTable`]) and the relation [`Catalog`], bundled so the two travel (and are
/// dropped) together.
///
/// Databases hold an `Arc<Symbols>` handle; everything below the front door resolves and
/// interns **through that handle only**.  Two modes, exactly as for [`SymbolTable`]:
///
/// * [`Symbols::global`] / [`Symbols::global_handle`] — the process-wide default backing
///   the context-free constructors.  Its string side *is* [`SymbolTable::global`], so ids
///   built via `Term::from("a")` resolve through it.
/// * [`Symbols::new`] — a fully private id space (private constants *and* private
///   relation ids) for a session-scoped dictionary.
#[derive(Debug)]
pub struct Symbols {
    strings: Arc<SymbolTable>,
    catalog: Catalog,
}

impl Default for Symbols {
    fn default() -> Self {
        Symbols::new()
    }
}

static GLOBAL_SYMBOLS: OnceLock<Arc<Symbols>> = OnceLock::new();

impl Symbols {
    /// A fresh, fully private context: its own constant dictionary and its own catalog.
    pub fn new() -> Self {
        Symbols {
            strings: Arc::new(SymbolTable::new()),
            catalog: Catalog::new(),
        }
    }

    /// Wrap an existing (typically private) string table with a fresh catalog.
    pub fn with_table(strings: Arc<SymbolTable>) -> Self {
        Symbols {
            strings,
            catalog: Catalog::new(),
        }
    }

    /// The process-wide context backing the context-free conversions.  Its string side is
    /// the same table as [`SymbolTable::global`].
    pub fn global() -> &'static Symbols {
        GLOBAL_SYMBOLS.get_or_init(|| {
            Arc::new(Symbols {
                strings: SymbolTable::global_handle(),
                catalog: Catalog::new(),
            })
        })
    }

    /// A shared handle to the global context, for storing on a database/engine session.
    pub fn global_handle() -> Arc<Symbols> {
        Symbols::global();
        Arc::clone(
            GLOBAL_SYMBOLS
                .get()
                .expect("initialised on the previous line"),
        )
    }

    /// The constant dictionary.
    pub fn strings(&self) -> &Arc<SymbolTable> {
        &self.strings
    }

    /// The relation catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Intern a constant through this context's dictionary.
    pub fn intern(&self, c: &Constant) -> Sym {
        self.strings.intern(c)
    }

    /// Resolve a symbol issued by this context's dictionary.
    pub fn resolve(&self, sym: Sym) -> Option<Constant> {
        self.strings.resolve(sym)
    }

    /// Register a relation name in this context's catalog.
    pub fn register_relation(&self, name: &str) -> RelId {
        self.catalog.register(name)
    }

    /// Resolve a relation name to its id, if registered.
    pub fn relation_id(&self, name: &str) -> Option<RelId> {
        self.catalog.lookup(name)
    }

    /// Resolve a relation id back to its name, if this context's catalog issued it.
    pub fn relation_name(&self, id: RelId) -> Option<Arc<str>> {
        self.catalog.name(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_constant_sym() {
        let table = SymbolTable::new();
        for c in [
            Constant::int(42),
            Constant::int(-3),
            Constant::Bool(true),
            Constant::str("alice"),
            Constant::str("bob"),
            Constant::str(""),
        ] {
            let sym = table.intern(&c);
            assert_eq!(table.resolve(sym), Some(c.clone()), "round trip of {c:?}");
            assert_eq!(table.intern(&c), sym, "interning is stable");
        }
        assert_eq!(table.len(), 3, "only strings occupy the table");
    }

    #[test]
    fn equal_strings_share_one_id_distinct_strings_do_not() {
        let table = SymbolTable::new();
        let a = table.intern_str("same");
        let b = table.intern_str("same");
        let c = table.intern_str("other");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tables_are_isolated() {
        let t1 = SymbolTable::new();
        let t2 = SymbolTable::new();
        let a1 = t1.intern_str("a");
        let b2 = t2.intern_str("b");
        let a2 = t2.intern_str("a");
        // Same raw index, different tables, different meanings.
        assert_eq!(a1.index(), b2.index());
        assert_ne!(a2.index(), a1.index());
        assert_eq!(t1.resolve_str(a1).as_deref(), Some("a"));
        assert_eq!(t2.resolve_str(StrId(0)).as_deref(), Some("b"));
        // Foreign ids do not resolve.
        assert_eq!(t1.resolve_str(StrId(7)), None);
    }

    #[test]
    fn global_conversions_are_consistent() {
        let s = Sym::from("globally-interned");
        assert_eq!(Sym::from("globally-interned"), s);
        assert_eq!(s.constant(), Constant::str("globally-interned"));
        assert_eq!(Sym::from(7i64), Sym::Int(7));
        assert_eq!(Sym::from(7i64).constant(), Constant::int(7));
        assert_eq!(Sym::from(true).constant(), Constant::Bool(true));
        assert_eq!(s.to_string(), "globally-interned");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let table = SymbolTable::new();
        let ids: Vec<Vec<StrId>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let table = &table;
                    scope.spawn(move || {
                        (0..64)
                            .map(|i| table.intern_str(&format!("k{i}")))
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("interner thread panicked"))
                .collect()
        });
        for w in &ids[1..] {
            assert_eq!(*w, ids[0], "every thread sees the same ids");
        }
        assert_eq!(table.len(), 64);
    }

    #[test]
    fn catalog_round_trips_and_is_stable() {
        let cat = Catalog::new();
        let r = cat.register("R");
        let s = cat.register("S");
        assert_ne!(r, s);
        assert_eq!(cat.register("R"), r, "registration is idempotent");
        assert_eq!(cat.lookup("R"), Some(r));
        assert_eq!(cat.lookup("Nope"), None);
        assert_eq!(cat.name(r).as_deref(), Some("R"));
        assert_eq!(cat.name(RelId(7)), None);
        assert_eq!(cat.len(), 2);
        assert!(!cat.is_empty());
    }

    #[test]
    fn catalog_ids_are_dense_in_registration_order() {
        let cat = Catalog::new();
        for (i, name) in ["R", "S", "T", "U"].iter().enumerate() {
            assert_eq!(cat.register(name).index(), i as u32);
        }
    }

    #[test]
    fn private_catalogs_are_isolated() {
        let c1 = Catalog::new();
        let c2 = Catalog::new();
        let r1 = c1.register("R");
        let s2 = c2.register("S");
        // Same raw index, different catalogs, different meanings.
        assert_eq!(r1.index(), s2.index());
        assert_eq!(c1.name(r1).as_deref(), Some("R"));
        assert_eq!(c2.name(s2).as_deref(), Some("S"));
        assert_eq!(c2.lookup("R"), None);
        assert_eq!(c1.lookup("S"), None);
    }

    #[test]
    fn concurrent_registration_agrees() {
        let cat = Catalog::new();
        let ids: Vec<Vec<RelId>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let cat = &cat;
                    scope
                        .spawn(move || (0..64).map(|i| cat.register(&format!("rel-{i}"))).collect())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("catalog thread panicked"))
                .collect()
        });
        for w in &ids[1..] {
            assert_eq!(*w, ids[0], "every thread sees the same ids");
        }
        assert_eq!(cat.len(), 64);
    }

    #[test]
    fn symbols_bundles_dictionary_and_catalog() {
        let syms = Symbols::new();
        let sym = syms.intern(&Constant::str("only-here"));
        assert_eq!(syms.resolve(sym), Some(Constant::str("only-here")));
        let rel = syms.register_relation("orders-private-only");
        assert_eq!(syms.relation_id("orders-private-only"), Some(rel));
        assert_eq!(
            syms.relation_name(rel).as_deref(),
            Some("orders-private-only")
        );
        // Fully private: the registration does not leak into the global catalog.
        assert_eq!(Symbols::global().relation_id("orders-private-only"), None);
    }

    #[test]
    fn global_symbols_share_the_global_string_table() {
        let via_symbols = Symbols::global().intern(&Constant::str("shared-global-entry"));
        let via_table = Sym::from("shared-global-entry");
        assert_eq!(via_symbols, via_table);
        assert!(Arc::ptr_eq(
            Symbols::global().strings(),
            &SymbolTable::global_handle()
        ));
    }
}
