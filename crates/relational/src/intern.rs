//! Interned symbols: the dictionary-encoded twin of [`Constant`].
//!
//! Every decision procedure of the upper crates bottoms out in millions of term
//! comparisons and copies inside backtracking searches.  With [`Constant::Str`] in the hot
//! data model each of those is a heap clone plus a byte-by-byte compare; dictionary
//! encoding — intern every constant once at the front door, run the engine over
//! machine-word ids — turns them into register moves and integer compares, the same move
//! production Datalog engines (e.g. Vadalog) rely on for their throughput.
//!
//! The encoding is a hybrid:
//!
//! * [`Sym::Int`] and [`Sym::Bool`] carry their value **inline** — integers and booleans
//!   are already machine words, so routing them through a table would only add lock
//!   traffic (and would make context-free construction like `Term::from(3)` impossible);
//! * [`Sym::Str`] is a [`StrId`] — a `u32` index into a [`SymbolTable`].
//!
//! A `Sym` is therefore a two-word `Copy` value whose `==` is a plain value compare, and
//! [`SymbolTable`] realises the `Constant ↔ Sym` mapping the hot paths are built on.
//!
//! # Tables, the global table, and isolation
//!
//! A [`SymbolTable`] is an append-only, thread-safe interner: `intern` on a hit takes a
//! read lock only, so the parallel engine's workers can resolve and intern concurrently
//! through a shared handle (`Arc<SymbolTable>`).  Ids are only meaningful relative to the
//! table that issued them.
//!
//! Two usage modes exist:
//!
//! * **The global table** ([`SymbolTable::global`]) backs every context-free conversion
//!   (`Term::from("a")`, `Sym::from(&constant)`, `Display`).  This is the default: all
//!   values built through the ordinary constructors share it, so ids are comparable across
//!   databases within a process.
//! * **Private tables** (`SymbolTable::new`) give a session its own id space — a
//!   long-lived service can drop a session's table to reclaim its dictionary.  A database
//!   built against a private table must intern every constant through that table (the
//!   "all ids resolved at the front door" invariant); mixing ids from different tables is
//!   meaningless, exactly like comparing row-ids across two unrelated databases.

use crate::Constant;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Index of an interned string in a [`SymbolTable`].
///
/// Ordering is by id (allocation order), **not** lexicographic: canonical orders built
/// over `Sym`s are deterministic for a fixed construction order but do not sort strings
/// alphabetically.  Nothing in the decision procedures depends on the lexicographic order
/// of string constants — only on equality — so this is safe; resolve to [`Constant`] at
/// the boundary when a human-facing order matters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(u32);

impl StrId {
    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

/// An interned constant: a two-word `Copy` value with machine-word equality.
///
/// Variant order mirrors [`Constant`] so the derived ordering groups the same way
/// (integers, then strings, then booleans).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sym {
    /// An integer constant, carried inline.
    Int(i64),
    /// A string constant, as an id into a [`SymbolTable`].
    Str(StrId),
    /// A boolean constant, carried inline.
    Bool(bool),
}

impl Sym {
    /// Intern a constant in the **global** table.
    pub fn of(c: &Constant) -> Sym {
        SymbolTable::global().intern(c)
    }

    /// Resolve against the **global** table.
    ///
    /// # Panics
    /// Panics on a [`Sym::Str`] id issued by a private table (see the module docs); ids
    /// produced by the ordinary constructors always resolve.
    pub fn constant(self) -> Constant {
        SymbolTable::global()
            .resolve(self)
            .expect("Sym id was not issued by the global table")
    }

    /// The inline integer value, if any.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Sym::Int(i) => Some(i),
            _ => None,
        }
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Int(i) => write!(f, "{i}"),
            Sym::Bool(b) => write!(f, "{b}"),
            Sym::Str(id) => match SymbolTable::global().resolve_str(*id) {
                Some(s) => write!(f, "{s}"),
                None => write!(f, "⟨str#{}⟩", id.0),
            },
        }
    }
}

impl From<i64> for Sym {
    fn from(value: i64) -> Self {
        Sym::Int(value)
    }
}

impl From<i32> for Sym {
    fn from(value: i32) -> Self {
        Sym::Int(i64::from(value))
    }
}

impl From<bool> for Sym {
    fn from(value: bool) -> Self {
        Sym::Bool(value)
    }
}

impl From<&str> for Sym {
    fn from(value: &str) -> Self {
        Sym::Str(SymbolTable::global().intern_str(value))
    }
}

impl From<&Constant> for Sym {
    fn from(value: &Constant) -> Self {
        Sym::of(value)
    }
}

impl From<Constant> for Sym {
    fn from(value: Constant) -> Self {
        Sym::of(&value)
    }
}

#[derive(Default)]
struct Inner {
    ids: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

/// A thread-safe, append-only `Constant ↔ Sym` dictionary.
///
/// `intern` of an already-known string takes only a read lock; misses upgrade to a write
/// lock with a double-check.  Ids are dense and never recycled, so `resolve_str` is an
/// array index.
#[derive(Default)]
pub struct SymbolTable {
    inner: RwLock<Inner>,
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolTable")
            .field("len", &self.len())
            .finish()
    }
}

static GLOBAL: OnceLock<Arc<SymbolTable>> = OnceLock::new();

impl SymbolTable {
    /// A fresh, private table with its own id space.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// The process-wide table backing the context-free conversions.
    pub fn global() -> &'static SymbolTable {
        &**GLOBAL.get_or_init(|| Arc::new(SymbolTable::new()))
    }

    /// A shared handle to the global table (the same table [`SymbolTable::global`]
    /// returns), for storing on a database/engine session.
    pub fn global_handle() -> Arc<SymbolTable> {
        SymbolTable::global();
        Arc::clone(GLOBAL.get().expect("initialised on the previous line"))
    }

    /// Intern a string, returning its id (allocating one on first sight).
    pub fn intern_str(&self, s: &str) -> StrId {
        {
            let inner = self.inner.read().expect("symbol table poisoned");
            if let Some(&id) = inner.ids.get(s) {
                return StrId(id);
            }
        }
        let mut inner = self.inner.write().expect("symbol table poisoned");
        if let Some(&id) = inner.ids.get(s) {
            return StrId(id);
        }
        let id = u32::try_from(inner.strings.len()).expect("more than u32::MAX symbols");
        let shared: Arc<str> = Arc::from(s);
        inner.strings.push(Arc::clone(&shared));
        inner.ids.insert(shared, id);
        StrId(id)
    }

    /// The string behind an id, if this table issued it.
    pub fn resolve_str(&self, id: StrId) -> Option<Arc<str>> {
        let inner = self.inner.read().expect("symbol table poisoned");
        inner.strings.get(id.0 as usize).cloned()
    }

    /// Intern a constant (integers and booleans pass through inline).
    pub fn intern(&self, c: &Constant) -> Sym {
        match c {
            Constant::Int(i) => Sym::Int(*i),
            Constant::Bool(b) => Sym::Bool(*b),
            Constant::Str(s) => Sym::Str(self.intern_str(s)),
        }
    }

    /// Resolve a symbol back to a constant; `None` for a string id this table did not
    /// issue.
    pub fn resolve(&self, sym: Sym) -> Option<Constant> {
        match sym {
            Sym::Int(i) => Some(Constant::Int(i)),
            Sym::Bool(b) => Some(Constant::Bool(b)),
            Sym::Str(id) => self.resolve_str(id).map(Constant::Str),
        }
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("symbol table poisoned")
            .strings
            .len()
    }

    /// Whether no string has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_constant_sym() {
        let table = SymbolTable::new();
        for c in [
            Constant::int(42),
            Constant::int(-3),
            Constant::Bool(true),
            Constant::str("alice"),
            Constant::str("bob"),
            Constant::str(""),
        ] {
            let sym = table.intern(&c);
            assert_eq!(table.resolve(sym), Some(c.clone()), "round trip of {c:?}");
            assert_eq!(table.intern(&c), sym, "interning is stable");
        }
        assert_eq!(table.len(), 3, "only strings occupy the table");
    }

    #[test]
    fn equal_strings_share_one_id_distinct_strings_do_not() {
        let table = SymbolTable::new();
        let a = table.intern_str("same");
        let b = table.intern_str("same");
        let c = table.intern_str("other");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tables_are_isolated() {
        let t1 = SymbolTable::new();
        let t2 = SymbolTable::new();
        let a1 = t1.intern_str("a");
        let b2 = t2.intern_str("b");
        let a2 = t2.intern_str("a");
        // Same raw index, different tables, different meanings.
        assert_eq!(a1.index(), b2.index());
        assert_ne!(a2.index(), a1.index());
        assert_eq!(t1.resolve_str(a1).as_deref(), Some("a"));
        assert_eq!(t2.resolve_str(StrId(0)).as_deref(), Some("b"));
        // Foreign ids do not resolve.
        assert_eq!(t1.resolve_str(StrId(7)), None);
    }

    #[test]
    fn global_conversions_are_consistent() {
        let s = Sym::from("globally-interned");
        assert_eq!(Sym::from("globally-interned"), s);
        assert_eq!(s.constant(), Constant::str("globally-interned"));
        assert_eq!(Sym::from(7i64), Sym::Int(7));
        assert_eq!(Sym::from(7i64).constant(), Constant::int(7));
        assert_eq!(Sym::from(true).constant(), Constant::Bool(true));
        assert_eq!(s.to_string(), "globally-interned");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let table = SymbolTable::new();
        let ids: Vec<Vec<StrId>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let table = &table;
                    scope.spawn(move || {
                        (0..64)
                            .map(|i| table.intern_str(&format!("k{i}")))
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("interner thread panicked"))
                .collect()
        });
        for w in &ids[1..] {
            assert_eq!(*w, ids[0], "every thread sees the same ids");
        }
        assert_eq!(table.len(), 64);
    }
}
