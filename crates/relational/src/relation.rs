//! Relations: finite, arity-checked sets of facts.

use crate::{Constant, Tuple};
use std::collections::BTreeSet;
use std::fmt;

/// Error raised when a tuple of the wrong width is inserted into a relation, or when an
/// algebra operator is applied to relations of incompatible arities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArityError {
    /// Expected arity.
    pub expected: usize,
    /// Arity that was actually supplied.
    pub found: usize,
    /// Human-readable context for the failure.
    pub context: &'static str,
}

impl fmt::Display for ArityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "arity mismatch in {}: expected {}, found {}",
            self.context, self.expected, self.found
        )
    }
}

impl std::error::Error for ArityError {}

/// A relation of fixed arity: a finite set of [`Tuple`]s.
///
/// The representation is a `BTreeSet`, so two relations containing the same facts compare
/// equal regardless of insertion order, and iteration order is deterministic.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// Create an empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Create a relation from tuples, checking that all have the given arity.
    pub fn new(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Result<Self, ArityError> {
        let mut r = Relation::empty(arity);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// Create a relation from tuples, panicking on arity mismatch.
    ///
    /// Intended for tests, examples and reductions where the arity is statically known.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        Relation::new(arity, tuples).expect("tuple arity mismatch")
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no facts.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a fact, checking arity.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, ArityError> {
        if t.arity() != self.arity {
            return Err(ArityError {
                expected: self.arity,
                found: t.arity(),
                context: "Relation::insert",
            });
        }
        Ok(self.tuples.insert(t))
    }

    /// Whether the fact is present.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate over the facts in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + Clone {
        self.tuples.iter()
    }

    /// Set-containment of relations (⊆). Relations of different arities are incomparable
    /// unless one of them is empty.
    pub fn is_subset(&self, other: &Relation) -> bool {
        if self.is_empty() {
            return true;
        }
        self.arity == other.arity && self.tuples.is_subset(&other.tuples)
    }

    /// All constants appearing in the relation (its active domain).
    pub fn active_domain(&self) -> BTreeSet<Constant> {
        self.tuples.iter().flat_map(|t| t.iter().cloned()).collect()
    }

    /// Apply a constant-renaming function to every fact, producing a new relation.
    ///
    /// Used by the genericity utilities ("for all bijections ρ on 𝒟, q(ρ(I)) = ρ(q(I))").
    pub fn map_constants(&self, mut f: impl FnMut(&Constant) -> Constant) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self.tuples.iter().map(|t| t.map(&mut f)).collect(),
        }
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

impl IntoIterator for Relation {
    type Item = Tuple;
    type IntoIter = std::collections::btree_set::IntoIter<Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.into_iter()
    }
}

/// Convenience macro for building a [`Relation`] from rows of values convertible into
/// [`Constant`].
///
/// ```
/// use pw_relational::rel;
/// let r = rel![[1, 2], [3, 4]];
/// assert_eq!(r.arity(), 2);
/// assert_eq!(r.len(), 2);
/// ```
#[macro_export]
macro_rules! rel {
    () => { $crate::Relation::empty(0) };
    ($([$($x:expr),* $(,)?]),+ $(,)?) => {{
        let rows = vec![$($crate::tup![$($x),*]),+];
        let arity = rows[0].arity();
        $crate::Relation::from_tuples(arity, rows)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    #[test]
    fn insert_checks_arity() {
        let mut r = Relation::empty(2);
        assert!(r.insert(tup![1, 2]).unwrap());
        assert!(
            !r.insert(tup![1, 2]).unwrap(),
            "duplicate insert is a no-op"
        );
        let err = r.insert(tup![1]).unwrap_err();
        assert_eq!(err.expected, 2);
        assert_eq!(err.found, 1);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = Relation::from_tuples(2, [tup![1, 2], tup![3, 4]]);
        let b = Relation::from_tuples(2, [tup![3, 4], tup![1, 2]]);
        assert_eq!(a, b);
    }

    #[test]
    fn subset_and_active_domain() {
        let a = rel![[1, 2]];
        let b = rel![[1, 2], [3, 4]];
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(
            Relation::empty(7).is_subset(&b),
            "empty relation is a subset of anything"
        );
        let dom = b.active_domain();
        assert_eq!(dom.len(), 4);
        assert!(dom.contains(&Constant::int(3)));
    }

    #[test]
    fn map_constants_renames() {
        let r = rel![[1, 2], [2, 3]];
        let shifted = r.map_constants(|c| match c {
            Constant::Int(i) => Constant::Int(i + 10),
            other => other.clone(),
        });
        assert!(shifted.contains(&tup![11, 12]));
        assert!(shifted.contains(&tup![12, 13]));
        assert_eq!(shifted.len(), 2);
    }

    #[test]
    fn display_is_set_notation() {
        let r = rel![[1, 2]];
        assert_eq!(r.to_string(), "{(1, 2)}");
    }
}
