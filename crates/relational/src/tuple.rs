//! Tuples (facts) over constants.

use crate::Constant;
use std::fmt;
use std::ops::Index;

/// A fact: an ordered list of constants.
///
/// The paper calls a tuple belonging to a relation a *fact*.  Tuples are immutable once
/// built; all algebra operators produce new tuples.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple(Vec<Constant>);

impl Tuple {
    /// Create a tuple from constants.
    pub fn new(values: impl IntoIterator<Item = Constant>) -> Self {
        Tuple(values.into_iter().collect())
    }

    /// The empty (arity-0) tuple.  The paper uses it to describe the representation of the
    /// "relation with only the empty fact".
    pub fn empty() -> Self {
        Tuple(Vec::new())
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the empty tuple.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Component access.
    pub fn get(&self, i: usize) -> Option<&Constant> {
        self.0.get(i)
    }

    /// Iterate over components.
    pub fn iter(&self) -> std::slice::Iter<'_, Constant> {
        self.0.iter()
    }

    /// Borrow the components as a slice.
    pub fn as_slice(&self) -> &[Constant] {
        &self.0
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<Constant> {
        self.0
    }

    /// Project onto the given column indices (columns may repeat or reorder).
    ///
    /// # Panics
    /// Panics if an index is out of bounds; algebra-level callers validate indices first.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Concatenate two tuples (used by product/join).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Append extra constant columns.
    pub fn extend_with(&self, extra: &[Constant]) -> Tuple {
        let mut v = self.0.clone();
        v.extend_from_slice(extra);
        Tuple(v)
    }

    /// Apply a function to every constant, producing a new tuple.
    pub fn map(&self, mut f: impl FnMut(&Constant) -> Constant) -> Tuple {
        Tuple(self.0.iter().map(&mut f).collect())
    }
}

impl Index<usize> for Tuple {
    type Output = Constant;

    fn index(&self, index: usize) -> &Self::Output {
        &self.0[index]
    }
}

impl FromIterator<Constant> for Tuple {
    fn from_iter<T: IntoIterator<Item = Constant>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Constant;
    type IntoIter = std::slice::Iter<'a, Constant>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl IntoIterator for Tuple {
    type Item = Constant;
    type IntoIter = std::vec::IntoIter<Constant>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl From<Vec<Constant>> for Tuple {
    fn from(value: Vec<Constant>) -> Self {
        Tuple(value)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro for building a [`Tuple`] from values convertible into [`Constant`].
///
/// ```
/// use pw_relational::{tup, Constant};
/// let t = tup![1, "a", 2];
/// assert_eq!(t.arity(), 3);
/// assert_eq!(t[1], Constant::str("a"));
/// ```
#[macro_export]
macro_rules! tup {
    ($($x:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Constant::from($x)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t123() -> Tuple {
        Tuple::new([Constant::int(1), Constant::int(2), Constant::int(3)])
    }

    #[test]
    fn arity_and_index() {
        let t = t123();
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Constant::int(1));
        assert_eq!(t.get(2), Some(&Constant::int(3)));
        assert_eq!(t.get(3), None);
        assert!(!t.is_empty());
        assert!(Tuple::empty().is_empty());
    }

    #[test]
    fn projection_reorders_and_duplicates() {
        let t = t123();
        assert_eq!(
            t.project(&[2, 0, 0]),
            Tuple::new([Constant::int(3), Constant::int(1), Constant::int(1)])
        );
    }

    #[test]
    fn concat_and_extend() {
        let t = t123();
        let u = Tuple::new([Constant::str("a")]);
        assert_eq!(t.concat(&u).arity(), 4);
        assert_eq!(t.extend_with(&[Constant::int(9)])[3], Constant::int(9));
    }

    #[test]
    fn display_formats_as_paren_list() {
        assert_eq!(t123().to_string(), "(1, 2, 3)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    #[test]
    fn tup_macro_builds_mixed_tuples() {
        let t = tup![1, "x", true];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[2], Constant::Bool(true));
    }
}
