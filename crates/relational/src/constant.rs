//! Constants: the elements of the countably infinite domain 𝒟 of Section 2.1.
//!
//! The paper only requires a countably infinite set of uninterpreted constants with
//! equality.  For usability in examples we provide integers, strings and booleans; all
//! comparisons are by value and there is no implicit coercion between variants.

use std::fmt;
use std::sync::Arc;

/// A database constant.
///
/// Constants are totally ordered (variant first, then value) so that relations built from
/// them have a canonical iteration order.
///
/// String payloads are shared [`Arc<str>`]s, so cloning a constant never copies string
/// bytes — materialising a possible world out of interned ids is refcount traffic, not
/// allocation.  The hot decision paths avoid even that by comparing interned
/// [`crate::Sym`]s instead of constants.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    /// A signed integer constant.
    Int(i64),
    /// A string constant.
    Str(Arc<str>),
    /// A boolean constant.
    Bool(bool),
}

impl Constant {
    /// Build a string constant from anything string-like.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Constant::Str(s.into())
    }

    /// Build an integer constant.
    pub const fn int(i: i64) -> Self {
        Constant::Int(i)
    }

    /// Returns the integer value if this constant is an [`Constant::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Constant::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string value if this constant is a [`Constant::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Constant::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A constant guaranteed to be distinct from every constant in `used`.
    ///
    /// This implements the paper's Δ′ device (proof of Proposition 2.1): fresh constants
    /// outside the active domain, used to stand for "a value different from everything we
    /// have seen".  Repeated calls with growing `used` sets yield pairwise-distinct fresh
    /// constants.
    pub fn fresh(used: &std::collections::BTreeSet<Constant>, seed: usize) -> Constant {
        // Fresh constants are drawn from a dedicated namespace so they can never collide
        // with user data accidentally; the loop guards against a user having used the
        // namespace themselves.
        let mut k = seed;
        loop {
            let cand = Constant::str(format!("⊥{k}"));
            if !used.contains(&cand) {
                return cand;
            }
            k += 1;
        }
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "{s}"),
            Constant::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Constant {
    fn from(value: i64) -> Self {
        Constant::Int(value)
    }
}

impl From<i32> for Constant {
    fn from(value: i32) -> Self {
        Constant::Int(i64::from(value))
    }
}

impl From<usize> for Constant {
    fn from(value: usize) -> Self {
        Constant::Int(value as i64)
    }
}

impl From<&str> for Constant {
    fn from(value: &str) -> Self {
        Constant::str(value)
    }
}

impl From<String> for Constant {
    fn from(value: String) -> Self {
        Constant::str(value)
    }
}

impl From<bool> for Constant {
    fn from(value: bool) -> Self {
        Constant::Bool(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ordering_is_total_and_by_variant_then_value() {
        let mut v = vec![
            Constant::str("b"),
            Constant::int(10),
            Constant::Bool(true),
            Constant::int(-3),
            Constant::str("a"),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Constant::int(-3),
                Constant::int(10),
                Constant::str("a"),
                Constant::str("b"),
                Constant::Bool(true),
            ]
        );
    }

    #[test]
    fn fresh_constants_avoid_used_set() {
        let mut used: BTreeSet<Constant> = (0..5).map(|i| Constant::str(format!("⊥{i}"))).collect();
        used.insert(Constant::int(1));
        let f = Constant::fresh(&used, 0);
        assert!(!used.contains(&f));
        assert_eq!(f, Constant::str("⊥5"));
    }

    #[test]
    fn conversions() {
        assert_eq!(Constant::from(3i64), Constant::Int(3));
        assert_eq!(Constant::from("x"), Constant::Str("x".into()));
        assert_eq!(Constant::from(true), Constant::Bool(true));
        assert_eq!(Constant::int(7).as_int(), Some(7));
        assert_eq!(Constant::str("y").as_str(), Some("y"));
        assert_eq!(Constant::str("y").as_int(), None);
    }

    #[test]
    fn display_round_trips_reasonably() {
        assert_eq!(Constant::int(42).to_string(), "42");
        assert_eq!(Constant::str("ab").to_string(), "ab");
        assert_eq!(Constant::Bool(false).to_string(), "false");
    }
}
