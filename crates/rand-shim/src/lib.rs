//! Offline stand-in for the subset of the `rand 0.8` API that `pw-workloads` uses.
//!
//! The build environment has no access to crates.io, so the real `rand` crate cannot be
//! resolved.  The workload generators only need *deterministic, seedable* pseudo-randomness
//! — reproducibility given a seed is the contract, not any particular stream — so this shim
//! implements [`rngs::StdRng`] on top of SplitMix64 and provides the three entry points the
//! generators call: `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen_bool`.
//!
//! If the workspace ever builds online again, deleting this crate and pointing the
//! `rand` workspace dependency at crates.io restores the real thing with no source changes
//! in `pw-workloads` (the streams differ, so seeded workloads will change shape once).

#![warn(missing_docs)]

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly (up to modulo bias, which is irrelevant for workloads)
    /// from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = self.end.checked_sub(self.start).filter(|s| *s > 0)
                    .expect("gen_range requires a non-empty range");
                self.start + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, i64, i32);

/// The user-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value drawn uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of mantissa are plenty for workload probabilities.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic seedable generator (SplitMix64 — *not* the upstream `StdRng`
    /// stream, but the workloads only rely on per-seed determinism).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "roughly fair: {heads}");
    }
}
