//! Offline stand-in for the subset of the `criterion 0.5` API that the benchmark
//! harnesses under `crates/bench/benches/` use.
//!
//! The build environment has no access to crates.io, so the real `criterion` crate
//! cannot be resolved.  The benches only need *timed, repeated samples with a
//! readable report* — [`Criterion`] with `sample_size` / `measurement_time` /
//! `warm_up_time`, [`BenchmarkGroup::bench_with_input`] keyed by [`BenchmarkId`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`] macros —
//! so this shim implements exactly that on `std::time::Instant`.
//!
//! Differences from upstream, by design:
//!
//! * **No statistics beyond min/median/max.**  Each benchmark prints one line with
//!   the per-iteration time over the collected samples; there is no outlier
//!   analysis, no regression against saved baselines, and nothing is written to
//!   `target/criterion/`.
//! * **Bounded wall-clock.**  Sampling stops early once roughly twice the
//!   configured measurement time has elapsed (keeping at least two samples), so a
//!   slow NP-hard cell costs seconds, not minutes.
//! * Command-line arguments (`--bench`, filters) are accepted and ignored.
//!
//! If the workspace ever builds online again, deleting this crate and pointing the
//! `criterion` workspace dependency at crates.io restores the real thing; the bench
//! sources compile unchanged either way.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name upstream criterion uses.
pub use std::hint::black_box;

/// The benchmark driver — the shim's counterpart of `criterion::Criterion`.
///
/// Holds the sampling configuration; [`Criterion::benchmark_group`] hands out
/// groups that run closures against it.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Upstream defaults are 100 samples / 5s / 3s; the shim keeps the same
            // shape but trimmed, since there is no statistical machinery to feed.
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the target wall-clock time spent measuring each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the wall-clock time spent warming up before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// A parameterized benchmark name, rendered as `function/parameter`.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// Name a benchmark `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A named collection of benchmarks sharing one [`Criterion`] configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark with an input value, criterion-style.
    ///
    /// The input reference is passed straight through to the closure; the shim
    /// does not clone or move it.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            config: self.criterion,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.rendered);
        self
    }

    /// Run one benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.criterion,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.into());
        self
    }

    /// Close the group.  (Upstream flushes reports here; the shim prints eagerly.)
    pub fn finish(self) {}
}

/// Times a routine — the shim's counterpart of `criterion::Bencher`.
pub struct Bencher<'a> {
    config: &'a Criterion,
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Measure `routine`: warm up, then collect timed samples of batched calls.
    ///
    /// Each sample times a batch of iterations sized from a calibration pass so
    /// that the configured measurement time is split across the samples; sampling
    /// stops early once twice the measurement time has elapsed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let cfg = self.config;

        // Warm-up doubles as calibration: keep running until the warm-up budget is
        // spent (at least one call), tracking the mean cost per call.
        let warm_start = Instant::now();
        let mut warm_calls = 0u32;
        loop {
            black_box(routine());
            warm_calls += 1;
            if warm_start.elapsed() >= cfg.warm_up_time {
                break;
            }
        }
        let per_call = warm_start.elapsed() / warm_calls;

        let per_sample = cfg.measurement_time / cfg.sample_size as u32;
        let iters = if per_call.is_zero() {
            1
        } else {
            (per_sample.as_nanos() / per_call.as_nanos().max(1)).clamp(1, u32::MAX as u128) as u32
        };

        let deadline = Instant::now() + cfg.measurement_time * 2;
        self.samples.clear();
        for _ in 0..cfg.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
            if self.samples.len() >= 2 && Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.samples.is_empty() {
            // The routine never called `iter` — mirror upstream, which errors out.
            panic!("benchmark {group}/{id} collected no samples (missing Bencher::iter call?)");
        }
        self.samples.sort();
        let min = self.samples[0];
        let med = self.samples[self.samples.len() / 2];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{group}/{id}\n                        time:   [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(med),
            fmt_duration(max),
            self.samples.len(),
        );
    }
}

/// Render a duration the way criterion does: value + scaled unit.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Define a benchmark group function, criterion-style.
///
/// Both upstream forms are supported:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = configure();
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the `main` function of a `harness = false` bench target: run each
/// group in order, ignoring harness arguments such as `--bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            // `cargo bench` invokes the target with harness flags; the shim has no
            // filtering, so the arguments are deliberately ignored.
            let _ = ::std::env::args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim/self_test");
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).map(black_box).sum::<u64>())
            });
        }
        group.bench_function("fixed", |b| b.iter(|| black_box(21) * 2));
        group.finish();
    }

    criterion_group! {
        name = config_form;
        config = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        targets = spin
    }

    criterion_group!(simple_form, noop_target);

    fn noop_target(_c: &mut Criterion) {}

    #[test]
    fn both_macro_forms_expand_and_run() {
        config_form();
        simple_form();
    }

    #[test]
    fn sampling_is_bounded_and_nonempty() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let started = Instant::now();
        let mut group = c.benchmark_group("shim/bounds");
        // A deliberately slow routine: the two-times-measurement-time deadline must
        // cut sampling short rather than running all five samples to completion.
        group.bench_with_input(BenchmarkId::new("slow", 0), &(), |b, _| {
            b.iter(|| std::thread::sleep(Duration::from_millis(4)))
        });
        group.finish();
        assert!(started.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn benchmark_id_renders_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("member", 64).rendered, "member/64");
    }

    #[test]
    fn duration_formatting_scales_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.0000 s");
    }
}
