//! # `pw-check` — the independent certificate checker
//!
//! The decision engine (`pw-decide`) answers the paper's five decision problems with
//! searches that range from PTIME matchings to Π₂ᵖ enumerations.  When asked, it attaches
//! a [`Certificate`] to its verdict; this crate verifies such a certificate against the
//! *claim* — problem, inputs and answer — in polynomial time, **without depending on the
//! engine** (enforced by this crate's `Cargo.toml` and a unit test).  The trusted
//! computing base is therefore only:
//!
//! * the possible-world semantics itself — [`pw_core::Valuation::world_of`], query
//!   evaluation on complete instances, and the freeze construction replayed from
//!   [`pw_core::freeze_database`] / [`pw_core::normalize_database`];
//! * this crate's acceptance table below.
//!
//! ## Acceptance table
//!
//! One polarity of every problem has short evidence; the other rests on an exhaustive
//! search that has no polynomial certificate (unless the polynomial hierarchy collapses).
//! The checker accepts [`Certificate::Exhaustive`] **only** on the latter side — anywhere
//! else it would be vacuous:
//!
//! | problem      | answer | accepted certificates                                   |
//! |--------------|--------|---------------------------------------------------------|
//! | membership   | yes    | `Witness` (σ(𝒟) exists and q(σ(𝒟)) = I)                 |
//! | membership   | no     | `EmptyRep`, `Exhaustive`                                 |
//! | possibility  | yes    | `Witness` (facts ⊆ q(σ(𝒟)))                             |
//! | possibility  | no     | `EmptyRep`, `Exhaustive`                                 |
//! | certainty    | yes    | `CertainByFreeze` (replayed), `EmptyRep`, `Exhaustive`   |
//! | certainty    | no     | `CounterWorld` (facts ⊄ q(σ(𝒟)))                        |
//! | uniqueness   | yes    | `Exhaustive`                                             |
//! | uniqueness   | no     | `CounterWorld` (q(σ(𝒟)) ≠ I), `EmptyRep`                |
//! | containment  | yes    | `FrozenMembership` (Theorem 4.1 replayed), `Decomposition` (aligned groups, recursive), `EmptyRep`, `Exhaustive` |
//! | containment  | no     | `CounterWorld` (σ is a world of the left side; see below)|
//!
//! One seam is narrower than the rest: a no-containment `CounterWorld` claims
//! "σ(left) ∉ rep(right)", and that non-membership is itself coNP — it has no short
//! sub-certificate.  The checker verifies the constructive half (σ really induces a world
//! of the left side) and *trusts* the non-membership half.  This is still a strictly
//! smaller trust surface than trusting the whole search, and the seam is explicit here
//! rather than implicit in the engine.

#![warn(missing_docs)]

use pw_core::{
    freeze_database, normalize_database, CDatabase, Certificate, TableClass, Valuation, View,
};
use pw_query::QueryClass;
use pw_relational::Instance;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A decision problem instance: the inputs the claimed answer is about.
///
/// Borrowed, not owned — the checker never mutates the inputs, and claims are typically
/// assembled on the fly next to an engine answer.
#[derive(Clone, Copy, Debug)]
pub enum Problem<'a> {
    /// Is `instance` one of the possible worlds of `view`? (MEMB, NP)
    Membership {
        /// The view (query over a c-table database) defining the world set.
        view: &'a View,
        /// The complete instance being tested for membership.
        instance: &'a Instance,
    },
    /// Is `instance` the *only* possible world of `view`? (UNIQ, coNP)
    Uniqueness {
        /// The view defining the world set.
        view: &'a View,
        /// The candidate unique world.
        instance: &'a Instance,
    },
    /// Is every world of `left` also a world of `right`? (CONT, Π₂ᵖ)
    Containment {
        /// The contained (left-hand) view.
        left: &'a View,
        /// The containing (right-hand) view.
        right: &'a View,
    },
    /// Do the `facts` all hold together in *some* world of `view`? (POSS, NP)
    Possibility {
        /// The view defining the world set.
        view: &'a View,
        /// The facts that should be jointly possible.
        facts: &'a Instance,
    },
    /// Do the `facts` all hold in *every* world of `view`? (CERT, coNP)
    Certainty {
        /// The view defining the world set.
        view: &'a View,
        /// The facts that should be certain.
        facts: &'a Instance,
    },
}

impl Problem<'_> {
    /// Short stable name of the problem (for errors and diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            Problem::Membership { .. } => "membership",
            Problem::Uniqueness { .. } => "uniqueness",
            Problem::Containment { .. } => "containment",
            Problem::Possibility { .. } => "possibility",
            Problem::Certainty { .. } => "certainty",
        }
    }
}

/// A claimed verdict: a problem instance together with the engine's answer.
#[derive(Clone, Copy, Debug)]
pub struct Claim<'a> {
    /// The problem the answer is about.
    pub problem: Problem<'a>,
    /// The claimed answer.
    pub answer: bool,
}

/// Why a certificate was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// The certificate kind is not admissible for this (problem, answer) pair — e.g.
    /// `Exhaustive` offered where constructive evidence is required.
    WrongCertificate {
        /// The problem being claimed.
        problem: &'static str,
        /// The claimed answer.
        answer: bool,
        /// The offered certificate kind ([`Certificate::kind`]).
        kind: &'static str,
    },
    /// The valuation does not induce a world: it violates a global condition or leaves a
    /// needed variable unassigned.
    InvalidValuation {
        /// What went wrong.
        detail: String,
    },
    /// The valuation induces a world, but the world does not exhibit the claimed
    /// property.
    WorldMismatch {
        /// What went wrong.
        detail: String,
    },
    /// A replayed reduction's preconditions do not hold (e.g. `CertainByFreeze` for a
    /// non-monotone query, or a claimed-empty representation that is satisfiable).
    PreconditionFailed {
        /// What went wrong.
        detail: String,
    },
    /// A containment decomposition does not match the aligned shard groups of the two
    /// sides (missing pair, duplicate pair, unknown group, unaligned sides).
    MalformedDecomposition {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::WrongCertificate {
                problem,
                answer,
                kind,
            } => write!(
                f,
                "certificate kind `{kind}` is not admissible for {problem} = {answer}"
            ),
            CheckError::InvalidValuation { detail } => {
                write!(f, "valuation induces no world: {detail}")
            }
            CheckError::WorldMismatch { detail } => {
                write!(f, "world does not exhibit the claimed property: {detail}")
            }
            CheckError::PreconditionFailed { detail } => {
                write!(f, "reduction precondition failed: {detail}")
            }
            CheckError::MalformedDecomposition { detail } => {
                write!(f, "malformed decomposition: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Verify a certificate against a claim.  `Ok(())` means the certificate establishes the
/// claimed answer (up to the explicit trust seams documented at the crate root);
/// any tampering with the certificate or mismatch with the claim yields an error.
pub fn verify(claim: &Claim<'_>, certificate: &Certificate) -> Result<(), CheckError> {
    match claim.problem {
        Problem::Membership { view, instance } => {
            check_membership(view, instance, claim.answer, certificate)
        }
        Problem::Uniqueness { view, instance } => {
            check_uniqueness(view, instance, claim.answer, certificate)
        }
        Problem::Containment { left, right } => {
            check_containment(left, right, claim.answer, certificate)
        }
        Problem::Possibility { view, facts } => {
            check_possibility(view, facts, claim.answer, certificate)
        }
        Problem::Certainty { view, facts } => {
            check_certainty(view, facts, claim.answer, certificate)
        }
    }
}

/// σ(𝒟), or the canonical rejection when σ induces no world.
fn world_of(valuation: &Valuation, db: &CDatabase) -> Result<Instance, CheckError> {
    valuation
        .world_of(db)
        .ok_or_else(|| CheckError::InvalidValuation {
            detail: "the valuation violates a global condition or leaves a variable unassigned"
                .to_owned(),
        })
}

/// Accept `EmptyRep` only when the database's global conditions really are jointly
/// unsatisfiable.
fn ensure_empty_rep(db: &CDatabase) -> Result<(), CheckError> {
    if db.has_satisfiable_globals() {
        return Err(CheckError::PreconditionFailed {
            detail: "claimed empty representation, but the global conditions are satisfiable"
                .to_owned(),
        });
    }
    Ok(())
}

fn wrong(problem: &'static str, answer: bool, certificate: &Certificate) -> CheckError {
    CheckError::WrongCertificate {
        problem,
        answer,
        kind: certificate.kind(),
    }
}

fn check_membership(
    view: &View,
    instance: &Instance,
    answer: bool,
    certificate: &Certificate,
) -> Result<(), CheckError> {
    match (answer, certificate) {
        (true, Certificate::Witness { valuation }) => {
            let world = world_of(valuation, &view.db)?;
            let produced = view.query.eval(&world);
            if produced.same_facts(instance) {
                Ok(())
            } else {
                Err(CheckError::WorldMismatch {
                    detail: "q(σ(𝒟)) is not the claimed instance".to_owned(),
                })
            }
        }
        (false, Certificate::EmptyRep) => ensure_empty_rep(&view.db),
        // "No world maps to I" is universally quantified over rep(𝒟): trusted search.
        (false, Certificate::Exhaustive) => Ok(()),
        _ => Err(wrong("membership", answer, certificate)),
    }
}

fn check_possibility(
    view: &View,
    facts: &Instance,
    answer: bool,
    certificate: &Certificate,
) -> Result<(), CheckError> {
    match (answer, certificate) {
        (true, Certificate::Witness { valuation }) => {
            let world = world_of(valuation, &view.db)?;
            let produced = view.query.eval(&world);
            if facts.is_subinstance_of(&produced) {
                Ok(())
            } else {
                Err(CheckError::WorldMismatch {
                    detail: "the claimed facts are not all contained in q(σ(𝒟))".to_owned(),
                })
            }
        }
        (false, Certificate::EmptyRep) => ensure_empty_rep(&view.db),
        (false, Certificate::Exhaustive) => Ok(()),
        _ => Err(wrong("possibility", answer, certificate)),
    }
}

fn check_certainty(
    view: &View,
    facts: &Instance,
    answer: bool,
    certificate: &Certificate,
) -> Result<(), CheckError> {
    match (answer, certificate) {
        (true, Certificate::CertainByFreeze) => replay_certain_by_freeze(view, facts),
        (true, Certificate::EmptyRep) => ensure_empty_rep(&view.db),
        // "Facts hold in every world" is the universally quantified side.
        (true, Certificate::Exhaustive) => Ok(()),
        (false, Certificate::CounterWorld { valuation }) => {
            let world = world_of(valuation, &view.db)?;
            let produced = view.query.eval(&world);
            if facts.is_subinstance_of(&produced) {
                Err(CheckError::WorldMismatch {
                    detail: "the counter-world contains every claimed fact".to_owned(),
                })
            } else {
                Ok(())
            }
        }
        _ => Err(wrong("certainty", answer, certificate)),
    }
}

/// Replay the naive-evaluation argument of Theorem 5.3(1): for a monotone query on a
/// database that normalises to a g-table, evaluating on the frozen instance K₀ already
/// produces every claimed fact, and by monotonicity + genericity the facts then hold in
/// every world.
fn replay_certain_by_freeze(view: &View, facts: &Instance) -> Result<(), CheckError> {
    let monotone = matches!(
        view.query.class(),
        QueryClass::Identity | QueryClass::PositiveExistential | QueryClass::Datalog
    );
    if !monotone {
        return Err(CheckError::PreconditionFailed {
            detail: "certain-by-freeze needs a monotone query".to_owned(),
        });
    }
    if view.db.classify() > TableClass::GTable {
        return Err(CheckError::PreconditionFailed {
            detail: "certain-by-freeze needs a database without local conditions (≤ g-table)"
                .to_owned(),
        });
    }
    let Some(normalized) = normalize_database(&view.db) else {
        // Empty representation: vacuously certain.
        return Ok(());
    };
    let (frozen, fresh) = freeze_database(&normalized, &facts.active_domain());
    let produced = view.query.eval(&frozen);
    for (name, rel) in facts.iter() {
        for fact in rel.iter() {
            let ground = fact.iter().all(|c| !fresh.contains(c));
            if !ground || !produced.contains_fact(name, fact) {
                return Err(CheckError::WorldMismatch {
                    detail: format!("fact {name}{fact} is not produced on the frozen instance"),
                });
            }
        }
    }
    Ok(())
}

fn check_uniqueness(
    view: &View,
    instance: &Instance,
    answer: bool,
    certificate: &Certificate,
) -> Result<(), CheckError> {
    match (answer, certificate) {
        // "Every world equals I" is the universally quantified side; even the embedded
        // existential half ("I is a world") does not certify uniqueness on its own.
        (true, Certificate::Exhaustive) => Ok(()),
        (false, Certificate::CounterWorld { valuation }) => {
            let world = world_of(valuation, &view.db)?;
            let produced = view.query.eval(&world);
            if produced.same_facts(instance) {
                Err(CheckError::WorldMismatch {
                    detail: "the counter-world equals the claimed unique instance".to_owned(),
                })
            } else {
                Ok(())
            }
        }
        (false, Certificate::EmptyRep) => ensure_empty_rep(&view.db),
        _ => Err(wrong("uniqueness", answer, certificate)),
    }
}

fn check_containment(
    left: &View,
    right: &View,
    answer: bool,
    certificate: &Certificate,
) -> Result<(), CheckError> {
    match (answer, certificate) {
        (true, Certificate::EmptyRep) => ensure_empty_rep(&left.db),
        (true, Certificate::Exhaustive) => Ok(()),
        (true, Certificate::FrozenMembership { witness }) => {
            replay_frozen_membership(left, right, witness)
        }
        (true, Certificate::Decomposition { pairs }) => check_decomposition(left, right, pairs),
        (false, Certificate::CounterWorld { valuation }) => {
            // Constructive half only: σ really induces a world of the left side.  The
            // "σ(left) ∉ rep(right)" half is itself coNP and has no short certificate —
            // this is the one explicitly trusted seam (see the crate docs).
            world_of(valuation, &left.db).map(|_| ())
        }
        _ => Err(wrong("containment", answer, certificate)),
    }
}

/// Replay the freeze reduction of Theorem 4.1: rep(left) ⊆ rep(right) — for identity
/// views of a ≤ g-table left side and a ≤ e-table right side — iff the frozen left
/// instance K₀ is a member of rep(right).  The inner certificate must then be a plain
/// membership witness of K₀ against the right database.
fn replay_frozen_membership(
    left: &View,
    right: &View,
    witness: &Certificate,
) -> Result<(), CheckError> {
    if !left.query.is_identity() || !right.query.is_identity() {
        return Err(CheckError::PreconditionFailed {
            detail: "frozen membership needs identity views on both sides".to_owned(),
        });
    }
    if left.db.classify() > TableClass::GTable {
        return Err(CheckError::PreconditionFailed {
            detail: "frozen membership needs a ≤ g-table left side".to_owned(),
        });
    }
    if right.db.classify() > TableClass::ETable {
        return Err(CheckError::PreconditionFailed {
            detail: "frozen membership needs a ≤ e-table right side".to_owned(),
        });
    }
    let Some(normalized) = normalize_database(&left.db) else {
        // Empty left representation: contained in everything.
        return Ok(());
    };
    let (k0, _) = freeze_database(&normalized, &right.db.constants());
    match witness {
        Certificate::Witness { valuation } => {
            let world = world_of(valuation, &right.db)?;
            if world.same_facts(&k0) {
                Ok(())
            } else {
                Err(CheckError::WorldMismatch {
                    detail: "the inner witness does not produce the frozen instance K₀".to_owned(),
                })
            }
        }
        other => Err(wrong("containment", true, other)),
    }
}

/// The relation names of each shard group, keyed for alignment.
fn group_map(db: &CDatabase) -> BTreeMap<BTreeSet<String>, CDatabase> {
    db.shard_groups()
        .iter()
        .map(|g| {
            let names = g
                .database()
                .tables()
                .iter()
                .map(|t| t.name().to_owned())
                .collect::<BTreeSet<String>>();
            (names, g.database().clone())
        })
        .collect()
}

/// A yes-containment decomposed along aligned shard groups: the pairs must cover the
/// group partition of *both* sides exactly (so dropping, duplicating or inventing a pair
/// is rejected), and every pair must itself verify as a yes-containment of the two group
/// databases under identity views.  Soundness rests on the groups being
/// variable-disjoint, which [`CDatabase::shard_groups`] guarantees by construction.
fn check_decomposition(
    left: &View,
    right: &View,
    pairs: &[pw_core::PairCert],
) -> Result<(), CheckError> {
    if !left.query.is_identity() || !right.query.is_identity() {
        return Err(CheckError::PreconditionFailed {
            detail: "a decomposition certificate needs identity views on both sides".to_owned(),
        });
    }
    let lefts = group_map(&left.db);
    let rights = group_map(&right.db);
    if lefts.keys().ne(rights.keys()) {
        return Err(CheckError::MalformedDecomposition {
            detail: "the two sides do not split into aligned shard groups".to_owned(),
        });
    }
    let mut covered: BTreeSet<&BTreeSet<String>> = BTreeSet::new();
    for pair in pairs {
        let Some(ldb) = lefts.get(&pair.relations) else {
            return Err(CheckError::MalformedDecomposition {
                detail: format!("pair {:?} names no shard group", pair.relations),
            });
        };
        let rdb = &rights[&pair.relations];
        if !covered.insert(&pair.relations) {
            return Err(CheckError::MalformedDecomposition {
                detail: format!("duplicate pair {:?}", pair.relations),
            });
        }
        let lv = View::identity(ldb.clone());
        let rv = View::identity(rdb.clone());
        check_containment(&lv, &rv, true, &pair.certificate)?;
    }
    if covered.len() != lefts.len() {
        return Err(CheckError::MalformedDecomposition {
            detail: format!(
                "decomposition covers {} of {} aligned group pairs",
                covered.len(),
                lefts.len()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Atom, Conjunction, Term, VarGen};
    use pw_core::{CTable, CTuple};
    use pw_relational::{tup, Relation};

    fn codd_db(name: &str, rows: Vec<CTuple>) -> CDatabase {
        CDatabase::new([
            CTable::new(name, rows[0].terms.len(), Conjunction::truth(), rows).unwrap(),
        ])
    }

    fn instance_of(name: &str, facts: Vec<pw_relational::Tuple>) -> Instance {
        let mut rel = Relation::empty(facts[0].arity());
        for f in facts {
            rel.insert(f).unwrap();
        }
        let mut i = Instance::new();
        i.insert_relation(name.to_owned(), rel);
        i
    }

    #[test]
    fn no_engine_dependency() {
        // The whole point of this crate: the checker must not trust the engine.  The
        // manifest is the enforcement point; this test keeps it honest.
        let manifest = include_str!("../Cargo.toml");
        for line in manifest.lines() {
            let line = line.trim();
            assert!(
                line.starts_with('#') || !line.contains("pw-decide"),
                "pw-check must not depend on pw-decide (offending line: {line:?})"
            );
        }
    }

    #[test]
    fn membership_witness_accepts_and_tampering_rejects() {
        let mut g = VarGen::new();
        let x = g.named("x");
        let db = codd_db(
            "T",
            vec![CTuple::of_terms([Term::Var(x), Term::constant(1)])],
        );
        let view = View::identity(db);
        let instance = instance_of("T", vec![tup![7, 1]]);
        let claim = Claim {
            problem: Problem::Membership {
                view: &view,
                instance: &instance,
            },
            answer: true,
        };
        let good = Certificate::witness(Valuation::from_pairs([(x, 7)]));
        assert_eq!(verify(&claim, &good), Ok(()));

        // Swapped binding: the produced world is {(8,1)} ≠ I.
        let bad = Certificate::witness(Valuation::from_pairs([(x, 8)]));
        assert!(matches!(
            verify(&claim, &bad),
            Err(CheckError::WorldMismatch { .. })
        ));

        // Exhaustive must never certify a yes-membership.
        assert!(matches!(
            verify(&claim, &Certificate::Exhaustive),
            Err(CheckError::WrongCertificate { .. })
        ));
    }

    #[test]
    fn unsatisfied_globals_reject_a_witness() {
        let mut g = VarGen::new();
        let x = g.named("x");
        let table = CTable::new(
            "T",
            1,
            Conjunction::new([Atom::neq(x, 7)]),
            vec![CTuple::of_terms([Term::Var(x)])],
        )
        .unwrap();
        let db = CDatabase::new([table]);
        let view = View::identity(db);
        let instance = instance_of("T", vec![tup![7]]);
        let claim = Claim {
            problem: Problem::Membership {
                view: &view,
                instance: &instance,
            },
            answer: true,
        };
        // σ(x) = 7 violates the global x ≠ 7: no world arises.
        let cert = Certificate::witness(Valuation::from_pairs([(x, 7)]));
        assert!(matches!(
            verify(&claim, &cert),
            Err(CheckError::InvalidValuation { .. })
        ));
    }

    #[test]
    fn empty_rep_is_checked_not_trusted() {
        let mut g = VarGen::new();
        let x = g.named("x");
        // Satisfiable database: EmptyRep must be rejected.
        let sat = codd_db("T", vec![CTuple::of_terms([Term::Var(x)])]);
        let view = View::identity(sat);
        let instance = instance_of("T", vec![tup![1]]);
        let claim = Claim {
            problem: Problem::Membership {
                view: &view,
                instance: &instance,
            },
            answer: false,
        };
        assert!(matches!(
            verify(&claim, &Certificate::EmptyRep),
            Err(CheckError::PreconditionFailed { .. })
        ));

        // Unsatisfiable database (x ≠ x): EmptyRep accepted.
        let table = CTable::new(
            "T",
            1,
            Conjunction::new([Atom::neq(x, x)]),
            vec![CTuple::of_terms([Term::Var(x)])],
        )
        .unwrap();
        let unsat_view = View::identity(CDatabase::new([table]));
        let claim = Claim {
            problem: Problem::Membership {
                view: &unsat_view,
                instance: &instance,
            },
            answer: false,
        };
        assert_eq!(verify(&claim, &Certificate::EmptyRep), Ok(()));
    }

    #[test]
    fn possibility_witness_requires_coverage() {
        let mut g = VarGen::new();
        let x = g.named("x");
        let db = codd_db("T", vec![CTuple::of_terms([Term::Var(x)])]);
        let view = View::identity(db);
        let facts = instance_of("T", vec![tup![3]]);
        let claim = Claim {
            problem: Problem::Possibility {
                view: &view,
                facts: &facts,
            },
            answer: true,
        };
        assert_eq!(
            verify(
                &claim,
                &Certificate::witness(Valuation::from_pairs([(x, 3)]))
            ),
            Ok(())
        );
        assert!(matches!(
            verify(
                &claim,
                &Certificate::witness(Valuation::from_pairs([(x, 4)]))
            ),
            Err(CheckError::WorldMismatch { .. })
        ));
    }

    #[test]
    fn certainty_replays_the_freeze_argument() {
        let mut g = VarGen::new();
        let x = g.named("x");
        // Rows (1) and (x): the fact (1) is certain, the fact (2) is not.
        let db = codd_db(
            "T",
            vec![
                CTuple::of_terms([Term::constant(1)]),
                CTuple::of_terms([Term::Var(x)]),
            ],
        );
        let view = View::identity(db);
        let certain = instance_of("T", vec![tup![1]]);
        let claim = Claim {
            problem: Problem::Certainty {
                view: &view,
                facts: &certain,
            },
            answer: true,
        };
        assert_eq!(verify(&claim, &Certificate::CertainByFreeze), Ok(()));

        let uncertain = instance_of("T", vec![tup![2]]);
        let claim = Claim {
            problem: Problem::Certainty {
                view: &view,
                facts: &uncertain,
            },
            answer: true,
        };
        assert!(matches!(
            verify(&claim, &Certificate::CertainByFreeze),
            Err(CheckError::WorldMismatch { .. })
        ));

        // A counter-world for the honest "no": σ(x) = 9 gives the world {(1),(9)} ⊉ {(2)}.
        let claim = Claim {
            problem: Problem::Certainty {
                view: &view,
                facts: &uncertain,
            },
            answer: false,
        };
        assert_eq!(
            verify(
                &claim,
                &Certificate::counter_world(Valuation::from_pairs([(x, 9)]))
            ),
            Ok(())
        );
    }

    #[test]
    fn uniqueness_counter_world_must_differ() {
        let mut g = VarGen::new();
        let x = g.named("x");
        let db = codd_db("T", vec![CTuple::of_terms([Term::Var(x)])]);
        let view = View::identity(db);
        let instance = instance_of("T", vec![tup![5]]);
        let claim = Claim {
            problem: Problem::Uniqueness {
                view: &view,
                instance: &instance,
            },
            answer: false,
        };
        // A world other than I refutes uniqueness …
        assert_eq!(
            verify(
                &claim,
                &Certificate::counter_world(Valuation::from_pairs([(x, 6)]))
            ),
            Ok(())
        );
        // … but the world I itself does not.
        assert!(matches!(
            verify(
                &claim,
                &Certificate::counter_world(Valuation::from_pairs([(x, 5)]))
            ),
            Err(CheckError::WorldMismatch { .. })
        ));
        // Yes-uniqueness has no short certificate: only Exhaustive is admissible.
        let yes = Claim {
            problem: Problem::Uniqueness {
                view: &view,
                instance: &instance,
            },
            answer: true,
        };
        assert_eq!(verify(&yes, &Certificate::Exhaustive), Ok(()));
        assert!(matches!(
            verify(&yes, &Certificate::witness(Valuation::from_pairs([(x, 5)]))),
            Err(CheckError::WrongCertificate { .. })
        ));
    }

    #[test]
    fn frozen_membership_replays_theorem_4_1() {
        let mut g = VarGen::new();
        let x = g.named("x");
        // left = {(1)}, right = {(y)}: rep(left) = {{(1)}} ⊆ rep(right).
        let left = View::identity(codd_db("T", vec![CTuple::of_terms([Term::constant(1)])]));
        let y = g.named("y");
        let right_db = codd_db("T", vec![CTuple::of_terms([Term::Var(y)])]);
        let right = View::identity(right_db);
        let claim = Claim {
            problem: Problem::Containment {
                left: &left,
                right: &right,
            },
            answer: true,
        };
        // K₀ = {(1)} (the left side is ground), so y ↦ 1 witnesses K₀ ∈ rep(right).
        let good = Certificate::FrozenMembership {
            witness: Box::new(Certificate::witness(Valuation::from_pairs([(y, 1)]))),
        };
        assert_eq!(verify(&claim, &good), Ok(()));
        let bad = Certificate::FrozenMembership {
            witness: Box::new(Certificate::witness(Valuation::from_pairs([(y, 2)]))),
        };
        assert!(matches!(
            verify(&claim, &bad),
            Err(CheckError::WorldMismatch { .. })
        ));
        let _ = x;
    }

    #[test]
    fn decomposition_must_cover_every_aligned_pair() {
        let mut g = VarGen::new();
        let (x, y) = (g.named("x"), g.named("y"));
        let mk = |vx: pw_condition::Variable, vy: pw_condition::Variable| {
            CDatabase::new([
                CTable::new(
                    "R",
                    1,
                    Conjunction::truth(),
                    vec![CTuple::of_terms([Term::Var(vx)])],
                )
                .unwrap(),
                CTable::new(
                    "S",
                    1,
                    Conjunction::truth(),
                    vec![CTuple::of_terms([Term::Var(vy)])],
                )
                .unwrap(),
            ])
        };
        let left = View::identity(mk(x, y));
        let (u, v) = (g.named("u"), g.named("v"));
        let right = View::identity(mk(u, v));
        let claim = Claim {
            problem: Problem::Containment {
                left: &left,
                right: &right,
            },
            answer: true,
        };
        let pair = |name: &str| pw_core::PairCert {
            relations: [name.to_owned()].into(),
            certificate: Certificate::Exhaustive,
        };
        let full = Certificate::Decomposition {
            pairs: vec![pair("R"), pair("S")],
        };
        assert_eq!(verify(&claim, &full), Ok(()));

        // Dropping a pair must be rejected — a partial decomposition proves nothing.
        let partial = Certificate::Decomposition {
            pairs: vec![pair("R")],
        };
        assert!(matches!(
            verify(&claim, &partial),
            Err(CheckError::MalformedDecomposition { .. })
        ));

        // Duplicating a pair neither covers the other group nor is well-formed.
        let duplicated = Certificate::Decomposition {
            pairs: vec![pair("R"), pair("R")],
        };
        assert!(matches!(
            verify(&claim, &duplicated),
            Err(CheckError::MalformedDecomposition { .. })
        ));
    }

    #[test]
    fn no_containment_checks_the_left_world() {
        let mut g = VarGen::new();
        let x = g.named("x");
        let table = CTable::new(
            "T",
            1,
            Conjunction::new([Atom::neq(x, 0)]),
            vec![CTuple::of_terms([Term::Var(x)])],
        )
        .unwrap();
        let left = View::identity(CDatabase::new([table]));
        let right = View::identity(codd_db("T", vec![CTuple::of_terms([Term::constant(1)])]));
        let claim = Claim {
            problem: Problem::Containment {
                left: &left,
                right: &right,
            },
            answer: false,
        };
        assert_eq!(
            verify(
                &claim,
                &Certificate::counter_world(Valuation::from_pairs([(x, 2)]))
            ),
            Ok(())
        );
        // σ(x) = 0 violates the left global: not a world of the left side.
        assert!(matches!(
            verify(
                &claim,
                &Certificate::counter_world(Valuation::from_pairs([(x, 0)]))
            ),
            Err(CheckError::InvalidValuation { .. })
        ));
        // Exhaustive must never certify a no-containment (the counter-world exists).
        assert!(matches!(
            verify(&claim, &Certificate::Exhaustive),
            Err(CheckError::WrongCertificate { .. })
        ));
    }
}
