//! Database-level normalisation and the freeze construction of Theorem 4.1.
//!
//! These two helpers used to live in `pw-decide`; they moved here so that an
//! engine-independent certificate checker (`pw_check`) can *replay* the freeze
//! reduction — recompute K₀ from the claimed databases and verify a frozen-membership
//! certificate — without depending on the decision engine it is auditing.  `pw-decide`
//! re-exports them from its `common` module, so engine-side callers are unchanged.

use crate::{CDatabase, CTable, Valuation};
use pw_condition::{Conjunction, Variable};
use pw_relational::domain::fresh_constants;
use pw_relational::{Constant, Instance, Relation};
use std::collections::BTreeSet;

/// Normalise a whole database with respect to the conjunction of *all* its global
/// conditions: variables forced to constants are substituted everywhere and chains of
/// variable equalities are collapsed.  Returns `None` when the combined global condition is
/// unsatisfiable, i.e. when `rep(db) = ∅`.
///
/// This is the database-level version of the preprocessing step of Theorem 3.2(1) ("if it
/// follows from the global condition that a variable equals a constant, then the variable
/// is replaced by that constant") and of the freeze construction of Theorem 4.1.
pub fn normalize_database(db: &CDatabase) -> Option<CDatabase> {
    let mut combined = Conjunction::truth();
    for t in db.tables() {
        combined = combined.and(t.global_condition());
    }
    if !combined.is_satisfiable() {
        return None;
    }
    let tables = db
        .tables()
        .iter()
        .map(|t| {
            // Rebuild each table with the combined global so normalisation sees all
            // equalities, then restore its own (rewritten) global afterwards by keeping the
            // normalised result as-is: the extra atoms copied from other tables are
            // harmless (they are satisfied by exactly the same valuations).
            let widened = CTable::new(
                t.name(),
                t.arity(),
                combined.clone(),
                t.tuples().iter().cloned(),
            )
            .expect("same rows, same arity");
            widened
                .normalize_equalities()
                .expect("combined condition satisfiability was checked")
        })
        .collect::<Vec<_>>();
    // Normalisation rewrites ids in place, so the result stays in the source's id space.
    Some(db.with_tables_like(tables))
}

/// Freeze a (normalised) database: replace every remaining variable by a distinct fresh
/// constant, yielding the complete instance K₀ of the Claim in Theorem 4.1.  Returns the
/// frozen instance together with the set of fresh constants used (so callers can recognise
/// "non-ground" facts, e.g. for certain-answer computation).
pub fn freeze_database(
    db: &CDatabase,
    avoid: &BTreeSet<Constant>,
) -> (Instance, BTreeSet<Constant>) {
    let vars: Vec<Variable> = db.variables().into_iter().collect();
    let mut used: BTreeSet<Constant> = db.constants();
    used.extend(avoid.iter().cloned());
    let fresh = fresh_constants(&used, vars.len());
    // The freezing valuation is built in the database's own id space (handle-threading
    // rule), so condition checks and resolution work over private dictionaries too.
    let valuation = Valuation::from_pairs(vars.into_iter().zip(fresh.iter().map(|c| db.intern(c))));
    let mut instance = Instance::new();
    for table in db.tables() {
        let mut rel = Relation::empty(table.arity());
        for row in table.tuples() {
            // Local conditions are evaluated under the freezing valuation; rows whose
            // condition the freeze does not satisfy are dropped (callers that require
            // condition-free tables dispatch away from the freeze path).
            if valuation.satisfies(&row.condition) == Some(true) {
                if let Some(fact) = valuation.apply_tuple_in(db.symbols(), row) {
                    rel.insert(fact).expect("arity preserved");
                }
            }
        }
        instance.insert_relation(table.name().to_owned(), rel);
    }
    (instance, fresh.into_iter().collect())
}
