//! Delta windows: batching mutation streams with compaction before [`CDatabase::apply`].
//!
//! A standing-query service (see `pw_decide::batch::Session::push_delta`) pays a fixed
//! cost per *applied* delta: cache retirement, the coupling-graph walk, and a re-decision
//! of every affected request.  When mutations arrive faster than verdicts need to be
//! refreshed, a [`DeltaWindow`] amortizes that cost: deltas are buffered and emitted in
//! batches, and the batch is **compacted** first — an inserted row retracted inside the
//! same window cancels to nothing, repeated conjoins on one row fold into a single op,
//! and retractions of pre-window rows are re-addressed so the emitted [`Delta`] applies
//! in one pass.  A window whose ops cancel entirely emits an empty delta, which
//! [`CDatabase::apply`] recognizes as a no-op — the decision layer does zero work.
//!
//! # Compaction rule
//!
//! The emitted delta must produce, per table, exactly the row vector (order included)
//! that applying the buffered deltas sequentially would have produced.  Compaction
//! replays the buffered ops against a virtual slot list per table — base rows (present
//! when the window opened) and inserted rows — then emits, per table, in this order:
//!
//! 1. one [`DeltaOp::Conjoin`] per surviving base row with accumulated atoms, at the
//!    row's *original* position (valid because no rows have been removed yet);
//! 2. [`DeltaOp::Retract`]s of removed base rows in *descending* original position
//!    (each index still valid because higher rows go first);
//! 3. [`DeltaOp::Insert`]s of surviving inserted rows, in insertion order, with their
//!    accumulated conditions folded in.
//!
//! Base rows keep their relative order and inserted rows append at the end in both the
//! sequential and the compacted execution, so the results coincide.  Since
//! [`pw_condition::Conjunction::and`] concatenates atoms, folding consecutive conjoins
//! into one op conjoins the same atoms in the same order.
//!
//! # Validation
//!
//! Ops are validated **at push time** against the window's virtual row counts (the
//! database's counts when the window opened, advanced through every buffered op), so a
//! bad delta is rejected atomically with the usual [`DeltaError`]s and the buffer stays
//! intact.  A validated buffer compacts infallibly.

use crate::delta::{Delta, DeltaError, DeltaOp};
use crate::table::CTuple;
use crate::CDatabase;
use pw_condition::Conjunction;
use std::collections::BTreeMap;

/// The windowing policy, counted in pushed deltas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowKind {
    /// Buffer `size` deltas, then emit them as one compacted delta and start over.
    Tumbling {
        /// Deltas per emitted batch (≥ 1).
        size: usize,
    },
    /// Keep at most `size` deltas buffered; once full, emit the oldest `slide` of them
    /// as one compacted delta and keep the remaining `size - slide` buffered (each
    /// pushed delta is emitted exactly once — the overlap only delays emission so that
    /// nearby deltas can cancel).
    Sliding {
        /// Buffer capacity (≥ 1).
        size: usize,
        /// Deltas emitted per slide (1 ..= size).
        slide: usize,
    },
}

impl WindowKind {
    fn capacity(&self) -> usize {
        match *self {
            WindowKind::Tumbling { size } => size,
            WindowKind::Sliding { size, .. } => size,
        }
    }

    fn emit_len(&self) -> usize {
        match *self {
            WindowKind::Tumbling { size } => size,
            WindowKind::Sliding { slide, .. } => slide,
        }
    }
}

/// A window over a [`Delta`] stream for one [`CDatabase`], compacting each emitted
/// batch.  The window tracks the database's row counts; feed every emitted delta to
/// [`CDatabase::apply`] (in emission order) to keep the two in sync.
#[derive(Clone, Debug)]
pub struct DeltaWindow {
    kind: WindowKind,
    buffer: Vec<Delta>,
    /// Row count per relation at the *start* of the buffer (i.e. after every delta
    /// emitted so far, before any buffered one).
    base_lens: BTreeMap<String, usize>,
    /// Row count per relation after every buffered delta — the state pushes validate
    /// against.
    virtual_lens: BTreeMap<String, usize>,
}

impl DeltaWindow {
    /// A tumbling window of `size` deltas (clamped to ≥ 1) over `db`'s current state.
    pub fn tumbling(db: &CDatabase, size: usize) -> Self {
        Self::new(db, WindowKind::Tumbling { size: size.max(1) })
    }

    /// A sliding window of capacity `size` emitting `slide` deltas per slide (both
    /// clamped into range) over `db`'s current state.
    pub fn sliding(db: &CDatabase, size: usize, slide: usize) -> Self {
        let size = size.max(1);
        Self::new(
            db,
            WindowKind::Sliding {
                size,
                slide: slide.clamp(1, size),
            },
        )
    }

    /// A window with an explicit [`WindowKind`] (sizes already validated by the
    /// constructors above; out-of-range values are clamped the same way).
    pub fn new(db: &CDatabase, kind: WindowKind) -> Self {
        let kind = match kind {
            WindowKind::Tumbling { size } => WindowKind::Tumbling { size: size.max(1) },
            WindowKind::Sliding { size, slide } => {
                let size = size.max(1);
                WindowKind::Sliding {
                    size,
                    slide: slide.clamp(1, size),
                }
            }
        };
        let lens: BTreeMap<String, usize> = db
            .tables()
            .iter()
            .map(|t| (t.name().to_owned(), t.len()))
            .collect();
        DeltaWindow {
            kind,
            buffer: Vec::new(),
            base_lens: lens.clone(),
            virtual_lens: lens,
        }
    }

    /// The windowing policy.
    pub fn kind(&self) -> WindowKind {
        self.kind
    }

    /// Buffered deltas not yet emitted.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Push one delta.  Returns `Ok(Some(compacted))` when the push closes a batch —
    /// apply the compacted delta to the database — and `Ok(None)` while buffering.
    /// An invalid delta (unknown relation, out-of-range row, arity mismatch is left to
    /// `apply`) is rejected whole and the buffer is unchanged.
    pub fn push(&mut self, delta: Delta) -> Result<Option<Delta>, DeltaError> {
        self.validate(&delta)?;
        self.buffer.push(delta);
        if self.buffer.len() >= self.kind.capacity() {
            let emit = self.kind.emit_len().min(self.buffer.len());
            Ok(Some(self.compact_prefix(emit)))
        } else {
            Ok(None)
        }
    }

    /// Emit everything still buffered as one compacted delta (`None` if the buffer is
    /// empty).  Use on shutdown, or to force timely verdicts on a quiescent stream.
    pub fn flush(&mut self) -> Option<Delta> {
        if self.buffer.is_empty() {
            None
        } else {
            Some(self.compact_prefix(self.buffer.len()))
        }
    }

    /// Validate `delta` against the virtual row counts and, on success, advance them.
    fn validate(&mut self, delta: &Delta) -> Result<(), DeltaError> {
        // Two passes so rejection leaves the counts untouched (atomicity).
        let mut scratch: BTreeMap<&str, usize> = BTreeMap::new();
        for op in delta.ops() {
            let (table, len) = match op {
                DeltaOp::Insert { table, .. }
                | DeltaOp::Retract { table, .. }
                | DeltaOp::Conjoin { table, .. } => {
                    let len = match scratch.get(table.as_str()) {
                        Some(&len) => len,
                        None => *self
                            .virtual_lens
                            .get(table)
                            .ok_or_else(|| DeltaError::UnknownRelation(table.clone()))?,
                    };
                    (table, len)
                }
            };
            let next = match op {
                DeltaOp::Insert { .. } => len + 1,
                DeltaOp::Retract { row, .. } | DeltaOp::Conjoin { row, .. } => {
                    if *row >= len {
                        return Err(DeltaError::RowOutOfRange {
                            table: table.clone(),
                            row: *row,
                            len,
                        });
                    }
                    match op {
                        DeltaOp::Retract { .. } => len - 1,
                        _ => len,
                    }
                }
            };
            scratch.insert(table.as_str(), next);
        }
        let committed: Vec<(String, usize)> = scratch
            .into_iter()
            .map(|(t, len)| (t.to_owned(), len))
            .collect();
        for (table, len) in committed {
            self.virtual_lens.insert(table, len);
        }
        Ok(())
    }

    /// Compact the oldest `count` buffered deltas into one, removing them from the
    /// buffer and advancing the base row counts.  The buffer prefix has been validated,
    /// so replay cannot fail.
    fn compact_prefix(&mut self, count: usize) -> Delta {
        let batch: Vec<Delta> = self.buffer.drain(..count).collect();
        let mut tables: BTreeMap<String, TableReplay> = BTreeMap::new();
        for delta in &batch {
            for op in delta.ops() {
                match op {
                    DeltaOp::Insert { table, row } => {
                        self.replay_entry(&mut tables, table).insert(row.clone());
                    }
                    DeltaOp::Retract { table, row } => {
                        self.replay_entry(&mut tables, table).retract(*row);
                    }
                    DeltaOp::Conjoin {
                        table,
                        row,
                        condition,
                    } => {
                        self.replay_entry(&mut tables, table)
                            .conjoin(*row, condition);
                    }
                }
            }
        }
        let mut compacted = Delta::new();
        for (name, replay) in tables {
            let new_len = replay.len();
            replay.emit(&name, &mut compacted);
            self.base_lens.insert(name, new_len);
        }
        compacted
    }

    fn replay_entry<'a>(
        &self,
        tables: &'a mut BTreeMap<String, TableReplay>,
        name: &str,
    ) -> &'a mut TableReplay {
        if !tables.contains_key(name) {
            let len = *self
                .base_lens
                .get(name)
                .expect("validated delta names a known relation");
            tables.insert(name.to_owned(), TableReplay::open(len));
        }
        tables.get_mut(name).expect("just inserted")
    }
}

/// One row's identity during replay: either a row that existed when the batch opened
/// (addressed by its original position) or a row inserted inside the batch.
enum Slot {
    Base {
        original: usize,
        conjoined: Conjunction,
    },
    Inserted(CTuple),
}

/// The virtual row list of one table while a batch replays through it.  The invariant
/// that inserts append and retracts preserve order means base slots always precede
/// inserted slots.
struct TableReplay {
    slots: Vec<Slot>,
    retracted: Vec<usize>,
}

impl TableReplay {
    fn open(len: usize) -> Self {
        TableReplay {
            slots: (0..len)
                .map(|original| Slot::Base {
                    original,
                    conjoined: Conjunction::truth(),
                })
                .collect(),
            retracted: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn insert(&mut self, row: CTuple) {
        self.slots.push(Slot::Inserted(row));
    }

    fn retract(&mut self, row: usize) {
        match self.slots.remove(row) {
            // A base row: the emitted delta must retract it (any conjoins accumulated
            // on it die with it).
            Slot::Base { original, .. } => self.retracted.push(original),
            // An in-window insert: the pair cancels — nothing is emitted.
            Slot::Inserted(_) => {}
        }
    }

    fn conjoin(&mut self, row: usize, condition: &Conjunction) {
        match &mut self.slots[row] {
            Slot::Base { conjoined, .. } => *conjoined = conjoined.and(condition),
            Slot::Inserted(tuple) => tuple.condition = tuple.condition.and(condition),
        }
    }

    fn emit(self, name: &str, delta: &mut Delta) {
        // 1. Conjoins on surviving base rows, at original positions (nothing removed
        //    yet at apply time).
        for slot in &self.slots {
            if let Slot::Base {
                original,
                conjoined,
            } = slot
            {
                if !conjoined.is_empty() {
                    delta.push(DeltaOp::Conjoin {
                        table: name.to_owned(),
                        row: *original,
                        condition: conjoined.clone(),
                    });
                }
            }
        }
        // 2. Retracts of removed base rows, descending so earlier indices stay valid.
        let mut retracted = self.retracted;
        retracted.sort_unstable_by(|a, b| b.cmp(a));
        for original in retracted {
            delta.push(DeltaOp::Retract {
                table: name.to_owned(),
                row: original,
            });
        }
        // 3. Surviving inserts, in insertion order, conditions folded in.
        for slot in self.slots {
            if let Slot::Inserted(row) = slot {
                delta.push(DeltaOp::Insert {
                    table: name.to_owned(),
                    row,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::CTable;
    use pw_condition::{Atom, Term, VarGen};

    fn demo() -> CDatabase {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        CDatabase::new([
            CTable::codd("R", 1, [vec![Term::Var(x)], vec![Term::constant(1)]]).unwrap(),
            CTable::codd("S", 1, [vec![Term::Var(y)]]).unwrap(),
        ])
    }

    fn apply_all(db: &CDatabase, deltas: &[Delta]) -> CDatabase {
        deltas
            .iter()
            .fold(db.clone(), |acc, d| acc.apply(d).expect("delta applies").0)
    }

    #[test]
    fn tumbling_window_buffers_then_emits_an_equivalent_batch() {
        let db = demo();
        let deltas = vec![
            Delta::new().insert("R", CTuple::of_terms([Term::constant(7)])),
            Delta::new().retract("S", 0),
            Delta::new().conjoin("R", 0, Conjunction::single(Atom::neq(Term::constant(3), 4))),
        ];
        let mut window = DeltaWindow::tumbling(&db, 3);
        assert!(window.push(deltas[0].clone()).unwrap().is_none());
        assert!(window.push(deltas[1].clone()).unwrap().is_none());
        assert_eq!(window.pending(), 2);
        let emitted = window
            .push(deltas[2].clone())
            .unwrap()
            .expect("third push closes the window");
        assert_eq!(window.pending(), 0);
        let (via_window, _) = db.apply(&emitted).unwrap();
        assert_eq!(via_window, apply_all(&db, &deltas));
    }

    #[test]
    fn an_insert_retract_pair_cancels_to_a_noop() {
        let db = demo();
        let mut window = DeltaWindow::tumbling(&db, 2);
        // R has 2 rows; the insert lands at position 2 and is retracted unseen.
        assert!(window
            .push(Delta::new().insert("R", CTuple::of_terms([Term::constant(9)])))
            .unwrap()
            .is_none());
        let emitted = window
            .push(Delta::new().retract("R", 2))
            .unwrap()
            .expect("window closes");
        assert!(emitted.is_empty(), "cancelled pair emits nothing");
        let (next, change) = db.apply(&emitted).unwrap();
        assert!(change.is_noop());
        assert_eq!(next, db);
    }

    #[test]
    fn compaction_readdresses_retracts_and_folds_conjoins() {
        let db = demo();
        let atom = |c: i64, k: i64| Conjunction::single(Atom::neq(Term::constant(c), k));
        // Within one window: conjoin R[1] twice, retract R[0] (shifting R[1] to R[0]),
        // insert a row, conjoin the inserted row.
        let deltas = vec![
            Delta::new().conjoin("R", 1, atom(5, 6)),
            Delta::new().retract("R", 0).conjoin("R", 0, atom(7, 8)),
            Delta::new()
                .insert("R", CTuple::of_terms([Term::constant(2)]))
                .conjoin("R", 1, atom(9, 10)),
        ];
        let mut window = DeltaWindow::tumbling(&db, 3);
        let mut emitted = None;
        for d in &deltas {
            emitted = window.push(d.clone()).unwrap();
        }
        let emitted = emitted.expect("window closed");
        let (via_window, _) = db.apply(&emitted).unwrap();
        assert_eq!(via_window, apply_all(&db, &deltas));
    }

    #[test]
    fn sliding_window_emits_the_oldest_slide_and_keeps_the_overlap() {
        let db = demo();
        let mut window = DeltaWindow::sliding(&db, 3, 2);
        let deltas: Vec<Delta> = (0..5)
            .map(|i| Delta::new().insert("S", CTuple::of_terms([Term::constant(i)])))
            .collect();
        let mut emissions = Vec::new();
        for d in &deltas {
            if let Some(e) = window.push(d.clone()).unwrap() {
                emissions.push(e);
            }
        }
        // Pushes 3 and 5 fill the capacity-3 buffer: two emissions of two deltas each,
        // one delta left pending.
        assert_eq!(emissions.len(), 2);
        assert_eq!(window.pending(), 1);
        let tail = window.flush().expect("one pending delta");
        assert!(window.flush().is_none());
        emissions.push(tail);
        let mut via_window = db.clone();
        for e in &emissions {
            via_window = via_window.apply(e).unwrap().0;
        }
        assert_eq!(via_window, apply_all(&db, &deltas));
    }

    #[test]
    fn pushes_validate_against_the_virtual_state_atomically() {
        let db = demo();
        let mut window = DeltaWindow::tumbling(&db, 10);
        // S has 1 row; retract it (virtually) ...
        assert!(window.push(Delta::new().retract("S", 0)).unwrap().is_none());
        // ... so a second retraction is out of range *for the virtual state*.
        assert_eq!(
            window.push(Delta::new().retract("S", 0)).unwrap_err(),
            DeltaError::RowOutOfRange {
                table: "S".into(),
                row: 0,
                len: 0,
            }
        );
        assert_eq!(
            window.push(Delta::new().retract("Nope", 0)).unwrap_err(),
            DeltaError::UnknownRelation("Nope".into())
        );
        // A partially-valid delta is rejected whole: the insert must not count.
        let mixed = Delta::new()
            .insert("S", CTuple::of_terms([Term::constant(1)]))
            .retract("Nope", 0);
        assert!(window.push(mixed).is_err());
        assert_eq!(window.pending(), 1, "rejected deltas are not buffered");
        // The virtual state is untouched by the rejections: inserting one row into S
        // then retracting position 0 is valid again.
        assert!(window
            .push(Delta::new().insert("S", CTuple::of_terms([Term::constant(2)])))
            .unwrap()
            .is_none());
        assert!(window.push(Delta::new().retract("S", 0)).unwrap().is_none());
        // Flush applies cleanly.
        let emitted = window.flush().expect("three pending deltas");
        let (next, _) = db.apply(&emitted).unwrap();
        assert_eq!(next.table("S").unwrap().len(), 0);
    }
}
