//! The worked example of Fig. 1: one table for every level of the hierarchy.
//!
//! Fig. 1 of the paper shows five representations of sets of instances:
//!
//! * `Ta` — a **table** (Codd-table) with rows `(0,1,x)`, `(y,z,1)`, `(2,0,v)`;
//! * `Tb` — an **e-table** with rows `(0,1,x)`, `(x,z,1)`, `(2,0,z)` (the variable
//!   repetitions encode equalities);
//! * `Tc` — an **i-table**: the rows of `Ta` plus the global condition `x ≠ 0 ∧ y ≠ z`;
//! * `Td` — a **g-table**: the rows of `Tb` plus the global condition `x ≠ z`;
//! * `Te` — a **c-table** of arity 2 with global condition `x ≠ 1 ∧ y ≠ 2` and rows
//!   `(0,1) ‖ z = z`, `(0,x) ‖ y = 0`, `(y,x) ‖ x ≠ y`.
//!
//! Example 2.1 instantiates them with the valuation σ = {x↦2, y↦3, z↦0, v↦5}.
//! These constructors are used by the quickstart example and by the Fig. 1 reproduction
//! test.

use crate::{CTable, CTuple, Valuation};
use pw_condition::{Atom, Conjunction, Term, VarGen, Variable};

/// The five Fig. 1 representations, their shared variables, and the valuation of
/// Example 2.1.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// The table (Codd-table) Ta.
    pub ta: CTable,
    /// The e-table Tb.
    pub tb: CTable,
    /// The i-table Tc.
    pub tc: CTable,
    /// The g-table Td.
    pub td: CTable,
    /// The c-table Te.
    pub te: CTable,
    /// The variable named `x`.
    pub x: Variable,
    /// The variable named `y`.
    pub y: Variable,
    /// The variable named `z`.
    pub z: Variable,
    /// The variable named `v`.
    pub v: Variable,
    /// The valuation σ of Example 2.1 (x↦2, y↦3, z↦0, v↦5).
    pub sigma: Valuation,
}

/// Build the Fig. 1 tables.
pub fn fig1() -> Fig1 {
    let mut vars = VarGen::new();
    let x = vars.named("x");
    let y = vars.named("y");
    let z = vars.named("z");
    let v = vars.named("v");

    let ta = CTable::codd(
        "Ta",
        3,
        [
            vec![Term::constant(0), Term::constant(1), Term::Var(x)],
            vec![Term::Var(y), Term::Var(z), Term::constant(1)],
            vec![Term::constant(2), Term::constant(0), Term::Var(v)],
        ],
    )
    .expect("Ta is a valid Codd-table");

    let tb = CTable::e_table(
        "Tb",
        3,
        [
            vec![Term::constant(0), Term::constant(1), Term::Var(x)],
            vec![Term::Var(x), Term::Var(z), Term::constant(1)],
            vec![Term::constant(2), Term::constant(0), Term::Var(z)],
        ],
    )
    .expect("Tb is a valid e-table");

    let tc = CTable::i_table(
        "Tc",
        3,
        Conjunction::new([Atom::neq(x, 0), Atom::neq(y, z)]),
        [
            vec![Term::constant(0), Term::constant(1), Term::Var(x)],
            vec![Term::Var(y), Term::Var(z), Term::constant(1)],
            vec![Term::constant(2), Term::constant(0), Term::Var(v)],
        ],
    )
    .expect("Tc is a valid i-table");

    let td = CTable::g_table(
        "Td",
        3,
        Conjunction::new([Atom::neq(x, z)]),
        [
            vec![Term::constant(0), Term::constant(1), Term::Var(x)],
            vec![Term::Var(x), Term::Var(z), Term::constant(1)],
            vec![Term::constant(2), Term::constant(0), Term::Var(z)],
        ],
    )
    .expect("Td is a valid g-table");

    let te = CTable::new(
        "Te",
        2,
        Conjunction::new([Atom::neq(x, 1), Atom::neq(y, 2)]),
        [
            CTuple::with_condition(
                [Term::constant(0), Term::constant(1)],
                Conjunction::new([Atom::eq(z, z)]),
            ),
            CTuple::with_condition(
                [Term::constant(0), Term::Var(x)],
                Conjunction::new([Atom::eq(y, 0)]),
            ),
            CTuple::with_condition(
                [Term::Var(y), Term::Var(x)],
                Conjunction::new([Atom::neq(x, y)]),
            ),
        ],
    )
    .expect("Te is a valid c-table");

    let sigma = Valuation::from_pairs([(x, 2i64), (y, 3), (z, 0), (v, 5)]);

    Fig1 {
        ta,
        tb,
        tc,
        td,
        te,
        x,
        y,
        z,
        v,
        sigma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CDatabase, TableClass};
    use pw_relational::tup;

    #[test]
    fn classifications_match_fig1() {
        let f = fig1();
        assert_eq!(f.ta.classify(), TableClass::Codd);
        assert_eq!(f.tb.classify(), TableClass::ETable);
        assert_eq!(f.tc.classify(), TableClass::ITable);
        assert_eq!(f.td.classify(), TableClass::GTable);
        assert_eq!(f.te.classify(), TableClass::CTable);
    }

    #[test]
    fn example_2_1_valuation_instantiates_ta() {
        let f = fig1();
        // σ(Ta) = {(0,1,2), (3,0,1), (2,0,5)}
        let world = f
            .sigma
            .world_of(&CDatabase::single(f.ta.clone()))
            .expect("tables have no conditions, every valuation works");
        let rel = world.relation("Ta").unwrap();
        assert!(rel.contains(&tup![0, 1, 2]));
        assert!(rel.contains(&tup![3, 0, 1]));
        assert!(rel.contains(&tup![2, 0, 5]));
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn example_2_1_valuation_satisfies_tc_and_td() {
        let f = fig1();
        // σ satisfies x ≠ 0 ∧ y ≠ z (x=2, y=3, z=0) and x ≠ z (2 ≠ 0).
        assert_eq!(f.sigma.satisfies(f.tc.global_condition()), Some(true));
        assert_eq!(f.sigma.satisfies(f.td.global_condition()), Some(true));
        let world = f.sigma.world_of(&CDatabase::single(f.td.clone())).unwrap();
        let rel = world.relation("Td").unwrap();
        assert!(rel.contains(&tup![0, 1, 2]));
        assert!(rel.contains(&tup![2, 0, 1]));
        assert!(rel.contains(&tup![2, 0, 0]));
    }

    #[test]
    fn te_local_conditions_select_rows() {
        let f = fig1();
        // Under σ (x=2, y=3): global x≠1 ∧ y≠2 holds; row 1 (z=z) always in; row 2 needs
        // y=0 (fails); row 3 needs x≠y (2≠3 holds) giving (3, 2).
        let world = f.sigma.world_of(&CDatabase::single(f.te.clone())).unwrap();
        let rel = world.relation("Te").unwrap();
        assert!(rel.contains(&tup![0, 1]));
        assert!(rel.contains(&tup![3, 2]));
        assert_eq!(rel.len(), 2);
    }
}
