//! Proof-carrying verdicts: the evidence a decision procedure can attach to its answer.
//!
//! The decision problems of the paper live between NP and Π₂ᵖ, but each *answer* on the
//! easy side of its quantifier has short, polynomially checkable evidence: a witness
//! valuation for yes-membership / yes-possibility, a counter-world valuation for
//! no-certainty / no-uniqueness / no-containment, the frozen-membership reduction of
//! Theorem 4.1 for yes-containment, and a per-aligned-pair decomposition when a
//! containment splits along variable-disjoint shard groups.  Answers on the *hard* side
//! of the quantifier (a universally quantified "no possible world …") have no short
//! certificate; the engine marks those [`Certificate::Exhaustive`] and an external
//! checker must trust the search — the trust boundary is explicit in the enum.
//!
//! The types live in `pw-core` (not `pw-decide`) so an independent checker can verify
//! certificates without depending on — and thereby silently trusting — the engine that
//! produced them.

use crate::Valuation;
use std::collections::BTreeSet;

/// Evidence attached to a decision verdict.
///
/// Which variants are admissible for which (problem, answer) pair is the checker's
/// contract, not this type's: the enum only fixes the *grammar*.  See `pw_check` for
/// the acceptance table and BOOK.md §13 for the rationale.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// A satisfying valuation σ of the database whose induced world σ(𝒟) exhibits the
    /// claimed property (σ(𝒟) = I for yes-membership, facts ⊆ q(σ(𝒟)) for
    /// yes-possibility).
    Witness {
        /// The witnessing valuation, in the claimed database's symbol context.
        valuation: Valuation,
    },
    /// A satisfying valuation σ whose induced world *violates* the universally
    /// quantified property (q(σ(𝒟)) ⊉ facts for no-certainty, σ(𝒟) ≠ I for
    /// no-uniqueness, σ(left) outside rep of the right side for no-containment).
    CounterWorld {
        /// The refuting valuation, in the claimed database's symbol context.
        valuation: Valuation,
    },
    /// The database represents no world at all: the conjunction of its global
    /// conditions is unsatisfiable, so rep(𝒟) = ∅ and the claim holds vacuously
    /// (no-membership, no-possibility, yes-certainty over an empty rep, …).
    EmptyRep,
    /// Yes-certainty by the freeze construction of Theorem 5.3(1): the query is
    /// monotone, the database normalises to a g-table, and evaluating the query on the
    /// frozen instance K₀ already yields every claimed fact — monotonicity then gives
    /// the facts in *every* world.  The checker replays normalise → freeze → evaluate.
    CertainByFreeze,
    /// Yes-containment by the freeze reduction of Theorem 4.1: the frozen left-hand
    /// instance K₀ is a member of the right-hand side's representation, shown by the
    /// inner membership certificate (a [`Certificate::Witness`] against the right
    /// database and K₀).
    FrozenMembership {
        /// The membership evidence for K₀ against the right-hand database.
        witness: Box<Certificate>,
    },
    /// Yes-containment decomposed along aligned variable-disjoint shard groups: each
    /// pair of aligned groups is contained on its own, and variable-disjointness makes
    /// the product of the per-group containments a containment of the products.
    Decomposition {
        /// One entry per aligned shard-group pair, covering both sides exactly.
        pairs: Vec<PairCert>,
    },
    /// No short evidence exists for this (problem, answer) polarity — the verdict
    /// rests on an exhaustive search.  A checker accepts this only where the polarity
    /// genuinely has no polynomial certificate (yes-uniqueness, universally-quantified
    /// "no"s); accepting it anywhere else would make the checker vacuous.
    Exhaustive,
}

/// One aligned shard-group pair of a containment [`Certificate::Decomposition`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairCert {
    /// The relation names of this group — identical on both sides by alignment.
    pub relations: BTreeSet<String>,
    /// The containment certificate for the pair, recursively checked.
    pub certificate: Certificate,
}

impl Certificate {
    /// A [`Certificate::Witness`] from a valuation.
    pub fn witness(valuation: Valuation) -> Self {
        Certificate::Witness { valuation }
    }

    /// A [`Certificate::CounterWorld`] from a valuation.
    pub fn counter_world(valuation: Valuation) -> Self {
        Certificate::CounterWorld { valuation }
    }

    /// Short display name of the variant (for logs and test diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            Certificate::Witness { .. } => "witness",
            Certificate::CounterWorld { .. } => "counter-world",
            Certificate::EmptyRep => "empty-rep",
            Certificate::CertainByFreeze => "certain-by-freeze",
            Certificate::FrozenMembership { .. } => "frozen-membership",
            Certificate::Decomposition { .. } => "decomposition",
            Certificate::Exhaustive => "exhaustive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(Certificate::witness(Valuation::new()).kind(), "witness");
        assert_eq!(
            Certificate::counter_world(Valuation::new()).kind(),
            "counter-world"
        );
        assert_eq!(Certificate::EmptyRep.kind(), "empty-rep");
        assert_eq!(Certificate::Exhaustive.kind(), "exhaustive");
        assert_eq!(
            Certificate::FrozenMembership {
                witness: Box::new(Certificate::witness(Valuation::new())),
            }
            .kind(),
            "frozen-membership"
        );
        assert_eq!(
            Certificate::Decomposition { pairs: vec![] }.kind(),
            "decomposition"
        );
        assert_eq!(Certificate::CertainByFreeze.kind(), "certain-by-freeze");
    }

    #[test]
    fn certificates_compare_structurally() {
        let a = Certificate::Decomposition {
            pairs: vec![PairCert {
                relations: ["R".to_owned()].into(),
                certificate: Certificate::EmptyRep,
            }],
        };
        assert_eq!(a, a.clone());
        assert_ne!(a, Certificate::Decomposition { pairs: vec![] });
    }
}
