//! The c-table algebra: evaluating positive existential queries directly on c-tables.
//!
//! Imieliński and Lipski showed that c-tables form a *representation system* for relational
//! algebra: for a positive existential query `q` and a c-table database `𝒯` one can compute,
//! in time polynomial in `|𝒯|` for fixed `q`, a c-table `q(𝒯)` with
//! `rep(q(𝒯)) = { q(I) | I ∈ rep(𝒯) }`.  The paper uses this fact twice:
//!
//! * Theorem 3.2(2): uniqueness of positive existential views of e-tables is in PTIME — the
//!   algorithm starts by computing the equivalent c-table (step (a));
//! * Theorem 5.2(1): bounded possibility for positive existential queries on c-tables is in
//!   PTIME — "the idea is to transform the given positive existential view of a c-table into
//!   another equivalent c-table, that is not bigger than a polynomial of the size of the
//!   input".
//!
//! [`eval_ucq`] implements the construction for unions of conjunctive queries (with optional
//! ≠ side conditions, which become inequality atoms in the local conditions).

use crate::table::{CTable, CTuple};
use crate::CDatabase;
use pw_condition::{Atom, Conjunction, Term};
use pw_query::{ConjunctiveQuery, QTerm, Ucq};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by the c-table algebra.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlgebraError {
    /// The query references a relation that is not a table of the database.
    UnknownRelation(String),
    /// The query uses a relation with an arity different from the table's.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity of the c-table.
        table: usize,
        /// Arity used in the query.
        query: usize,
    },
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownRelation(r) => write!(f, "query references unknown table {r:?}"),
            AlgebraError::ArityMismatch {
                relation,
                table,
                query,
            } => write!(
                f,
                "arity mismatch on {relation:?}: table has {table}, query uses {query}"
            ),
        }
    }
}

impl std::error::Error for AlgebraError {}

/// Evaluate a union of conjunctive queries on a c-table database, producing a c-table
/// `out` (named `output_name`) such that `rep(out ⊕ globals) = { q(I) | I ∈ rep(db) }`,
/// where the global condition of `out` is the conjunction of all the database's global
/// conditions (so that the result is a self-contained c-table).
pub fn eval_ucq(q: &Ucq, db: &CDatabase, output_name: &str) -> Result<CTable, AlgebraError> {
    // Combined global condition of the whole database.
    let mut global = Conjunction::truth();
    for t in db.tables() {
        global = global.and(t.global_condition());
    }

    let mut out_tuples: Vec<CTuple> = Vec::new();
    for cq in q.disjuncts() {
        eval_cq_into(cq, db, &mut out_tuples)?;
    }

    CTable::new(output_name, q.arity(), global, out_tuples)
        .map_err(|_| unreachable!("head arity is uniform by Ucq construction"))
}

/// A query-term slot with the constants pre-interned: resolving a slot inside the
/// per-row-combination loop is an index lookup or a `Copy`, never an allocation.
#[derive(Clone, Copy)]
enum Slot {
    /// A pre-interned query constant.
    Const(Term),
    /// The query variable with this binding index.
    Var(usize),
}

/// Evaluate a single conjunctive query, appending the produced conditional tuples.
fn eval_cq_into(
    cq: &ConjunctiveQuery,
    db: &CDatabase,
    out: &mut Vec<CTuple>,
) -> Result<(), AlgebraError> {
    // Resolve the tables for each body atom up front.
    let mut atom_tables: Vec<&CTable> = Vec::with_capacity(cq.body.len());
    for atom in &cq.body {
        let table = db
            .table(&atom.relation)
            .ok_or_else(|| AlgebraError::UnknownRelation(atom.relation.clone()))?;
        if table.arity() != atom.arity() {
            return Err(AlgebraError::ArityMismatch {
                relation: atom.relation.clone(),
                table: table.arity(),
                query: atom.arity(),
            });
        }
        atom_tables.push(table);
    }

    // Intern the query's constants and index its variables once, before the row loop.
    // Interning goes through the database's own symbol handle so the produced atoms are
    // comparable with the rows of a private-dictionary database.
    let mut var_slots: BTreeMap<String, usize> = BTreeMap::new();
    let mut slot_of = |t: &QTerm| -> Slot {
        match t {
            QTerm::Const(c) => Slot::Const(Term::Const(db.intern(c))),
            QTerm::Var(name) => {
                let next = var_slots.len();
                Slot::Var(*var_slots.entry(name.clone()).or_insert(next))
            }
        }
    };
    let body_slots: Vec<Vec<Slot>> = cq
        .body
        .iter()
        .map(|atom| atom.terms.iter().map(&mut slot_of).collect())
        .collect();
    let neq_slots: Vec<(Slot, Slot)> = cq
        .neq
        .iter()
        .map(|(a, b)| (slot_of(a), slot_of(b)))
        .collect();
    let head_slots: Vec<Slot> = cq.head.iter().map(&mut slot_of).collect();
    let prepared = PreparedCq {
        body_slots,
        neq_slots,
        head_slots,
        var_count: var_slots.len(),
    };

    // Iterate over every combination of rows, one per body atom.
    let mut choice = vec![0usize; cq.body.len()];
    if atom_tables.iter().any(|t| t.is_empty()) && !cq.body.is_empty() {
        return Ok(());
    }
    let mut binding: Vec<Option<Term>> = vec![None; prepared.var_count];
    loop {
        build_candidate(&prepared, &atom_tables, &choice, &mut binding, out);

        // Advance the mixed-radix counter over row choices.
        if choice.is_empty() {
            break; // A body-less query contributes a single (unconditional) head tuple.
        }
        let mut pos = 0;
        loop {
            choice[pos] += 1;
            if choice[pos] < atom_tables[pos].len() {
                break;
            }
            choice[pos] = 0;
            pos += 1;
            if pos == choice.len() {
                return Ok(());
            }
        }
    }
    Ok(())
}

/// A conjunctive query with constants interned and variables indexed (see [`Slot`]).
struct PreparedCq {
    body_slots: Vec<Vec<Slot>>,
    neq_slots: Vec<(Slot, Slot)>,
    head_slots: Vec<Slot>,
    var_count: usize,
}

/// Build the conditional tuple for one choice of rows, if its condition is satisfiable.
/// Terms are `Copy`: every equality/inequality atom is built by move.
fn build_candidate(
    cq: &PreparedCq,
    atom_tables: &[&CTable],
    choice: &[usize],
    binding: &mut [Option<Term>],
    out: &mut Vec<CTuple>,
) {
    let mut condition = Conjunction::truth();
    binding.fill(None);

    for ((slots, table), &row_idx) in cq.body_slots.iter().zip(atom_tables).zip(choice) {
        let row = &table.tuples()[row_idx];
        // The chosen row must itself be present: conjoin its local condition.
        condition = condition.and(&row.condition);
        for (&slot, &rterm) in slots.iter().zip(&row.terms) {
            match slot {
                Slot::Const(qterm) => {
                    // The row term must equal the query constant.
                    if rterm != qterm {
                        condition.push(Atom::Eq(rterm, qterm));
                    }
                }
                Slot::Var(idx) => match binding[idx] {
                    None => binding[idx] = Some(rterm),
                    Some(bound) => {
                        if bound != rterm {
                            condition.push(Atom::Eq(bound, rterm));
                        }
                    }
                },
            }
        }
    }

    // ≠ side conditions become inequality atoms over the bound terms.
    let resolve = |s: Slot| -> Option<Term> {
        match s {
            Slot::Const(t) => Some(t),
            Slot::Var(idx) => binding[idx],
        }
    };
    for &(a, b) in &cq.neq_slots {
        match (resolve(a), resolve(b)) {
            (Some(ta), Some(tb)) => condition.push(Atom::Neq(ta, tb)),
            // Unsafe queries are rejected by `Ucq::new`; reaching here means the query was
            // built without validation — treat the unresolvable condition as false.
            _ => return,
        }
    }

    // Drop candidates whose condition is already unsatisfiable on its own (a cheap,
    // semantics-preserving pruning — such a tuple can never materialise).
    if !condition.is_satisfiable() {
        return;
    }

    // Head terms.
    let head_terms: Option<Vec<Term>> = cq.head_slots.iter().map(|&s| resolve(s)).collect();
    let Some(head_terms) = head_terms else {
        return;
    };

    out.push(CTuple::with_condition(head_terms, condition));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rep::ValuationIter;
    use pw_condition::{VarGen, Variable};
    use pw_query::qatom;
    use pw_relational::domain::fresh_constants;
    use pw_relational::{Constant, Relation};
    use std::collections::BTreeSet;

    /// Check the representation-system property `rep(out) = { q(I) | I ∈ rep(db) }`
    /// restricted to a common evaluation domain large enough to be conclusive (all
    /// constants of the database, the query and the result, plus one spare value per
    /// variable of either side).
    fn assert_representation_system(q: &Ucq, db: &CDatabase, out: &CTable) {
        let mut delta: BTreeSet<Constant> = db.constants();
        delta.extend(out.constants());
        delta.extend(q.constants());
        let spare = db.variables().len().max(out.variables().len());
        let fresh = fresh_constants(&delta, spare);
        let domain: Vec<Constant> = delta.into_iter().chain(fresh).collect();

        let view_worlds: BTreeSet<Relation> =
            ValuationIter::new(db.variables().into_iter().collect(), domain.clone())
                .filter_map(|v| v.world_of(db))
                .map(|world| q.eval(&world))
                .collect();

        let out_db = CDatabase::single(out.clone());
        let out_worlds: BTreeSet<Relation> =
            ValuationIter::new(out.variables().into_iter().collect(), domain)
                .filter_map(|v| v.world_of(&out_db))
                .map(|w| w.relation_or_empty(out.name(), out.arity()))
                .collect();

        assert_eq!(view_worlds, out_worlds);
    }

    fn fresh_vars(n: usize) -> Vec<Variable> {
        let mut g = VarGen::new();
        (0..n).map(|_| g.fresh()).collect()
    }

    #[test]
    fn projection_on_a_codd_table_is_a_representation_system() {
        let v = fresh_vars(2);
        // T = {(1, x), (y, 2)}
        let t = CTable::codd(
            "T",
            2,
            [
                vec![Term::constant(1), Term::Var(v[0])],
                vec![Term::Var(v[1]), Term::constant(2)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        // q(a) :- T(a, b)
        let q = Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("a")],
            [qatom!("T"; "a", "b")],
        ));
        let out = eval_ucq(&q, &db, "Q").unwrap();
        assert_eq!(out.arity(), 1);
        assert_representation_system(&q, &db, &out);
    }

    #[test]
    fn join_induces_equality_conditions() {
        let v = fresh_vars(2);
        // R = {(1, x)}, S = {(y, 3)}
        let r = CTable::codd("R", 2, [vec![Term::constant(1), Term::Var(v[0])]]).unwrap();
        let s = CTable::codd("S", 2, [vec![Term::Var(v[1]), Term::constant(3)]]).unwrap();
        let db = CDatabase::new([r, s]);
        // q(a, c) :- R(a, b), S(b, c)   — joins on b, forcing x = y.
        let q = Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("a"), QTerm::var("c")],
            [qatom!("R"; "a", "b"), qatom!("S"; "b", "c")],
        ));
        let out = eval_ucq(&q, &db, "Q").unwrap();
        assert_eq!(out.tuples().len(), 1);
        assert!(!out.tuples()[0].has_trivial_condition());
        assert_representation_system(&q, &db, &out);
    }

    #[test]
    fn union_and_constants_in_the_query() {
        let v = fresh_vars(1);
        let t = CTable::codd(
            "T",
            2,
            [
                vec![Term::constant(0), Term::Var(v[0])],
                vec![Term::constant(1), Term::constant(2)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        // q(b) :- T(0, b)  ∪  q(b) :- T(b, 2)
        let q = Ucq::new([
            ConjunctiveQuery::new([QTerm::var("b")], [qatom!("T"; 0, "b")]),
            ConjunctiveQuery::new([QTerm::var("b")], [qatom!("T"; "b", 2)]),
        ])
        .unwrap();
        let out = eval_ucq(&q, &db, "Q").unwrap();
        assert_representation_system(&q, &db, &out);
    }

    #[test]
    fn inequality_side_conditions_become_local_inequalities() {
        let v = fresh_vars(1);
        let t = CTable::codd("T", 1, [vec![Term::Var(v[0])], vec![Term::constant(5)]]).unwrap();
        let db = CDatabase::single(t);
        // q(a) :- T(a), a ≠ 5
        let q = Ucq::single(
            ConjunctiveQuery::new([QTerm::var("a")], [qatom!("T"; "a")]).with_neq("a", 5),
        );
        let out = eval_ucq(&q, &db, "Q").unwrap();
        // The row for the constant 5 is pruned (condition 5 ≠ 5 unsatisfiable).
        assert_eq!(out.tuples().len(), 1);
        assert_representation_system(&q, &db, &out);
    }

    #[test]
    fn queries_over_ctables_conjoin_local_conditions() {
        let v = fresh_vars(1);
        let x = v[0];
        // c-table: row (1) holds when x = 0, row (2) holds when x ≠ 0.
        let t = CTable::new(
            "T",
            1,
            Conjunction::truth(),
            [
                CTuple::with_condition([Term::constant(1)], Conjunction::new([Atom::eq(x, 0)])),
                CTuple::with_condition([Term::constant(2)], Conjunction::new([Atom::neq(x, 0)])),
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        // q(a, b) :- T(a), T(b)  — pairs of simultaneously-present facts.
        let q = Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("a"), QTerm::var("b")],
            [qatom!("T"; "a"), qatom!("T"; "b")],
        ));
        let out = eval_ucq(&q, &db, "Q").unwrap();
        // (1,2) and (2,1) require x = 0 ∧ x ≠ 0 and are pruned.
        assert_eq!(out.tuples().len(), 2);
        assert_representation_system(&q, &db, &out);
    }

    #[test]
    fn global_conditions_are_carried_to_the_result() {
        let v = fresh_vars(1);
        let x = v[0];
        let t = CTable::g_table(
            "T",
            1,
            Conjunction::new([Atom::neq(x, 9)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let q = Ucq::single(ConjunctiveQuery::new([QTerm::var("a")], [qatom!("T"; "a")]));
        let out = eval_ucq(&q, &db, "Q").unwrap();
        assert_eq!(out.global_condition().len(), 1);
        assert_representation_system(&q, &db, &out);
    }

    #[test]
    fn errors_on_unknown_relation_and_arity_mismatch() {
        let t = CTable::codd("T", 1, [vec![Term::constant(1)]]).unwrap();
        let db = CDatabase::single(t);
        let q = Ucq::single(ConjunctiveQuery::new([QTerm::var("a")], [qatom!("S"; "a")]));
        assert_eq!(
            eval_ucq(&q, &db, "Q").unwrap_err(),
            AlgebraError::UnknownRelation("S".into())
        );
        let q2 = Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("a")],
            [qatom!("T"; "a", "b")],
        ));
        assert!(matches!(
            eval_ucq(&q2, &db, "Q").unwrap_err(),
            AlgebraError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn result_size_is_polynomial_in_rows_for_fixed_query() {
        // |out| ≤ (rows per atom)^(number of atoms); for a fixed 2-atom query over n rows
        // this is ≤ n², and pruning usually keeps it smaller.
        let mut g = VarGen::new();
        let rows: Vec<Vec<Term>> = (0..10)
            .map(|i| vec![Term::constant(i), Term::Var(g.fresh())])
            .collect();
        let t = CTable::codd("T", 2, rows).unwrap();
        let db = CDatabase::single(t);
        let q = Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("a"), QTerm::var("c")],
            [qatom!("T"; "a", "b"), qatom!("T"; "b", "c")],
        ));
        let out = eval_ucq(&q, &db, "Q").unwrap();
        assert!(out.tuples().len() <= 100);
    }
}
