//! Deltas: incremental mutation of a [`CDatabase`] with cache-preserving application.
//!
//! A long-lived service absorbs traffic that *mutates* its databases between decisions —
//! rows are inserted and retracted, and condition atoms are strengthened as knowledge
//! arrives.  Rebuilding a [`CDatabase`] from scratch after every mutation would discard
//! everything the decision layers have learned about it: the structural fingerprint, the
//! registered shard map, the coupling graph, and (in `pw-decide`) the per-database base
//! stores and the per-group decision memo, all of which key off the identity of the
//! database and its [`crate::ShardGroup`] sub-databases.
//!
//! [`CDatabase::apply`] threads a [`Delta`] through instead: it returns a new database
//! whose untouched shard groups are carried over **by refcount** from the previous
//! coupling graph — same sub-database allocation, same cached fingerprint — together
//! with a [`DbDelta`] describing exactly which groups changed.  Only the union-find
//! components touching a changed shard are recomputed; the fingerprint is re-combined
//! from per-table hashes with only the changed tables re-hashed.  `pw-decide` builds its
//! incremental re-decision on this: after a delta, the per-group verdicts of untouched
//! groups replay from the engine's memo and only the dirty groups are re-searched.

use crate::table::{CTable, CTuple, TableError};
use crate::CDatabase;
use pw_condition::Conjunction;
use std::fmt;

/// One primitive mutation of a database.  Tables are addressed by relation name (the
/// boundary vocabulary, resolved once at [`CDatabase::apply`] time) and rows by their
/// current position in the table's row order.
#[derive(Clone, Debug)]
pub enum DeltaOp {
    /// Append a row to a relation.  The row's arity must match the table's.
    Insert {
        /// Relation name.
        table: String,
        /// The row to append (terms plus local condition).
        row: CTuple,
    },
    /// Remove the row at `row` (current position) from a relation.  Later ops of the
    /// same delta see the shifted row order.
    Retract {
        /// Relation name.
        table: String,
        /// Current row position.
        row: usize,
    },
    /// Strengthen the local condition of the row at `row`: the new condition is the
    /// conjunction of the old one and `condition`.
    Conjoin {
        /// Relation name.
        table: String,
        /// Current row position.
        row: usize,
        /// Atoms conjoined onto the row's condition.
        condition: Conjunction,
    },
}

impl DeltaOp {
    fn table(&self) -> &str {
        match self {
            DeltaOp::Insert { table, .. }
            | DeltaOp::Retract { table, .. }
            | DeltaOp::Conjoin { table, .. } => table,
        }
    }
}

/// An ordered batch of mutations, applied atomically by [`CDatabase::apply`].
#[derive(Clone, Debug, Default)]
pub struct Delta {
    ops: Vec<DeltaOp>,
}

impl Delta {
    /// The empty delta (applying it returns a clone sharing the table allocation).
    pub fn new() -> Self {
        Delta::default()
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Is this the empty delta?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append an op.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// Builder: append a row insertion.
    pub fn insert(mut self, table: impl Into<String>, row: CTuple) -> Self {
        self.ops.push(DeltaOp::Insert {
            table: table.into(),
            row,
        });
        self
    }

    /// Builder: append a row retraction.
    pub fn retract(mut self, table: impl Into<String>, row: usize) -> Self {
        self.ops.push(DeltaOp::Retract {
            table: table.into(),
            row,
        });
        self
    }

    /// Builder: conjoin a condition onto a row.
    pub fn conjoin(mut self, table: impl Into<String>, row: usize, condition: Conjunction) -> Self {
        self.ops.push(DeltaOp::Conjoin {
            table: table.into(),
            row,
            condition,
        });
        self
    }
}

impl FromIterator<DeltaOp> for Delta {
    fn from_iter<T: IntoIterator<Item = DeltaOp>>(iter: T) -> Self {
        Delta {
            ops: iter.into_iter().collect(),
        }
    }
}

/// Why a [`Delta`] could not be applied.  Application is atomic: on error the database
/// is unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// An op addressed a relation the database does not store.
    UnknownRelation(String),
    /// An op addressed a row position past the end of the (current) table.
    RowOutOfRange {
        /// Relation name.
        table: String,
        /// The offending row position.
        row: usize,
        /// Rows the table had at that point of the delta.
        len: usize,
    },
    /// An inserted row's arity does not match the table's.
    Table(TableError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownRelation(name) => write!(f, "unknown relation {name:?}"),
            DeltaError::RowOutOfRange { table, row, len } => {
                write!(f, "row {row} out of range for {table:?} ({len} rows)")
            }
            DeltaError::Table(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<TableError> for DeltaError {
    fn from(e: TableError) -> Self {
        DeltaError::Table(e)
    }
}

/// What a [`CDatabase::apply`] call changed, phrased against the **new** database.
///
/// `pw-decide` reads this to know which shard groups lost their memoized verdicts: a
/// group listed in [`DbDelta::dirty_groups`] was rebuilt (its fingerprint changed, so
/// the decision memo misses and the group is re-searched); every other group of the new
/// database is carried over from the old one by refcount and replays from the memo.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DbDelta {
    /// Positions (table order) of the tables whose content changed.  Empty for a no-op
    /// delta — including ops that happen to rebuild a table identically.
    pub changed_tables: Vec<usize>,
    /// Indices, in the new database's coupling graph, of the groups that were rebuilt.
    /// A merge of previously independent groups shows up as one dirty group here.
    pub dirty_groups: Vec<usize>,
    /// Group count before the delta.
    pub groups_before: usize,
    /// Group count after the delta.
    pub groups_after: usize,
}

impl DbDelta {
    /// Did the delta change nothing?
    pub fn is_noop(&self) -> bool {
        self.changed_tables.is_empty()
    }
}

impl CDatabase {
    /// Apply a [`Delta`], returning the mutated database and a [`DbDelta`] describing
    /// which shards and shard groups changed.
    ///
    /// The returned database **reuses** everything the delta did not touch: untouched
    /// [`crate::ShardGroup`]s are carried over from this database's coupling graph by
    /// refcount (same projected sub-database, same cached fingerprint — so engine caches
    /// keyed by the sub-database keep hitting), the registered shard map is shared, and
    /// the structural fingerprint is re-combined from per-table hashes with only the
    /// changed tables re-hashed.  Application is atomic: any resolution error leaves
    /// this database untouched.  An empty (or effectless) delta returns a clone sharing
    /// the table allocation.
    pub fn apply(&self, delta: &Delta) -> Result<(CDatabase, DbDelta), DeltaError> {
        use std::collections::BTreeMap;
        // Resolve every op to a table position first, so application is atomic.
        let mut per_table: BTreeMap<usize, Vec<&DeltaOp>> = BTreeMap::new();
        for op in delta.ops() {
            let pos = self
                .table_position(op.table())
                .ok_or_else(|| DeltaError::UnknownRelation(op.table().to_owned()))?;
            per_table.entry(pos).or_default().push(op);
        }

        // Rebuild exactly the touched tables, validating as we go.
        let mut new_tables: Vec<CTable> = self.tables().to_vec();
        let mut changed: Vec<usize> = Vec::new();
        for (&pos, ops) in &per_table {
            let old = &self.tables()[pos];
            let mut rows: Vec<CTuple> = old.tuples().to_vec();
            for op in ops {
                match op {
                    DeltaOp::Insert { row, .. } => {
                        if row.arity() != old.arity() {
                            return Err(DeltaError::Table(TableError::ArityMismatch {
                                expected: old.arity(),
                                found: row.arity(),
                            }));
                        }
                        rows.push(row.clone());
                    }
                    DeltaOp::Retract { row, table } => {
                        if *row >= rows.len() {
                            return Err(DeltaError::RowOutOfRange {
                                table: table.clone(),
                                row: *row,
                                len: rows.len(),
                            });
                        }
                        rows.remove(*row);
                    }
                    DeltaOp::Conjoin {
                        row,
                        condition,
                        table,
                    } => {
                        if *row >= rows.len() {
                            return Err(DeltaError::RowOutOfRange {
                                table: table.clone(),
                                row: *row,
                                len: rows.len(),
                            });
                        }
                        rows[*row].condition = rows[*row].condition.and(condition);
                    }
                }
            }
            let rebuilt = CTable::new(
                old.name(),
                old.arity(),
                old.global_condition().clone(),
                rows,
            )
            .map_err(DeltaError::Table)?;
            if rebuilt != *old {
                new_tables[pos] = rebuilt;
                changed.push(pos);
            }
        }

        let groups_before = self.shard_groups().len();
        let (next, dirty_groups) = self.apply_tables(new_tables, &changed);
        let groups_after = next.shard_groups().len();
        Ok((
            next,
            DbDelta {
                changed_tables: changed,
                dirty_groups,
                groups_before,
                groups_after,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Atom, Term, VarGen};
    use std::sync::Arc;

    /// Three decoupled shards: R(x), S(y), V(ground).
    fn demo() -> CDatabase {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        CDatabase::new([
            CTable::codd("R", 1, [vec![Term::Var(x)], vec![Term::constant(1)]]).unwrap(),
            CTable::codd("S", 1, [vec![Term::Var(y)]]).unwrap(),
            CTable::codd("V", 1, [vec![Term::constant(9)]]).unwrap(),
        ])
    }

    #[test]
    fn empty_delta_shares_the_table_allocation() {
        let db = demo();
        let _ = db.shard_groups();
        let (next, change) = db.apply(&Delta::new()).unwrap();
        assert!(change.is_noop());
        assert!(std::ptr::eq(db.tables().as_ptr(), next.tables().as_ptr()));
        assert_eq!(db.fingerprint(), next.fingerprint());
    }

    #[test]
    fn effectless_ops_are_detected_as_noops() {
        let db = demo();
        // Conjoining `truth` rebuilds the row vector identically.
        let delta = Delta::new().conjoin("R", 0, Conjunction::truth());
        let (next, change) = db.apply(&delta).unwrap();
        assert!(change.is_noop());
        assert_eq!(db, next);
    }

    #[test]
    fn insert_retract_conjoin_round_trip() {
        let db = demo();
        let delta = Delta::new()
            .insert("R", CTuple::of_terms([Term::constant(7)]))
            .retract("S", 0)
            .conjoin("V", 0, Conjunction::single(Atom::neq(Term::constant(9), 8)));
        let (next, change) = db.apply(&delta).unwrap();
        assert_eq!(change.changed_tables, vec![0, 1, 2]);
        assert_eq!(next.table("R").unwrap().len(), 3);
        assert_eq!(next.table("S").unwrap().len(), 0, "last row retracted");
        assert!(!next.table("V").unwrap().tuples()[0].has_trivial_condition());
        assert_ne!(db.fingerprint(), next.fingerprint());
        // The incremental fingerprint agrees with a fresh build of the same tables.
        let fresh = CDatabase::new(next.tables().iter().cloned());
        assert_eq!(next.fingerprint(), fresh.fingerprint());
        assert_eq!(next, fresh);
    }

    #[test]
    fn application_is_atomic_on_errors() {
        let db = demo();
        let bad = Delta::new()
            .insert("R", CTuple::of_terms([Term::constant(7)]))
            .retract("Nope", 0);
        assert_eq!(
            db.apply(&bad),
            Err(DeltaError::UnknownRelation("Nope".to_owned()))
        );
        let out_of_range = Delta::new().retract("S", 5);
        assert!(matches!(
            db.apply(&out_of_range),
            Err(DeltaError::RowOutOfRange { row: 5, len: 1, .. })
        ));
        let wrong_arity = Delta::new().insert("R", CTuple::of_terms([]));
        assert!(matches!(db.apply(&wrong_arity), Err(DeltaError::Table(_))));
    }

    #[test]
    fn untouched_groups_are_carried_over_by_refcount() {
        let db = demo();
        let before = db.shard_groups().to_vec();
        let delta = Delta::new().insert("R", CTuple::of_terms([Term::constant(7)]));
        let (next, change) = db.apply(&delta).unwrap();
        assert_eq!(change.changed_tables, vec![0]);
        assert_eq!(change.dirty_groups, vec![0]);
        assert_eq!((change.groups_before, change.groups_after), (3, 3));
        let after = next.shard_groups();
        // Groups 1 and 2 (S, V) are the same allocation as before the delta.
        for g in 1..3 {
            assert!(std::ptr::eq(
                before[g].database().tables().as_ptr(),
                after[g].database().tables().as_ptr()
            ));
        }
        // Group 0 (R) was rebuilt against the new tables.
        assert_eq!(after[0].database().tables()[0].len(), 3);
        // The incremental graph matches a fresh build exactly.
        let fresh = CDatabase::new(next.tables().iter().cloned());
        assert_eq!(fresh.shard_groups().len(), after.len());
        for (f, i) in fresh.shard_groups().iter().zip(after) {
            assert_eq!(f.members(), i.members());
            assert_eq!(f.variables(), i.variables());
        }
        assert_eq!(fresh.shard_group_index(), next.shard_group_index());
    }

    #[test]
    fn a_delta_can_merge_groups_and_a_retraction_can_split_them() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let db = CDatabase::new([
            CTable::codd("R", 1, [vec![Term::Var(x)]]).unwrap(),
            CTable::codd("S", 1, [vec![Term::Var(y)]]).unwrap(),
        ]);
        assert_eq!(db.shard_groups().len(), 2);
        // Inserting a row into S that mentions x couples the two shards.
        let merge = Delta::new().insert("S", CTuple::of_terms([Term::Var(x)]));
        let (merged, change) = db.apply(&merge).unwrap();
        assert_eq!(merged.shard_groups().len(), 1);
        assert_eq!(change.dirty_groups, vec![0]);
        assert_eq!((change.groups_before, change.groups_after), (2, 1));
        // Retracting that row splits them again; the incremental graph agrees with a
        // fresh build.
        let split = Delta::new().retract("S", 1);
        let (split_db, change) = merged.apply(&split).unwrap();
        assert_eq!(split_db.shard_groups().len(), 2);
        assert_eq!(change.dirty_groups, vec![0, 1]);
        let fresh = CDatabase::new(split_db.tables().iter().cloned());
        assert_eq!(fresh.shard_group_index(), split_db.shard_group_index());
    }

    #[test]
    fn retracting_the_last_row_keeps_the_shard() {
        let db = demo();
        let delta = Delta::new().retract("S", 0);
        let (next, change) = db.apply(&delta).unwrap();
        assert_eq!(next.table_count(), 3, "an emptied table is still a shard");
        assert!(next.table("S").unwrap().is_empty());
        assert_eq!(change.dirty_groups, vec![1]);
        assert_eq!(next.shard_groups().len(), 3);
        let fresh = CDatabase::new(next.tables().iter().cloned());
        assert_eq!(fresh.shard_group_index(), next.shard_group_index());
    }

    #[test]
    fn deltas_preserve_the_symbol_context() {
        let db = demo().reinterned(&Arc::new(pw_relational::Symbols::new()));
        let delta = Delta::new().insert("R", CTuple::of_terms([Term::constant(5)]));
        let (next, _) = db.apply(&delta).unwrap();
        assert!(Arc::ptr_eq(next.symbols(), db.symbols()));
    }
}
