//! The `rep(·)` semantics: enumerating the possible worlds of a c-table database.
//!
//! The crucial observation of Proposition 2.1 is that although a database with variables
//! represents infinitely many worlds (one per valuation), only valuations into Δ ∪ Δ′
//! matter, where Δ is the set of constants appearing in the input and Δ′ is a set of fresh
//! constants with one member per variable: every other valuation is isomorphic to one of
//! these.  [`PossibleWorlds`] enumerates exactly those valuations and collects the distinct
//! worlds they produce.
//!
//! The number of such valuations is `|Δ ∪ Δ′|^|vars|` — exponential in the database size —
//! so enumeration is guarded by an explicit budget and is intended for the small instances
//! of cross-validation tests (and for the ablation benchmarks that demonstrate *why* the
//! polynomial algorithms of `pw-decide` matter).

use crate::{CDatabase, Valuation};
use pw_condition::Variable;
use pw_relational::domain::fresh_constants;
use pw_relational::{Constant, Instance};
use std::collections::BTreeSet;
use std::fmt;

/// Error returned when an enumeration would exceed its budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnumerationTooLarge {
    /// Number of valuations that would have to be enumerated.
    pub valuations: u128,
    /// The budget that was given.
    pub budget: usize,
}

impl fmt::Display for EnumerationTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "possible-world enumeration needs {} valuations, budget is {}",
            self.valuations, self.budget
        )
    }
}

impl std::error::Error for EnumerationTooLarge {}

/// An iterator over all valuations of `vars` into `domain` (|domain|^|vars| of them).
#[derive(Clone, Debug)]
pub struct ValuationIter {
    vars: Vec<Variable>,
    /// The domain, interned once at construction so stepping the iterator never touches
    /// the symbol table.
    domain: Vec<pw_relational::Sym>,
    /// Mixed-radix counter; `None` once exhausted.
    counter: Option<Vec<usize>>,
}

impl ValuationIter {
    /// Create the iterator (domain interned in the **global** symbol context).  An empty
    /// domain with a non-empty variable set yields no valuations; an empty variable set
    /// yields exactly the empty valuation.
    pub fn new(vars: Vec<Variable>, domain: Vec<Constant>) -> Self {
        ValuationIter::new_in(pw_relational::Symbols::global(), vars, domain)
    }

    /// [`ValuationIter::new`] interning the domain through an explicit [`Symbols`]
    /// context, so the yielded assignments are comparable with a private database's ids.
    ///
    /// [`Symbols`]: pw_relational::Symbols
    pub fn new_in(
        symbols: &pw_relational::Symbols,
        vars: Vec<Variable>,
        domain: Vec<Constant>,
    ) -> Self {
        let counter = if vars.is_empty() {
            Some(Vec::new())
        } else if domain.is_empty() {
            None
        } else {
            Some(vec![0; vars.len()])
        };
        ValuationIter {
            vars,
            domain: domain.iter().map(|c| symbols.intern(c)).collect(),
            counter,
        }
    }

    /// Total number of valuations this iterator will yield.
    pub fn total(&self) -> u128 {
        if self.vars.is_empty() {
            1
        } else {
            (self.domain.len() as u128).pow(self.vars.len() as u32)
        }
    }
}

impl Iterator for ValuationIter {
    type Item = Valuation;

    fn next(&mut self) -> Option<Valuation> {
        let counter = self.counter.as_mut()?;
        let valuation = Valuation::from_pairs(
            self.vars
                .iter()
                .zip(counter.iter())
                .map(|(&v, &i)| (v, self.domain[i])),
        );
        // Advance the mixed-radix counter.
        if counter.is_empty() {
            self.counter = None;
        } else {
            let mut pos = 0;
            loop {
                counter[pos] += 1;
                if counter[pos] < self.domain.len() {
                    break;
                }
                counter[pos] = 0;
                pos += 1;
                if pos == counter.len() {
                    self.counter = None;
                    break;
                }
            }
        }
        Some(valuation)
    }
}

/// The possible-worlds view of a database: Δ ∪ Δ′ construction plus bounded enumeration.
#[derive(Clone, Debug)]
pub struct PossibleWorlds<'a> {
    db: &'a CDatabase,
    extra_constants: BTreeSet<Constant>,
}

impl<'a> PossibleWorlds<'a> {
    /// Start from a database.
    pub fn new(db: &'a CDatabase) -> Self {
        PossibleWorlds {
            db,
            extra_constants: BTreeSet::new(),
        }
    }

    /// Add constants to Δ (e.g. the constants of an instance we are comparing against, or
    /// of a query — required for the soundness of the Δ ∪ Δ′ restriction in the decision
    /// problems).
    pub fn with_extra_constants(mut self, extra: impl IntoIterator<Item = Constant>) -> Self {
        self.extra_constants.extend(extra);
        self
    }

    /// The variables to valuate.
    pub fn variables(&self) -> Vec<Variable> {
        self.db.variables().into_iter().collect()
    }

    /// The evaluation domain Δ ∪ Δ′.
    pub fn domain(&self) -> Vec<Constant> {
        let mut delta: BTreeSet<Constant> = self.db.constants();
        delta.extend(self.extra_constants.iter().cloned());
        let vars = self.db.variables();
        let fresh = fresh_constants(&delta, vars.len());
        delta.into_iter().chain(fresh).collect()
    }

    /// Iterator over all candidate valuations (all functions from variables to Δ ∪ Δ′),
    /// interned through the database's own symbol handle.
    pub fn valuations(&self) -> ValuationIter {
        ValuationIter::new_in(self.db.symbols(), self.variables(), self.domain())
    }

    /// Number of candidate valuations.
    pub fn valuation_count(&self) -> u128 {
        self.valuations().total()
    }

    /// Enumerate the distinct possible worlds, refusing if more than `budget` valuations
    /// would be needed.
    pub fn enumerate(&self, budget: usize) -> Result<BTreeSet<Instance>, EnumerationTooLarge> {
        let iter = self.valuations();
        let total = iter.total();
        if total > budget as u128 {
            return Err(EnumerationTooLarge {
                valuations: total,
                budget,
            });
        }
        let mut worlds = BTreeSet::new();
        for valuation in iter {
            if let Some(world) = valuation.world_of(self.db) {
                worlds.insert(world);
            }
        }
        Ok(worlds)
    }

    /// Number of distinct worlds (bounded enumeration).
    pub fn world_count(&self, budget: usize) -> Result<usize, EnumerationTooLarge> {
        Ok(self.enumerate(budget)?.len())
    }

    /// PTIME check: is the represented set empty?  (Iff some global condition is
    /// unsatisfiable — Section 2.2.)
    pub fn is_empty_rep(&self) -> bool {
        !self.db.has_satisfiable_globals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CTable, CTuple};
    use pw_condition::{Atom, Conjunction, Term, VarGen};
    use pw_relational::tup;

    #[test]
    fn valuation_iter_counts_and_yields_all_combinations() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let domain = vec![Constant::int(0), Constant::int(1), Constant::int(2)];
        let iter = ValuationIter::new(vec![x, y], domain);
        assert_eq!(iter.total(), 9);
        let all: Vec<Valuation> = iter.collect();
        assert_eq!(all.len(), 9);
        let distinct: BTreeSet<String> = all.iter().map(ToString::to_string).collect();
        assert_eq!(distinct.len(), 9);
    }

    #[test]
    fn valuation_iter_edge_cases() {
        let empty_vars = ValuationIter::new(vec![], vec![Constant::int(1)]);
        assert_eq!(empty_vars.total(), 1);
        assert_eq!(empty_vars.count(), 1);
        let mut g = VarGen::new();
        let x = g.fresh();
        let empty_domain = ValuationIter::new(vec![x], vec![]);
        assert_eq!(empty_domain.count(), 0);
    }

    #[test]
    fn codd_table_worlds_include_fresh_values() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // T = {(x, 1)}: the worlds are {(c, 1)} for c in Δ ∪ Δ′ = {1, ⊥}.
        let t = CTable::codd("T", 2, [vec![Term::Var(x), Term::constant(1)]]).unwrap();
        let db = CDatabase::single(t);
        let pw = PossibleWorlds::new(&db);
        assert_eq!(pw.valuation_count(), 2);
        let worlds = pw.enumerate(100).unwrap();
        assert_eq!(worlds.len(), 2);
        assert!(worlds.iter().any(|w| w.contains_fact("T", &tup![1, 1])));
    }

    #[test]
    fn conditions_prune_worlds() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // T = {(x)} with global x ≠ 1 and Δ = {1}: only the fresh value survives.
        let t = CTable::g_table(
            "T",
            1,
            Conjunction::new([Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let worlds = PossibleWorlds::new(&db).enumerate(100).unwrap();
        assert_eq!(worlds.len(), 1);
        assert!(!worlds.iter().next().unwrap().contains_fact("T", &tup![1]));
    }

    #[test]
    fn local_conditions_can_drop_tuples() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // c-table: row (1) with condition x = 0; worlds: {(1)} when x=0, {} otherwise.
        let t = CTable::new(
            "T",
            1,
            Conjunction::truth(),
            [CTuple::with_condition(
                [Term::constant(1)],
                Conjunction::new([Atom::eq(x, 0)]),
            )],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let worlds = PossibleWorlds::new(&db)
            .with_extra_constants([Constant::int(0)])
            .enumerate(100)
            .unwrap();
        assert_eq!(worlds.len(), 2);
        assert!(worlds.iter().any(|w| w.relation("T").unwrap().is_empty()));
        assert!(worlds.iter().any(|w| w.contains_fact("T", &tup![1])));
    }

    #[test]
    fn budget_is_respected() {
        let mut g = VarGen::new();
        let vars: Vec<_> = (0..8).map(|_| g.fresh()).collect();
        let rows: Vec<Vec<Term>> = vars.iter().map(|&v| vec![Term::Var(v)]).collect();
        let t = CTable::codd("T", 1, rows).unwrap();
        let db = CDatabase::single(t);
        let pw = PossibleWorlds::new(&db);
        // 8 fresh constants, 8 variables → 8^8 = 16,777,216 valuations.
        let err = pw.enumerate(1000).unwrap_err();
        assert_eq!(err.valuations, 16_777_216);
        assert_eq!(err.budget, 1000);
    }

    #[test]
    fn empty_rep_detection() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::g_table(
            "T",
            1,
            Conjunction::new([Atom::eq(x, 1), Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let pw = PossibleWorlds::new(&db);
        assert!(pw.is_empty_rep());
        assert!(pw.enumerate(100).unwrap().is_empty());
    }

    #[test]
    fn extra_constants_enlarge_the_domain() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::codd("T", 1, [vec![Term::Var(x)]]).unwrap();
        let db = CDatabase::single(t);
        let base = PossibleWorlds::new(&db).domain().len();
        let extended = PossibleWorlds::new(&db)
            .with_extra_constants([Constant::int(7), Constant::int(8)])
            .domain()
            .len();
        assert_eq!(extended, base + 2);
    }
}
