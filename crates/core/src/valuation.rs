//! Valuations: total assignments of constants to variables.
//!
//! Section 2.2: "A valuation σ is a function from variables and constants to constants,
//! such that σ(c) = c for each constant c."  Applying a satisfying valuation to a c-table
//! yields one possible world (Definition of `rep`).
//!
//! Valuations store interned [`Sym`]s: condition checks compare machine words, and the
//! canonical-valuation enumerators of `pw-decide` copy assignments without touching the
//! heap.  Constants are accepted on entry (anything `Into<Sym>`) and resolved on exit
//! ([`Valuation::apply_tuple`], [`Valuation::get`]) where a complete-information
//! [`Instance`] is materialised.  Resolution is **handle-threaded**: the `*_in` variants
//! take the [`Symbols`] context the ids live in, and [`Valuation::world_of`] resolves
//! through the database's own handle — a valuation over a private dictionary
//! materialises worlds without ever touching the global table.

use crate::table::{CTable, CTuple};
use crate::CDatabase;
use pw_condition::{BoolExpr, Conjunction, Term, Variable};
use pw_relational::{Constant, Instance, Relation, Sym, Symbols, Tuple};
use std::collections::BTreeMap;
use std::fmt;

/// A (finite) valuation: variables not in the map are considered *unassigned*, and
/// applying the valuation to a term containing one is an error surfaced as `None`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Valuation {
    map: BTreeMap<Variable, Sym>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Self {
        Valuation::default()
    }

    /// Build from pairs; values can be [`Sym`]s or [`Constant`]s (interned on entry).
    pub fn from_pairs<C: Into<Sym>>(pairs: impl IntoIterator<Item = (Variable, C)>) -> Self {
        Valuation {
            map: pairs.into_iter().map(|(v, c)| (v, c.into())).collect(),
        }
    }

    /// Assign a variable.
    pub fn assign(&mut self, v: Variable, c: impl Into<Sym>) -> &mut Self {
        self.map.insert(v, c.into());
        self
    }

    /// Look up a variable (interned form — the hot accessor).
    pub fn get_sym(&self, v: Variable) -> Option<Sym> {
        self.map.get(&v).copied()
    }

    /// Look up a variable, resolving to a [`Constant`] at the boundary.
    ///
    /// # Panics
    /// Resolution uses the **global** symbol table; a [`Sym`] issued by a private
    /// context panics here — use [`Valuation::get_in`] with the owning [`Symbols`].
    pub fn get(&self, v: Variable) -> Option<Constant> {
        self.get_sym(v).map(Sym::constant)
    }

    /// Look up a variable, resolving through an explicit [`Symbols`] context.
    pub fn get_in(&self, symbols: &Symbols, v: Variable) -> Option<Constant> {
        self.get_sym(v).and_then(|s| symbols.resolve(s))
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over assignments.
    pub fn iter(&self) -> impl Iterator<Item = (Variable, Sym)> + '_ {
        self.map.iter().map(|(&v, &s)| (v, s))
    }

    /// σ(t) for a term.
    pub fn apply_term(&self, t: Term) -> Option<Sym> {
        match t {
            Term::Const(c) => Some(c),
            Term::Var(v) => self.get_sym(v),
        }
    }

    /// Whether the valuation satisfies a conjunction of atoms.  Returns `None` when some
    /// variable of the condition is unassigned.
    pub fn satisfies(&self, condition: &Conjunction) -> Option<bool> {
        condition.eval(&|v| self.get_sym(v))
    }

    /// Whether the valuation satisfies a boolean combination of atoms.
    pub fn satisfies_bool(&self, condition: &BoolExpr) -> Option<bool> {
        condition.eval(&|v| self.get_sym(v))
    }

    /// σ(t) for a c-table row: the fact it becomes.  `None` if a term variable is
    /// unassigned.  Symbols resolve to constants here (via the global table — see
    /// [`Valuation::get`]) — this is the boundary where an interned table turns into a
    /// complete-information fact.
    pub fn apply_tuple(&self, t: &CTuple) -> Option<Tuple> {
        self.apply_tuple_in(Symbols::global(), t)
    }

    /// [`Valuation::apply_tuple`] resolving through an explicit [`Symbols`] context.
    pub fn apply_tuple_in(&self, symbols: &Symbols, t: &CTuple) -> Option<Tuple> {
        t.terms
            .iter()
            .map(|&term| self.apply_term(term).and_then(|s| symbols.resolve(s)))
            .collect::<Option<Vec<Constant>>>()
            .map(Tuple::new)
    }

    /// σ(T) for a c-table, *assuming* σ satisfies the global condition: the relation
    /// containing σ(t) for every row whose local condition σ satisfies.
    ///
    /// Returns `None` when a needed variable is unassigned; callers check the global
    /// condition separately (see [`Valuation::world_of`]).
    pub fn apply_table(&self, table: &CTable) -> Option<Relation> {
        self.apply_table_in(Symbols::global(), table)
    }

    /// [`Valuation::apply_table`] resolving through an explicit [`Symbols`] context.
    pub fn apply_table_in(&self, symbols: &Symbols, table: &CTable) -> Option<Relation> {
        let mut rel = Relation::empty(table.arity());
        for row in table.tuples() {
            if self.satisfies(&row.condition)? {
                let fact = self.apply_tuple_in(symbols, row)?;
                rel.insert(fact).expect("row arity equals table arity");
            }
        }
        Some(rel)
    }

    /// The possible world σ(𝒟) of a database under this valuation, or `None` if σ does not
    /// satisfy every global condition (no world arises from σ) or leaves a variable
    /// unassigned.  Resolution goes through the database's own [`Symbols`] handle, so
    /// private-dictionary databases materialise worlds correctly.
    pub fn world_of(&self, db: &CDatabase) -> Option<Instance> {
        for table in db.tables() {
            if !self.satisfies(table.global_condition())? {
                return None;
            }
        }
        let mut instance = Instance::new();
        for table in db.tables() {
            instance.insert_relation(
                table.name().to_owned(),
                self.apply_table_in(db.symbols(), table)?,
            );
        }
        Some(instance)
    }
}

impl<C: Into<Sym>> FromIterator<(Variable, C)> for Valuation {
    fn from_iter<T: IntoIterator<Item = (Variable, C)>>(iter: T) -> Self {
        Valuation::from_pairs(iter)
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, c)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Atom, VarGen};
    use pw_relational::tup;

    #[test]
    fn apply_term_and_tuple() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let mut val = Valuation::new();
        val.assign(x, 5);
        assert_eq!(val.apply_term(Term::Var(x)), Some(Sym::Int(5)));
        assert_eq!(val.apply_term(Term::constant(9)), Some(Sym::Int(9)));
        let row = CTuple::of_terms([Term::Var(x), Term::constant(1)]);
        assert_eq!(val.apply_tuple(&row), Some(tup![5, 1]));
        let y = g.fresh();
        let row2 = CTuple::of_terms([Term::Var(y)]);
        assert_eq!(val.apply_tuple(&row2), None);
    }

    #[test]
    fn string_assignments_intern_and_resolve() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let mut val = Valuation::new();
        val.assign(x, Constant::str("carol"));
        assert_eq!(val.get(x), Some(Constant::str("carol")));
        assert_eq!(val.get_sym(x), Some(Sym::from("carol")));
        let row = CTuple::of_terms([Term::Var(x)]);
        assert_eq!(
            val.apply_tuple(&row),
            Some(Tuple::new([Constant::str("carol")]))
        );
    }

    #[test]
    fn satisfies_conditions() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let mut val = Valuation::new();
        val.assign(x, 1).assign(y, 2);
        assert_eq!(
            val.satisfies(&Conjunction::new([Atom::neq(x, y)])),
            Some(true)
        );
        assert_eq!(
            val.satisfies(&Conjunction::new([Atom::eq(x, y)])),
            Some(false)
        );
        let z = g.fresh();
        assert_eq!(val.satisfies(&Conjunction::new([Atom::eq(z, 1)])), None);
    }

    #[test]
    fn apply_table_filters_by_local_condition() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let table = CTable::new(
            "T",
            1,
            Conjunction::truth(),
            [
                CTuple::with_condition([Term::constant(1)], Conjunction::new([Atom::eq(x, 0)])),
                CTuple::with_condition([Term::constant(2)], Conjunction::new([Atom::neq(x, 0)])),
            ],
        )
        .unwrap();
        let mut val = Valuation::new();
        val.assign(x, 0);
        let rel = val.apply_table(&table).unwrap();
        assert!(rel.contains(&tup![1]));
        assert!(!rel.contains(&tup![2]));
    }

    #[test]
    fn world_of_respects_global_condition() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let table = CTable::g_table(
            "T",
            1,
            Conjunction::new([Atom::neq(x, 0)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let db = CDatabase::new([table]);
        let mut bad = Valuation::new();
        bad.assign(x, 0);
        assert_eq!(bad.world_of(&db), None);
        let mut good = Valuation::new();
        good.assign(x, 3);
        let world = good.world_of(&db).unwrap();
        assert!(world.contains_fact("T", &tup![3]));
    }

    #[test]
    fn duplicate_rows_collapse_in_the_world() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let table = CTable::codd("T", 1, [vec![Term::Var(x)], vec![Term::Var(y)]]).unwrap();
        let db = CDatabase::new([table]);
        let val = Valuation::from_pairs([(x, Constant::int(1)), (y, Constant::int(1))]);
        let world = val.world_of(&db).unwrap();
        assert_eq!(
            world.relation("T").unwrap().len(),
            1,
            "two rows map to the same fact"
        );
        assert_eq!(val.len(), 2);
        assert!(!val.is_empty());
    }
}
