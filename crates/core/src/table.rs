//! The table hierarchy: Codd-tables, e-tables, i-tables, g-tables and c-tables.
//!
//! All levels are stored in the single type [`CTable`] — a named table of [`CTuple`]s with a
//! global condition and per-tuple local conditions — because every level of the hierarchy
//! *is* a c-table with syntactic restrictions (Section 2.2).  [`TableClass`] classifies a
//! table into the tightest level it satisfies, and the decision procedures of `pw-decide`
//! use that classification to pick the algorithms the paper's upper bounds describe.

use pw_condition::{Atom, Conjunction, Term, Variable};
use pw_relational::Constant;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors raised when constructing tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableError {
    /// A tuple has the wrong number of terms.
    ArityMismatch {
        /// Expected arity.
        expected: usize,
        /// Found arity.
        found: usize,
    },
    /// A construction that requires a syntactic restriction (e.g. [`CTable::codd`]) was
    /// given a table outside that restriction.
    NotInClass {
        /// The class that was requested.
        requested: TableClass,
        /// The reason the table is outside it.
        reason: &'static str,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "tuple arity {found} does not match table arity {expected}"
                )
            }
            TableError::NotInClass { requested, reason } => {
                write!(f, "table is not a valid {requested}: {reason}")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// The representation hierarchy of Section 2.2, ordered from most to least restricted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TableClass {
    /// Codd-table: constants and variables, each variable occurs at most once, no
    /// conditions.
    Codd,
    /// e-table: equalities incorporated in the table (variables may repeat), no global
    /// inequalities, no local conditions.
    ETable,
    /// i-table: a Codd-table plus a global condition made of inequalities only.
    ITable,
    /// g-table: repeated variables plus a global condition (equalities folded in,
    /// inequalities on top), no local conditions.
    GTable,
    /// c-table: a g-table plus per-tuple local conditions.
    CTable,
}

impl fmt::Display for TableClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TableClass::Codd => "Codd-table",
            TableClass::ETable => "e-table",
            TableClass::ITable => "i-table",
            TableClass::GTable => "g-table",
            TableClass::CTable => "c-table",
        };
        write!(f, "{s}")
    }
}

/// A row of a c-table: a vector of terms plus a local condition.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CTuple {
    /// The row's terms (constants and variables).
    pub terms: Vec<Term>,
    /// The local condition φ_t; `Conjunction::truth()` when omitted.
    pub condition: Conjunction,
}

impl CTuple {
    /// A row with the always-true local condition.
    pub fn of_terms(terms: impl IntoIterator<Item = Term>) -> Self {
        CTuple {
            terms: terms.into_iter().collect(),
            condition: Conjunction::truth(),
        }
    }

    /// A row with an explicit local condition.
    pub fn with_condition(terms: impl IntoIterator<Item = Term>, condition: Conjunction) -> Self {
        CTuple {
            terms: terms.into_iter().collect(),
            condition,
        }
    }

    /// Arity of the row.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Variables occurring in the row's terms (not in its condition).
    pub fn term_variables(&self) -> impl Iterator<Item = Variable> + '_ {
        self.terms.iter().copied().filter_map(Term::as_var)
    }

    /// Variables occurring in the row or its local condition.
    pub fn variables(&self) -> BTreeSet<Variable> {
        let mut out: BTreeSet<Variable> = self.term_variables().collect();
        out.extend(self.condition.variables());
        out
    }

    /// Interned constants occurring in the row or its local condition.
    pub fn syms(&self) -> BTreeSet<pw_relational::Sym> {
        let mut out: BTreeSet<pw_relational::Sym> =
            self.terms.iter().filter_map(|t| t.as_sym()).collect();
        out.extend(self.condition.syms());
        out
    }

    /// Constants occurring in the row or its local condition, resolved at the boundary.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.syms()
            .into_iter()
            .map(pw_relational::Sym::constant)
            .collect()
    }

    /// Whether the local condition is the trivial `true`.
    pub fn has_trivial_condition(&self) -> bool {
        self.condition.is_empty()
    }
}

impl fmt::Display for CTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")?;
        if !self.has_trivial_condition() {
            write!(f, " ‖ {}", self.condition)?;
        }
        Ok(())
    }
}

/// A conditional table: a named table of [`CTuple`]s, a global condition, and the arity.
///
/// Every level of the paper's hierarchy is a `CTable`; use [`CTable::classify`] to find the
/// tightest class, or the restricted constructors ([`CTable::codd`], [`CTable::e_table`],
/// [`CTable::i_table`], [`CTable::g_table`]) to enforce a level at construction time.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CTable {
    name: String,
    arity: usize,
    global: Conjunction,
    tuples: Vec<CTuple>,
}

impl CTable {
    /// Build a general c-table.
    pub fn new(
        name: impl Into<String>,
        arity: usize,
        global: Conjunction,
        tuples: impl IntoIterator<Item = CTuple>,
    ) -> Result<Self, TableError> {
        let tuples: Vec<CTuple> = tuples.into_iter().collect();
        for t in &tuples {
            if t.arity() != arity {
                return Err(TableError::ArityMismatch {
                    expected: arity,
                    found: t.arity(),
                });
            }
        }
        Ok(CTable {
            name: name.into(),
            arity,
            global,
            tuples,
        })
    }

    /// Build a Codd-table: rows of constants and variables, no repeated variable, no
    /// conditions.
    pub fn codd(
        name: impl Into<String>,
        arity: usize,
        rows: impl IntoIterator<Item = Vec<Term>>,
    ) -> Result<Self, TableError> {
        let table = CTable::new(
            name,
            arity,
            Conjunction::truth(),
            rows.into_iter().map(CTuple::of_terms),
        )?;
        match table.classify() {
            TableClass::Codd => Ok(table),
            _ => Err(TableError::NotInClass {
                requested: TableClass::Codd,
                reason: "a variable occurs more than once",
            }),
        }
    }

    /// Build an e-table: rows where variables may repeat (equalities folded into the
    /// table), no global condition, no local conditions.
    pub fn e_table(
        name: impl Into<String>,
        arity: usize,
        rows: impl IntoIterator<Item = Vec<Term>>,
    ) -> Result<Self, TableError> {
        CTable::new(
            name,
            arity,
            Conjunction::truth(),
            rows.into_iter().map(CTuple::of_terms),
        )
    }

    /// Build an i-table: a Codd-table plus a global condition of inequalities only.
    pub fn i_table(
        name: impl Into<String>,
        arity: usize,
        global: Conjunction,
        rows: impl IntoIterator<Item = Vec<Term>>,
    ) -> Result<Self, TableError> {
        if !global.is_inequalities_only() {
            return Err(TableError::NotInClass {
                requested: TableClass::ITable,
                reason: "global condition contains an equality atom",
            });
        }
        let table = CTable::new(name, arity, global, rows.into_iter().map(CTuple::of_terms))?;
        let mut seen: BTreeSet<Variable> = BTreeSet::new();
        for row in &table.tuples {
            for v in row.term_variables() {
                if !seen.insert(v) {
                    return Err(TableError::NotInClass {
                        requested: TableClass::ITable,
                        reason: "a variable occurs more than once in the table part",
                    });
                }
            }
        }
        Ok(table)
    }

    /// Build a g-table: repeated variables allowed, any global condition, no local
    /// conditions.
    pub fn g_table(
        name: impl Into<String>,
        arity: usize,
        global: Conjunction,
        rows: impl IntoIterator<Item = Vec<Term>>,
    ) -> Result<Self, TableError> {
        CTable::new(name, arity, global, rows.into_iter().map(CTuple::of_terms))
    }

    /// The table's relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The global condition φ_T.
    pub fn global_condition(&self) -> &Conjunction {
        &self.global
    }

    /// The rows.
    pub fn tuples(&self) -> &[CTuple] {
        &self.tuples
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All variables of the table: in rows, local conditions, and the global condition.
    pub fn variables(&self) -> BTreeSet<Variable> {
        let mut out: BTreeSet<Variable> = self.global.variables();
        for t in &self.tuples {
            out.extend(t.variables());
        }
        out
    }

    /// All interned constants of the table: rows, local conditions, global condition.
    pub fn syms(&self) -> BTreeSet<pw_relational::Sym> {
        let mut out: BTreeSet<pw_relational::Sym> = self.global.syms();
        for t in &self.tuples {
            out.extend(t.syms());
        }
        out
    }

    /// All constants of the table: in rows, local conditions, and the global condition.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.syms()
            .into_iter()
            .map(pw_relational::Sym::constant)
            .collect()
    }

    /// Whether any local condition is non-trivial.
    pub fn has_local_conditions(&self) -> bool {
        self.tuples.iter().any(|t| !t.has_trivial_condition())
    }

    /// Whether some variable occurs more than once across the *table part* (rows), i.e.
    /// whether equalities have been folded into the table.
    pub fn has_repeated_variables(&self) -> bool {
        let mut seen: BTreeSet<Variable> = BTreeSet::new();
        for t in &self.tuples {
            for v in t.term_variables() {
                if !seen.insert(v) {
                    return true;
                }
            }
        }
        false
    }

    /// Classify the table into the tightest level of the hierarchy it belongs to.
    pub fn classify(&self) -> TableClass {
        if self.has_local_conditions() {
            return TableClass::CTable;
        }
        let repeated = self.has_repeated_variables();
        if self.global.is_empty() {
            return if repeated {
                TableClass::ETable
            } else {
                TableClass::Codd
            };
        }
        if self.global.is_inequalities_only() && !repeated {
            return TableClass::ITable;
        }
        if self.global.is_equalities_only() && !repeated {
            // A pure-equality global condition is an e-table with the equalities not yet
            // folded in; fold-ability is a normalisation concern, the class is ETable only
            // when the equalities involve table variables.  We keep it simple and report
            // GTable; `normalize_equalities` can rewrite it into a genuine e-table.
            return TableClass::GTable;
        }
        TableClass::GTable
    }

    /// Fold global *equalities* into the table: every variable forced to a constant is
    /// replaced by that constant, and variables equated to other variables are unified onto
    /// a single representative.  The resulting table represents the same set of worlds; if
    /// the remaining global condition has only inequalities, the table has moved down the
    /// hierarchy (g-table → i-/e-table).  Returns `None` if the global condition is
    /// unsatisfiable (the represented set is empty).
    pub fn normalize_equalities(&self) -> Option<CTable> {
        if !self.global.is_satisfiable() {
            return None;
        }
        // Propagate var = const bindings (ids only — no constant is resolved here).
        let forced = self.global.forced_constants()?;
        let forced_map: BTreeMap<Variable, pw_relational::Sym> = forced.into_iter().collect();
        // Unify var = var chains onto a representative (the smallest variable).
        let mut parent: BTreeMap<Variable, Variable> = BTreeMap::new();
        fn find(parent: &mut BTreeMap<Variable, Variable>, v: Variable) -> Variable {
            let p = *parent.get(&v).unwrap_or(&v);
            if p == v {
                v
            } else {
                let root = find(parent, p);
                parent.insert(v, root);
                root
            }
        }
        for atom in self.global.atoms() {
            if let Atom::Eq(Term::Var(a), Term::Var(b)) = atom {
                let ra = find(&mut parent, *a);
                let rb = find(&mut parent, *b);
                if ra != rb {
                    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                    parent.insert(hi, lo);
                }
            }
        }
        // Fully compress once, so term rewriting is a plain lookup.
        let roots: BTreeMap<Variable, Variable> = parent
            .keys()
            .copied()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|v| (v, find(&mut parent, v)))
            .collect();
        let rewrite_term = |t: Term| -> Term {
            match t {
                Term::Var(v) => {
                    let root = *roots.get(&v).unwrap_or(&v);
                    if let Some(c) = forced_map.get(&v).or_else(|| forced_map.get(&root)) {
                        Term::Const(*c)
                    } else {
                        Term::Var(root)
                    }
                }
                c => c,
            }
        };
        let rewrite_conj = |c: &Conjunction| -> Conjunction {
            Conjunction::new(c.atoms().iter().map(|a| match a {
                Atom::Eq(x, y) => Atom::Eq(rewrite_term(*x), rewrite_term(*y)),
                Atom::Neq(x, y) => Atom::Neq(rewrite_term(*x), rewrite_term(*y)),
            }))
        };
        // Keep only the global atoms that are not now trivially true.
        let remaining_global = Conjunction::new(
            rewrite_conj(&self.global)
                .atoms()
                .iter()
                .filter(|a| a.trivial_value() != Some(true))
                .copied(),
        );
        let tuples = self
            .tuples
            .iter()
            .map(|t| CTuple {
                terms: t.terms.iter().map(|&t| rewrite_term(t)).collect(),
                condition: rewrite_conj(&t.condition),
            })
            .collect::<Vec<_>>();
        Some(CTable {
            name: self.name.clone(),
            arity: self.arity,
            global: remaining_global,
            tuples,
        })
    }

    /// Rename the table (keeps everything else).
    pub fn renamed(&self, name: impl Into<String>) -> CTable {
        CTable {
            name: name.into(),
            ..self.clone()
        }
    }

    /// Syntactic equality *up to a renaming of variables* (alpha-equivalence).
    ///
    /// Two tables are alpha-equivalent when they have the same name, arity, row order,
    /// constants in the same positions, conditions with atoms in the same order, and there
    /// is a single bijection between their variables that maps one table onto the other.
    /// Because variable identifiers are allocated from a process-wide counter (see
    /// [`pw_condition::VarGen`]), two structurally identical tables built independently are
    /// *not* `==`; this is the comparison to use for "same table modulo which fresh nulls
    /// were handed out", e.g. when checking that a seeded generator is deterministic.
    ///
    /// The check is purely syntactic: it does not decide whether two tables represent the
    /// same set of worlds (that question is a containment both ways).
    pub fn alpha_equivalent(&self, other: &CTable) -> bool {
        if self.name != other.name
            || self.arity != other.arity
            || self.tuples.len() != other.tuples.len()
        {
            return false;
        }
        let mut renaming = VariableBijection::default();
        if !conjunctions_match(&self.global, &other.global, &mut renaming) {
            return false;
        }
        for (a, b) in self.tuples.iter().zip(&other.tuples) {
            if a.terms.len() != b.terms.len() {
                return false;
            }
            for (ta, tb) in a.terms.iter().zip(&b.terms) {
                if !terms_match(ta, tb, &mut renaming) {
                    return false;
                }
            }
            if !conjunctions_match(&a.condition, &b.condition, &mut renaming) {
                return false;
            }
        }
        true
    }
}

/// A partial bijection between the variables of two tables, grown as the comparison walks
/// both structures in lockstep.
#[derive(Default)]
struct VariableBijection {
    forward: BTreeMap<Variable, Variable>,
    backward: BTreeMap<Variable, Variable>,
}

impl VariableBijection {
    /// Record (or check) the pairing `a ↔ b`; fails if either side is already paired with a
    /// different variable.
    fn pair(&mut self, a: Variable, b: Variable) -> bool {
        match (self.forward.get(&a), self.backward.get(&b)) {
            (None, None) => {
                self.forward.insert(a, b);
                self.backward.insert(b, a);
                true
            }
            (Some(&fb), Some(&ba)) => fb == b && ba == a,
            _ => false,
        }
    }
}

fn terms_match(a: &Term, b: &Term, renaming: &mut VariableBijection) -> bool {
    match (a, b) {
        (Term::Const(ca), Term::Const(cb)) => ca == cb,
        (Term::Var(va), Term::Var(vb)) => renaming.pair(*va, *vb),
        _ => false,
    }
}

fn conjunctions_match(a: &Conjunction, b: &Conjunction, renaming: &mut VariableBijection) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.atoms()
        .iter()
        .zip(b.atoms().iter())
        .all(|(x, y)| match (x, y) {
            (Atom::Eq(x1, x2), Atom::Eq(y1, y2)) | (Atom::Neq(x1, x2), Atom::Neq(y1, y2)) => {
                terms_match(x1, y1, renaming) && terms_match(x2, y2, renaming)
            }
            _ => false,
        })
}

impl fmt::Display for CTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.classify())?;
        if !self.global.is_empty() {
            write!(f, "  ⟨{}⟩", self.global)?;
        }
        writeln!(f)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::VarGen;

    fn terms(v: &[Term]) -> Vec<Term> {
        v.to_vec()
    }

    #[test]
    fn codd_table_rejects_repeated_variables() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let ok = CTable::codd("T", 2, [terms(&[Term::Var(x), Term::constant(1)])]);
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().classify(), TableClass::Codd);

        let bad = CTable::codd(
            "T",
            2,
            [
                terms(&[Term::Var(x), Term::constant(1)]),
                terms(&[Term::constant(2), Term::Var(x)]),
            ],
        );
        assert!(matches!(bad, Err(TableError::NotInClass { .. })));
    }

    #[test]
    fn arity_is_checked() {
        let err = CTable::new(
            "T",
            2,
            Conjunction::truth(),
            [CTuple::of_terms([Term::constant(1)])],
        )
        .unwrap_err();
        assert_eq!(
            err,
            TableError::ArityMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn classification_of_each_level() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());

        let codd = CTable::codd("T", 1, [terms(&[Term::Var(x)])]).unwrap();
        assert_eq!(codd.classify(), TableClass::Codd);

        let e = CTable::e_table(
            "T",
            2,
            [
                terms(&[Term::Var(y), Term::constant(1)]),
                terms(&[Term::constant(2), Term::Var(y)]),
            ],
        )
        .unwrap();
        assert_eq!(e.classify(), TableClass::ETable);

        let i = CTable::i_table(
            "T",
            1,
            Conjunction::new([Atom::neq(x, 0)]),
            [terms(&[Term::Var(x)])],
        )
        .unwrap();
        assert_eq!(i.classify(), TableClass::ITable);

        let gt = CTable::g_table(
            "T",
            2,
            Conjunction::new([Atom::neq(x, 0)]),
            [
                terms(&[Term::Var(x), Term::constant(1)]),
                terms(&[Term::constant(2), Term::Var(x)]),
            ],
        )
        .unwrap();
        assert_eq!(gt.classify(), TableClass::GTable);

        let c = CTable::new(
            "T",
            1,
            Conjunction::truth(),
            [CTuple::with_condition(
                [Term::constant(1)],
                Conjunction::new([Atom::eq(x, 1)]),
            )],
        )
        .unwrap();
        assert_eq!(c.classify(), TableClass::CTable);
        assert!(c.has_local_conditions());
    }

    #[test]
    fn i_table_constructor_enforces_restrictions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let bad_global = CTable::i_table(
            "T",
            1,
            Conjunction::new([Atom::eq(x, 1)]),
            [terms(&[Term::Var(x)])],
        );
        assert!(matches!(bad_global, Err(TableError::NotInClass { .. })));
        let repeated = CTable::i_table(
            "T",
            1,
            Conjunction::new([Atom::neq(x, 1)]),
            [terms(&[Term::Var(x)]), terms(&[Term::Var(x)])],
        );
        assert!(matches!(repeated, Err(TableError::NotInClass { .. })));
    }

    #[test]
    fn variables_and_constants_include_conditions() {
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        let t = CTable::new(
            "T",
            1,
            Conjunction::new([Atom::neq(y, 7)]),
            [CTuple::with_condition(
                [Term::Var(x)],
                Conjunction::new([Atom::eq(z, "a")]),
            )],
        )
        .unwrap();
        assert_eq!(t.variables(), [x, y, z].into());
        assert_eq!(t.constants(), [Constant::int(7), Constant::str("a")].into());
    }

    #[test]
    fn normalize_equalities_folds_forced_constants_and_unifies() {
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        // global: x = y ∧ y = 3 ∧ z ≠ x
        let t = CTable::g_table(
            "T",
            2,
            Conjunction::new([Atom::eq(x, y), Atom::eq(y, 3), Atom::neq(z, x)]),
            [
                vec![Term::Var(x), Term::Var(z)],
                vec![Term::Var(y), Term::constant(0)],
            ],
        )
        .unwrap();
        let n = t.normalize_equalities().unwrap();
        // x and y are now the constant 3.
        assert_eq!(n.tuples()[0].terms[0], Term::constant(3));
        assert_eq!(n.tuples()[1].terms[0], Term::constant(3));
        // The inequality remains (z ≠ 3 after rewriting).
        assert_eq!(n.global_condition().len(), 1);
        assert!(n.global_condition().is_inequalities_only());

        let unsat = CTable::g_table(
            "T",
            1,
            Conjunction::new([Atom::eq(x, 1), Atom::eq(x, 2)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        assert!(unsat.normalize_equalities().is_none());
    }

    #[test]
    fn alpha_equivalence_ignores_variable_identity() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let (x2, y2) = (g.fresh(), g.fresh());
        let build = |a: Variable, b: Variable| {
            CTable::new(
                "T",
                2,
                Conjunction::new([Atom::neq(a, 0)]),
                [
                    CTuple::of_terms([Term::Var(a), Term::constant(1)]),
                    CTuple::with_condition(
                        [Term::constant(2), Term::Var(b)],
                        Conjunction::new([Atom::eq(b, a)]),
                    ),
                ],
            )
            .unwrap()
        };
        let t1 = build(x, y);
        let t2 = build(x2, y2);
        assert_ne!(t1, t2, "distinct fresh variables make the tables unequal");
        assert!(t1.alpha_equivalent(&t2));
        assert!(t2.alpha_equivalent(&t1));
        assert!(t1.alpha_equivalent(&t1));
    }

    #[test]
    fn alpha_equivalence_requires_a_consistent_bijection() {
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        // (x, x) is not alpha-equivalent to (y, z): the repeated variable must map to a
        // repeated variable.
        let repeated = CTable::e_table("T", 2, [vec![Term::Var(x), Term::Var(x)]]).unwrap();
        let distinct = CTable::e_table("T", 2, [vec![Term::Var(y), Term::Var(z)]]).unwrap();
        assert!(!repeated.alpha_equivalent(&distinct));
        assert!(!distinct.alpha_equivalent(&repeated));
        // Different constants, names, or row counts are never alpha-equivalent.
        let other_const = CTable::codd("T", 1, [vec![Term::constant(1)]]).unwrap();
        let same_const = CTable::codd("T", 1, [vec![Term::constant(2)]]).unwrap();
        assert!(!other_const.alpha_equivalent(&same_const));
        assert!(!other_const.alpha_equivalent(&other_const.renamed("S")));
        // A variable never matches a constant.
        let var_row = CTable::codd("T", 1, [vec![Term::Var(x)]]).unwrap();
        assert!(!var_row.alpha_equivalent(&other_const));
    }

    #[test]
    fn display_contains_rows_and_conditions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::new(
            "T",
            1,
            Conjunction::new([Atom::neq(x, 0)]),
            [CTuple::with_condition(
                [Term::Var(x)],
                Conjunction::new([Atom::eq(x, 1)]),
            )],
        )
        .unwrap();
        let s = t.to_string();
        assert!(s.contains("c-table"));
        assert!(s.contains('≠'));
        assert!(s.contains('‖'));
        assert!(!t.is_empty());
        assert_eq!(t.renamed("S").name(), "S");
    }
}
