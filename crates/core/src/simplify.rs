//! Semantics-preserving simplification of c-tables.
//!
//! A c-table produced by the algebra ([`crate::algebra::eval_ucq`]) or assembled from user
//! input often carries redundancy: rows whose local condition can never hold together with
//! the global condition, local atoms already guaranteed by the global condition, trivially
//! true atoms, and duplicate or subsumed rows.  [`simplify_table`] removes all of these
//! while representing **exactly the same set of possible worlds** — it is a normalisation,
//! not an approximation.
//!
//! The paper itself performs the same kind of rewriting in passing: Theorem 3.2(1) "assumes
//! that if it follows from the global condition that a variable equals a constant, then the
//! variable is replaced by that constant in the table" (that part is
//! [`CTable::normalize_equalities`]), and the PTIME emptiness checks of Section 2.2 amount
//! to the satisfiability tests used here.  Keeping tables small also matters practically:
//! every decision procedure of `pw-decide` backtracks over rows, so dropping rows that can
//! never materialise shrinks the search space for free.

use crate::table::{CTable, CTuple};
use crate::CDatabase;
use pw_condition::{Atom, Conjunction};

/// Simplify one c-table without changing the set of worlds it represents.
///
/// The rewriting steps, each individually rep-preserving:
///
/// 1. return `None` when the global condition is unsatisfiable (the represented set of
///    worlds is empty — the caller decides how to surface that);
/// 2. drop trivially true atoms (`c = c`, `x = x`, `c ≠ c'`) from the global condition;
/// 3. drop rows whose local condition is unsatisfiable together with the global condition
///    (they can never produce a fact);
/// 4. drop local atoms that are trivially true or already implied by the global condition
///    (only valuations satisfying the global condition matter);
/// 5. merge rows with identical terms when one local condition implies the other (the fact
///    is produced when *either* condition holds, so the weaker condition wins); exact
///    duplicates are a special case.
pub fn simplify_table(table: &CTable) -> Option<CTable> {
    if !table.global_condition().is_satisfiable() {
        return None;
    }
    let global = Conjunction::new(
        table
            .global_condition()
            .atoms()
            .iter()
            .filter(|a| a.trivial_value() != Some(true))
            .cloned(),
    );

    let mut rows: Vec<CTuple> = Vec::new();
    for row in table.tuples() {
        if !global.and(&row.condition).is_satisfiable() {
            continue;
        }
        let condition = Conjunction::new(
            row.condition
                .atoms()
                .iter()
                .filter(|a| a.trivial_value() != Some(true))
                .filter(|a| !implied_by(&global, a))
                .cloned(),
        );
        rows.push(CTuple::with_condition(row.terms.clone(), condition));
    }

    // Subsumption between rows with identical terms: keep the weaker (more often true)
    // condition.  Quadratic in the number of rows, which is fine for the table sizes the
    // decision procedures can handle anyway.
    let mut kept: Vec<CTuple> = Vec::new();
    'rows: for row in rows {
        for existing in &mut kept {
            if existing.terms != row.terms {
                continue;
            }
            if row.condition.implies(&existing.condition) {
                // `existing` already fires whenever `row` would.
                continue 'rows;
            }
            if existing.condition.implies(&row.condition) {
                // `row` is the weaker of the two: it replaces `existing`.
                *existing = row;
                continue 'rows;
            }
        }
        kept.push(row);
    }

    Some(
        CTable::new(table.name(), table.arity(), global, kept)
            .expect("terms are copied unchanged, so the arity cannot change"),
    )
}

/// Does the (satisfiable) conjunction imply a single atom?
fn implied_by(global: &Conjunction, atom: &Atom) -> bool {
    global.implies(&Conjunction::single(*atom))
}

/// Simplify every table of a database.
///
/// Returns `None` when **any** global condition is unsatisfiable: a valuation must satisfy
/// all of them at once, so a single contradiction empties the whole representation.
pub fn simplify_database(db: &CDatabase) -> Option<CDatabase> {
    let mut tables = Vec::with_capacity(db.table_count());
    for table in db.tables() {
        tables.push(simplify_table(table)?);
    }
    Some(db.with_tables_like(tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rep::PossibleWorlds;
    use pw_condition::{Term, VarGen};
    use pw_relational::Constant;
    use std::collections::BTreeSet;

    fn assert_same_rep(before: &CTable, after: &CTable) {
        // Compare over a shared evaluation domain: both tables' constants plus one spare
        // value per variable of the *original* (the simplified table never has more).
        let shared: BTreeSet<Constant> = before
            .constants()
            .into_iter()
            .chain(after.constants())
            .collect();
        let db_before = CDatabase::single(before.clone());
        let db_after = CDatabase::single(after.clone());
        let worlds_before = PossibleWorlds::new(&db_before)
            .with_extra_constants(shared.clone())
            .enumerate(200_000)
            .unwrap();
        let worlds_after = PossibleWorlds::new(&db_after)
            .with_extra_constants(shared)
            .enumerate(200_000)
            .unwrap();
        assert_eq!(worlds_before, worlds_after);
    }

    #[test]
    fn unsatisfiable_global_condition_yields_none() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::g_table(
            "T",
            1,
            Conjunction::new([Atom::eq(x, 1), Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        assert!(simplify_table(&t).is_none());
        assert!(simplify_database(&CDatabase::single(t)).is_none());
    }

    #[test]
    fn contradictory_rows_are_dropped() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::new(
            "T",
            1,
            Conjunction::new([Atom::eq(x, 1)]),
            [
                CTuple::with_condition([Term::constant(7)], Conjunction::new([Atom::neq(x, 1)])),
                CTuple::of_terms([Term::constant(8)]),
            ],
        )
        .unwrap();
        let s = simplify_table(&t).unwrap();
        assert_eq!(
            s.len(),
            1,
            "the x ≠ 1 row can never fire under the global x = 1"
        );
        assert_eq!(s.tuples()[0].terms, vec![Term::constant(8)]);
        assert_same_rep(&t, &s);
    }

    #[test]
    fn local_atoms_implied_by_the_global_condition_are_removed() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::new(
            "T",
            1,
            Conjunction::new([Atom::eq(x, 3)]),
            [CTuple::with_condition(
                [Term::Var(y)],
                Conjunction::new([Atom::eq(x, 3), Atom::neq(y, 0)]),
            )],
        )
        .unwrap();
        let s = simplify_table(&t).unwrap();
        assert_eq!(s.tuples()[0].condition.len(), 1);
        assert_eq!(s.tuples()[0].condition.atoms()[0], Atom::neq(y, 0));
        assert_same_rep(&t, &s);
    }

    #[test]
    fn trivially_true_atoms_disappear_everywhere() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::new(
            "T",
            1,
            Conjunction::new([
                Atom::eq(Term::constant(1), Term::constant(1)),
                Atom::neq(x, 0),
            ]),
            [CTuple::with_condition(
                [Term::Var(x)],
                Conjunction::new([
                    Atom::eq(x, x),
                    Atom::neq(Term::constant(1), Term::constant(2)),
                ]),
            )],
        )
        .unwrap();
        let s = simplify_table(&t).unwrap();
        assert_eq!(s.global_condition().len(), 1);
        assert!(s.tuples()[0].has_trivial_condition());
        assert_same_rep(&t, &s);
    }

    #[test]
    fn duplicate_and_subsumed_rows_are_merged() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let unconditional = CTuple::of_terms([Term::constant(5)]);
        let conditional =
            CTuple::with_condition([Term::constant(5)], Conjunction::new([Atom::eq(x, 0)]));
        // Exact duplicate + a conditional row producing the same fact: one row survives,
        // with the weakest (here: trivial) condition.
        let t = CTable::new(
            "T",
            1,
            Conjunction::truth(),
            [
                conditional.clone(),
                unconditional.clone(),
                unconditional.clone(),
            ],
        )
        .unwrap();
        let s = simplify_table(&t).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.tuples()[0].has_trivial_condition());
        assert_same_rep(&t, &s);

        // Order independence: the unconditional row first gives the same result.
        let t2 = CTable::new("T", 1, Conjunction::truth(), [unconditional, conditional]).unwrap();
        let s2 = simplify_table(&t2).unwrap();
        assert_eq!(s2.len(), 1);
        assert!(s2.tuples()[0].has_trivial_condition());
    }

    #[test]
    fn incomparable_conditions_on_the_same_terms_are_both_kept() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::new(
            "T",
            1,
            Conjunction::truth(),
            [
                CTuple::with_condition([Term::constant(5)], Conjunction::new([Atom::eq(x, 0)])),
                CTuple::with_condition([Term::constant(5)], Conjunction::new([Atom::eq(x, 1)])),
            ],
        )
        .unwrap();
        let s = simplify_table(&t).unwrap();
        assert_eq!(s.len(), 2, "neither condition implies the other");
        assert_same_rep(&t, &s);
    }

    #[test]
    fn algebra_output_shrinks_but_keeps_its_worlds() {
        // A join whose candidates include contradictory combinations: the algebra emits
        // them pruned already, but a second conjunct through the global condition still
        // leaves implied atoms for simplify to clean up.
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::g_table(
            "R",
            2,
            Conjunction::new([Atom::eq(x, 1)]),
            [
                vec![Term::constant(1), Term::Var(x)],
                vec![Term::Var(x), Term::constant(2)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let q = pw_query::Ucq::single(pw_query::ConjunctiveQuery::new(
            [pw_query::QTerm::var("a"), pw_query::QTerm::var("b")],
            [pw_query::qatom!("R"; "a", "b")],
        ));
        let out = crate::algebra::eval_ucq(&q, &db, "Q").unwrap();
        let s = simplify_table(&out).unwrap();
        assert!(s.len() <= out.len());
        assert_same_rep(&out, &s);
    }

    #[test]
    fn database_simplification_covers_all_tables() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let a = CTable::new(
            "A",
            1,
            Conjunction::new([Atom::eq(x, 1)]),
            [CTuple::with_condition(
                [Term::Var(x)],
                Conjunction::new([Atom::neq(x, 1)]),
            )],
        )
        .unwrap();
        let b = CTable::codd("B", 1, [vec![Term::constant(3)]]).unwrap();
        let db = CDatabase::new([a, b]);
        let s = simplify_database(&db).unwrap();
        assert_eq!(s.table("A").unwrap().len(), 0);
        assert_eq!(s.table("B").unwrap().len(), 1);
    }
}
