//! C-table databases: the paper's n-vectors of c-tables, stored catalog-addressed.

use crate::table::{CTable, CTuple, TableClass};
use pw_condition::{Atom, Conjunction, Term, Variable};
use pw_relational::{Constant, RelId, Sym, Symbols};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Lazily computed per-database state, shared by clones.  All members are pay-on-use:
/// a short-lived derived database (a view conversion, a normalisation) that is never used
/// as a cache key and never resolves a relation name costs one allocation and nothing
/// else.
#[derive(Debug, Default)]
struct ShardState {
    /// Structural hash of the tables — the one-machine-word stand-in that per-request
    /// cache lookups (e.g. the engine's base-store map) hash instead of re-walking every
    /// relation name, row and condition.  Combined from [`ShardState::table_hashes`], so
    /// [`CDatabase::apply`] can update it by re-hashing only the changed tables.
    fingerprint: std::sync::OnceLock<u64>,
    /// Per-table structural hashes, parallel to the table vector.  The delta path reuses
    /// the hashes of untouched tables; the fingerprint is the combination of this vector.
    table_hashes: std::sync::OnceLock<Arc<[u64]>>,
    /// The shard map: the catalog id of each table, parallel to the table vector.
    /// Registered in the owning [`Symbols`] catalog on first resolution; afterwards
    /// id→shard resolution is a machine-word scan — no name is hashed or compared below
    /// the boundary.
    rel_ids: std::sync::OnceLock<Arc<[RelId]>>,
    /// The coupling graph (§ [`CDatabase::shard_groups`]): shards grouped by shared
    /// condition variables, cached next to the fingerprint and shared by clones.
    coupling: std::sync::OnceLock<CouplingGraph>,
}

/// A maximal set of shards coupled through shared condition variables, together with the
/// projected sub-database the per-shard decision paths search.
///
/// Groups partition the tables of a [`CDatabase`]; two tables land in the same group iff
/// they are connected through variables shared between rows or conditions (Section 2.2's
/// shorthand for a global equality between tables).  Because the paper's semantics
/// quantifies one valuation over *all* variables at once, variable-disjoint groups
/// represent independent sets of worlds: `rep(db)` is the product of the groups'
/// representations, which is what lets a decision fan out per group and merge.
#[derive(Clone, Debug)]
pub struct ShardGroup {
    /// Positions of the member tables in the owning database's table order (ascending).
    members: Arc<[usize]>,
    /// The projected sub-database: exactly the member tables, in table order, sharing the
    /// owning database's [`Symbols`] handle (ids stay valid — nothing is re-interned).
    db: CDatabase,
    /// The variables mentioned by the member tables — cached so the delta path can test
    /// "does this changed shard touch the group?" without re-walking the group's rows.
    vars: Arc<BTreeSet<Variable>>,
}

impl ShardGroup {
    /// Positions of the member tables in the owning database's table order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The projected sub-database (same `Symbols` handle as the owner).
    pub fn database(&self) -> &CDatabase {
        &self.db
    }

    /// The variables mentioned by the member tables (rows and conditions).
    pub fn variables(&self) -> &BTreeSet<Variable> {
        &self.vars
    }
}

/// The cached coupling graph: the groups plus the inverse map from table position to
/// group index.
#[derive(Debug)]
struct CouplingGraph {
    groups: Box<[ShardGroup]>,
    /// `group_of[table position] == index into groups`.
    group_of: Box<[usize]>,
}

/// An incomplete-information database: a vector of named c-tables.
///
/// Section 2.2 generalises the single-table definitions to n-vectors of c-tables whose
/// variable sets are pairwise disjoint; relationships between tables are established
/// through the conditions.  We do not *enforce* disjointness — sharing a variable between
/// tables is a convenient (and semantically equivalent) shorthand for equating two
/// variables in a global condition — but [`CDatabase::tables_share_variables`] reports it
/// so callers that care (e.g. the classification used in benchmarks) can check.
///
/// # Symbols and the relation catalog
///
/// Every database owns a thread-safe handle to the [`Symbols`] context its interned ids
/// live in: the constant dictionary *and* the relation catalog.  Each table's name is
/// registered in the catalog exactly once (on first resolution) and the tables are
/// addressed by the resulting [`RelId`] — a shard map with one store per relation.
/// Below the front door everything is addressed by id ([`CDatabase::table_by_id`],
/// [`CDatabase::shards`]); [`CDatabase::table`] survives as the *boundary resolver* that
/// performs the one name→id lookup a request pays.
///
/// Databases built through the ordinary constructors share the global context (matching
/// the context-free `Term` conversions); a session that wants its own id space attaches a
/// private context with [`CDatabase::with_symbols`] (ids already private) or
/// [`CDatabase::reinterned`] (translate a global-id database into a private space).  The
/// decision layers resolve and intern **through this handle only** — no layer below the
/// front door may touch the global table implicitly.
#[derive(Clone, Debug)]
pub struct CDatabase {
    /// The shards, shared: cloning a database (one clone per request in a batch) is a
    /// refcount bump, and equality between clones is a pointer compare.
    tables: Arc<[CTable]>,
    symbols: Arc<Symbols>,
    state: Arc<ShardState>,
}

/// Below this shard count the boundary resolver scans table names directly instead of
/// consulting the catalog — for tiny databases a short scan is cheaper than a name hash
/// plus a lock acquisition (benchmarked in `bench-pr3`; the crossover is between 32 and
/// 64 relations on current hardware).
const SMALL_SHARD_SCAN: usize = 32;

impl Default for CDatabase {
    fn default() -> Self {
        CDatabase::new([])
    }
}

impl PartialEq for CDatabase {
    fn eq(&self, other: &Self) -> bool {
        // Ids from different contexts are incomparable, so two databases are equal only
        // when they agree on the context *and* the content.  Clones share the table
        // allocation and compare by pointer; otherwise the fingerprint screens out
        // almost all unequal pairs before the structural walk.
        Arc::ptr_eq(&self.symbols, &other.symbols)
            && (Arc::ptr_eq(&self.tables, &other.tables)
                || (self.fingerprint() == other.fingerprint() && self.tables == other.tables))
    }
}

impl Eq for CDatabase {}

impl Hash for CDatabase {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The symbol-context identity is deliberately left out: hashing must agree with
        // equality, and equal databases share the context by `PartialEq` above.  The
        // cached fingerprint stands in for the tables (equal tables ⇒ equal fingerprint).
        self.fingerprint().hash(state);
    }
}

impl CDatabase {
    /// Build a database from tables (interned against the global symbol context).
    pub fn new(tables: impl IntoIterator<Item = CTable>) -> Self {
        CDatabase::build(tables.into_iter().collect(), Symbols::global_handle())
    }

    /// A database with a single table.
    pub fn single(table: CTable) -> Self {
        CDatabase::new([table])
    }

    fn build(tables: Arc<[CTable]>, symbols: Arc<Symbols>) -> Self {
        CDatabase {
            tables,
            symbols,
            state: Arc::new(ShardState::default()),
        }
    }

    /// The structural hash of the tables, computed on first use and shared by clones.
    /// Combined from the per-table hashes, so [`CDatabase::apply`] updates it by
    /// re-hashing only the changed tables.  Public because the delta layer reports it
    /// ([`crate::delta::DbDelta`]) and the decision memo in `pw-decide` keys on it.
    pub fn fingerprint(&self) -> u64 {
        *self
            .state
            .fingerprint
            .get_or_init(|| combine_table_hashes(self.table_hashes()))
    }

    /// Per-table structural hashes, parallel to [`CDatabase::tables`].
    pub(crate) fn table_hashes(&self) -> &Arc<[u64]> {
        self.state
            .table_hashes
            .get_or_init(|| self.tables.iter().map(hash_table).collect())
    }

    /// Attach a (typically private) symbol context; the caller guarantees every constant
    /// id in the tables was issued by its dictionary.  Table names are (re-)registered in
    /// the context's catalog, so id-addressing works immediately.
    ///
    /// With the handle threaded through the whole decision boundary (valuations, `rep`,
    /// the c-table algebra, freezing and the engine), a database on a private context runs
    /// every decision problem end-to-end; use [`CDatabase::reinterned`] to translate an
    /// existing global-id database into a private space.
    pub fn with_symbols(self, symbols: Arc<Symbols>) -> Self {
        // The shard allocation is reused; only the catalog registration and index are
        // redone against the new context.
        CDatabase::build(self.tables, symbols)
    }

    /// Translate this database into another symbol context: every constant id is resolved
    /// through the current context and re-interned in `symbols`, and the relation names
    /// are registered in its catalog.  This is how a session builds its private-dictionary
    /// copy of a shared template database.
    pub fn reinterned(&self, symbols: &Arc<Symbols>) -> CDatabase {
        let remap_sym = |s: Sym| -> Sym {
            let c = self
                .symbols
                .resolve(s)
                .expect("ids were issued by this database's symbol context");
            symbols.intern(&c)
        };
        let remap_term = |t: Term| -> Term {
            match t {
                Term::Const(s) => Term::Const(remap_sym(s)),
                v => v,
            }
        };
        let remap_conj = |c: &Conjunction| -> Conjunction {
            Conjunction::new(c.atoms().iter().map(|a| match a {
                Atom::Eq(x, y) => Atom::Eq(remap_term(*x), remap_term(*y)),
                Atom::Neq(x, y) => Atom::Neq(remap_term(*x), remap_term(*y)),
            }))
        };
        let tables: Arc<[CTable]> = self
            .tables
            .iter()
            .map(|t| {
                CTable::new(
                    t.name(),
                    t.arity(),
                    remap_conj(t.global_condition()),
                    t.tuples().iter().map(|row| {
                        CTuple::with_condition(
                            row.terms.iter().map(|&term| remap_term(term)),
                            remap_conj(&row.condition),
                        )
                    }),
                )
                .expect("re-interning preserves arities")
            })
            .collect();
        CDatabase::build(tables, Arc::clone(symbols))
    }

    /// Rebuild with the same symbol context but different tables — used by the
    /// normalisation/conversion paths so derived databases stay in their source's id
    /// space.
    pub fn with_tables_like(&self, tables: impl IntoIterator<Item = CTable>) -> CDatabase {
        CDatabase::build(tables.into_iter().collect(), Arc::clone(&self.symbols))
    }

    /// The symbol context this database's ids live in.
    pub fn symbols(&self) -> &Arc<Symbols> {
        &self.symbols
    }

    /// Intern an external constant at the front door.
    pub fn intern(&self, c: &Constant) -> Sym {
        self.symbols.intern(c)
    }

    /// Resolve an id issued by this database's context.
    pub fn resolve(&self, sym: Sym) -> Option<Constant> {
        self.symbols.resolve(sym)
    }

    /// The tables.
    pub fn tables(&self) -> &[CTable] {
        &self.tables
    }

    /// The catalog ids of the tables, parallel to [`CDatabase::tables`].  Names are
    /// registered in the catalog on first call (in table order — ids for a fresh private
    /// catalog are dense and deterministic); afterwards this is an atomic load.
    pub fn rel_ids(&self) -> &[RelId] {
        self.state.rel_ids.get_or_init(|| {
            self.tables
                .iter()
                .map(|t| self.symbols.register_relation(t.name()))
                .collect()
        })
    }

    /// Iterate over the shards: `(catalog id, table)` pairs in table order.
    pub fn shards(&self) -> impl Iterator<Item = (RelId, &CTable)> {
        self.rel_ids().iter().copied().zip(self.tables.iter())
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of rows across tables (the database "size" for data-complexity sweeps).
    pub fn row_count(&self) -> usize {
        self.tables.iter().map(CTable::len).sum()
    }

    /// Resolve a relation *name* to its shard — the boundary resolver, the only place a
    /// request's relation string is examined; everything below addresses the shard by
    /// [`RelId`] ([`CDatabase::table_by_id`]).
    ///
    /// The resolver is adaptive: with a handful of shards a direct scan beats the catalog
    /// lookup (no hash, no lock); larger databases resolve through the catalog in one
    /// name hash.
    pub fn table(&self, name: &str) -> Option<&CTable> {
        self.table_position(name).map(|pos| &self.tables[pos])
    }

    /// Resolve a relation name to its catalog id, if this database stores it.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        let ids = self.rel_ids();
        let id = self.symbols.relation_id(name)?;
        ids.contains(&id).then_some(id)
    }

    /// The shard of a catalog id — the machine-word lookup the hot paths use (a dense
    /// scan of `Copy` ids; no string is touched).
    pub fn table_by_id(&self, id: RelId) -> Option<&CTable> {
        self.rel_ids()
            .iter()
            .position(|&r| r == id)
            .map(|pos| &self.tables[pos])
    }

    /// Resolve a relation name to its table *position* — the boundary resolver behind
    /// [`CDatabase::table`] and the group-aware decision paths (which index
    /// [`CDatabase::shard_group_index`] by position).  Adaptive: a direct scan below
    /// `SMALL_SHARD_SCAN` shards, one catalog hash above.  The catalog path resolves
    /// against this database's *registered* shard map ([`CDatabase::rel_ids`], which
    /// registers the names on first use) — a raw `relation_id` lookup would miss every
    /// name no caller has registered yet.
    pub fn table_position(&self, name: &str) -> Option<usize> {
        if self.tables.len() <= SMALL_SHARD_SCAN {
            return self.tables.iter().position(|t| t.name() == name);
        }
        let ids = self.rel_ids();
        let id = self.symbols.relation_id(name)?;
        ids.iter().position(|&r| r == id)
    }

    /// All variables across tables and conditions.
    pub fn variables(&self) -> BTreeSet<Variable> {
        self.tables.iter().flat_map(CTable::variables).collect()
    }

    /// All constants across tables and conditions — the Δ of Proposition 2.1.
    /// Resolution goes through this database's own symbol handle, so the set is
    /// correct for private-context databases too.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.tables
            .iter()
            .flat_map(CTable::syms)
            .map(|s| {
                self.symbols
                    .resolve(s)
                    .expect("row ids were issued by this database's symbol context")
            })
            .collect()
    }

    /// The loosest class among the member tables (a database of one c-table and one
    /// Codd-table must be treated as a c-table database).
    pub fn classify(&self) -> TableClass {
        self.tables
            .iter()
            .map(CTable::classify)
            .max()
            .unwrap_or(TableClass::Codd)
    }

    /// Whether two tables share a variable (see the type-level comment).  Cheap early-exit
    /// scan; the full partition into coupled groups is [`CDatabase::shard_groups`].
    pub fn tables_share_variables(&self) -> bool {
        let mut seen: BTreeSet<Variable> = BTreeSet::new();
        for t in self.tables.iter() {
            let vars = t.variables();
            if vars.iter().any(|v| seen.contains(v)) {
                return true;
            }
            seen.extend(vars);
        }
        false
    }

    /// Is this a Codd-table database with pairwise variable-disjoint tables?  The guard
    /// behind the PTIME matching dispatch of membership and possibility (Theorems 3.1(1)
    /// and 5.1(1) assume the single-table definition, which the n-vector generalisation
    /// only preserves when no variables are shared) — hoisted here so the coupling graph
    /// has one consumer seam instead of per-problem copies of the same conjunction.
    pub fn is_decoupled_codd(&self) -> bool {
        self.classify() == TableClass::Codd && !self.tables_share_variables()
    }

    /// The coupling graph: the partition of the shards into [`ShardGroup`]s — maximal
    /// sets of tables connected through shared condition variables — computed with a
    /// union–find over shard positions on first use and cached next to the fingerprint
    /// (clones share it).  Groups are ordered by their smallest member position, members
    /// ascend within a group, and every table belongs to exactly one group, so the layout
    /// is deterministic build-to-build.
    ///
    /// Variable-disjoint groups represent *independent* world choices (the paper's
    /// valuation quantifies over all variables at once, and a variable never crosses
    /// groups), which is what the per-shard decision paths in `pw-decide` rely on: a
    /// request fans out across the groups' projected sub-databases and merges with the
    /// problem's combinator, falling back to the joint search only when everything is in
    /// one group.
    pub fn shard_groups(&self) -> &[ShardGroup] {
        &self.coupling().groups
    }

    /// The inverse of [`CDatabase::shard_groups`]: for each table position, the index of
    /// the group it belongs to.
    pub fn shard_group_index(&self) -> &[usize] {
        &self.coupling().group_of
    }

    fn coupling(&self) -> &CouplingGraph {
        self.state
            .coupling
            .get_or_init(|| self.build_coupling(0..self.tables.len()))
    }

    /// Partition the table positions of `scope` into coupled groups and materialize the
    /// [`ShardGroup`]s.  The fresh path passes every position; the delta path
    /// ([`CDatabase::apply`]) passes only the members of the union-find components that
    /// touch a changed shard, carrying every other group over from the previous graph.
    fn build_coupling(&self, scope: impl IntoIterator<Item = usize>) -> CouplingGraph {
        let groups = self.build_groups(scope);
        let n = self.tables.len();
        let mut group_of = vec![usize::MAX; n];
        for (g, group) in groups.iter().enumerate() {
            for &m in group.members() {
                group_of[m] = g;
            }
        }
        debug_assert!(group_of.iter().all(|&g| g != usize::MAX));
        CouplingGraph {
            groups: groups.into(),
            group_of: group_of.into(),
        }
    }

    /// Union–find over the positions of `scope`, returning the [`ShardGroup`]s ordered by
    /// smallest member.  Only the scoped tables' variables are walked.
    fn build_groups(&self, scope: impl IntoIterator<Item = usize>) -> Vec<ShardGroup> {
        let mut scope: Vec<usize> = scope.into_iter().collect();
        scope.sort_unstable(); // ascending scan ⇒ groups ordered by smallest member
        let n = self.tables.len();
        // Union–find over table positions; a variable's first owner absorbs every later
        // table that mentions it.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]]; // path halving
                i = parent[i];
            }
            i
        }
        let vars_of: Vec<(usize, BTreeSet<Variable>)> = scope
            .iter()
            .map(|&i| (i, self.tables[i].variables()))
            .collect();
        let mut owner: std::collections::HashMap<Variable, usize> =
            std::collections::HashMap::new();
        for (i, vars) in &vars_of {
            for &v in vars {
                match owner.entry(v) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let (a, b) = (find(&mut parent, *e.get()), find(&mut parent, *i));
                        // Rooting at the smaller position keeps group order stable.
                        parent[a.max(b)] = a.min(b);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(*i);
                    }
                }
            }
        }
        let mut member_lists: Vec<Vec<usize>> = Vec::new();
        let mut var_lists: Vec<BTreeSet<Variable>> = Vec::new();
        let mut root_to_group: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (i, vars) in vars_of {
            let root = find(&mut parent, i);
            let g = *root_to_group.entry(root).or_insert_with(|| {
                member_lists.push(Vec::new());
                var_lists.push(BTreeSet::new());
                member_lists.len() - 1
            });
            member_lists[g].push(i);
            var_lists[g].extend(vars);
        }
        member_lists
            .into_iter()
            .zip(var_lists)
            .map(|(members, vars)| {
                // A group spanning every table reuses the shard allocation (but gets a
                // *fresh* lazy state, so the cached graph never holds a cycle back to
                // itself through the sub-database's own cache).
                let tables: Arc<[CTable]> = if members.len() == n {
                    Arc::clone(&self.tables)
                } else {
                    members.iter().map(|&i| self.tables[i].clone()).collect()
                };
                ShardGroup {
                    db: CDatabase::build(tables, Arc::clone(&self.symbols)),
                    members: members.into(),
                    vars: Arc::new(vars),
                }
            })
            .collect()
    }

    /// The schema: `(name, arity)` pairs in table order.
    pub fn schema(&self) -> Vec<(String, usize)> {
        self.tables
            .iter()
            .map(|t| (t.name().to_owned(), t.arity()))
            .collect()
    }

    /// Whether the conjunction of all global conditions is satisfiable.  When it is not,
    /// the represented set of worlds is empty (Section 2.2: "Δ is the empty set iff the
    /// global condition is unsatisfiable") — checkable in PTIME.
    pub fn has_satisfiable_globals(&self) -> bool {
        let mut combined = pw_condition::Conjunction::truth();
        for t in self.tables.iter() {
            combined = combined.and(t.global_condition());
        }
        combined.is_satisfiable()
    }
}

impl CDatabase {
    /// The delta-application core behind [`CDatabase::apply`]: install `new_tables`
    /// (same length and positions as the current tables; exactly the positions in
    /// `changed` differ) and pre-seed the derived state incrementally —
    ///
    /// * per-table hashes are reused for untouched positions and recomputed for changed
    ///   ones, and the fingerprint is re-combined from them;
    /// * the registered shard map is carried over verbatim (positions and names are
    ///   stable under a delta);
    /// * the coupling graph is rebuilt **only** for the union-find components that touch
    ///   a changed shard — either because the shard is a member, or because the changed
    ///   shard's new variables are owned by the component (a delta can merge previously
    ///   independent groups); every other [`ShardGroup`] is carried over by refcount,
    ///   so its projected sub-database keeps its cache identity (fingerprint, base
    ///   stores, decision memo) across the delta.
    ///
    /// Returns the new database and the indices (in the *new* graph) of the rebuilt
    /// groups.
    pub(crate) fn apply_tables(
        &self,
        new_tables: Vec<CTable>,
        changed: &[usize],
    ) -> (CDatabase, Vec<usize>) {
        debug_assert_eq!(new_tables.len(), self.tables.len());
        if changed.is_empty() {
            return (self.clone(), Vec::new());
        }
        let old_graph = self.coupling();
        let state = ShardState::default();

        // Fingerprint: re-hash the changed tables only.
        let mut hashes: Vec<u64> = self.table_hashes().to_vec();
        for &p in changed {
            hashes[p] = hash_table(&new_tables[p]);
        }
        let _ = state.fingerprint.set(combine_table_hashes(&hashes));
        let _ = state.table_hashes.set(hashes.into());

        // Shard map: names and positions are stable, so the registration carries over.
        if let Some(ids) = self.state.rel_ids.get() {
            let _ = state.rel_ids.set(Arc::clone(ids));
        }

        let next = CDatabase {
            tables: new_tables.into(),
            symbols: Arc::clone(&self.symbols),
            state: Arc::new(state),
        };

        // Coupling graph: a group is dirty when a changed shard is a member or when a
        // changed shard's *new* variables are owned by the group (insertion can couple).
        let changed_set: BTreeSet<usize> = changed.iter().copied().collect();
        let changed_vars: BTreeSet<Variable> = changed
            .iter()
            .flat_map(|&p| next.tables[p].variables())
            .collect();
        let dirty_old: Vec<bool> = old_graph
            .groups
            .iter()
            .map(|group| {
                group.members().iter().any(|m| changed_set.contains(m))
                    || changed_vars.iter().any(|v| group.vars.contains(v))
            })
            .collect();
        let affected: Vec<usize> = old_graph
            .groups
            .iter()
            .zip(&dirty_old)
            .filter(|(_, &d)| d)
            .flat_map(|(g, _)| g.members().iter().copied())
            .collect();
        let rebuilt = next.build_groups(affected);
        let rebuilt_keys: BTreeSet<usize> = rebuilt.iter().map(|g| g.members()[0]).collect();
        let mut groups: Vec<ShardGroup> = old_graph
            .groups
            .iter()
            .zip(&dirty_old)
            .filter(|(_, &d)| !d)
            .map(|(g, _)| g.clone())
            .chain(rebuilt)
            .collect();
        groups.sort_by_key(|g| g.members()[0]);
        let dirty_new: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| rebuilt_keys.contains(&g.members()[0]))
            .map(|(i, _)| i)
            .collect();
        let mut group_of = vec![usize::MAX; next.tables.len()];
        for (g, group) in groups.iter().enumerate() {
            for &m in group.members() {
                group_of[m] = g;
            }
        }
        debug_assert!(group_of.iter().all(|&g| g != usize::MAX));
        let _ = next.state.coupling.set(CouplingGraph {
            groups: groups.into(),
            group_of: group_of.into(),
        });
        (next, dirty_new)
    }
}

/// Structural hash of one table (rows, conditions, name, arity).
fn hash_table(t: &CTable) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// Combine per-table hashes into the database fingerprint.  Must be a pure function of
/// the hash vector so the fresh and the incremental path agree.
fn combine_table_hashes(hashes: &[u64]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    hashes.hash(&mut h);
    h.finish()
}

impl FromIterator<CTable> for CDatabase {
    fn from_iter<T: IntoIterator<Item = CTable>>(iter: T) -> Self {
        CDatabase::new(iter)
    }
}

impl fmt::Display for CDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.tables.iter() {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Atom, Conjunction, Term, VarGen};

    #[test]
    fn accessors_and_classification() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let codd = CTable::codd("R", 1, [vec![Term::Var(x)]]).unwrap();
        let itab = CTable::i_table(
            "S",
            1,
            Conjunction::new([Atom::neq(y, 0)]),
            [vec![Term::Var(y)]],
        )
        .unwrap();
        let db = CDatabase::new([codd, itab]);
        assert_eq!(db.table_count(), 2);
        assert_eq!(db.row_count(), 2);
        assert_eq!(db.classify(), TableClass::ITable);
        assert!(db.table("R").is_some());
        assert!(db.table("Nope").is_none());
        assert_eq!(db.variables().len(), 2);
        assert_eq!(db.constants(), [Constant::int(0)].into());
        assert_eq!(db.schema(), vec![("R".to_owned(), 1), ("S".to_owned(), 1)]);
        assert!(!db.tables_share_variables());
        assert!(db.has_satisfiable_globals());
    }

    #[test]
    fn shard_map_addresses_tables_by_catalog_id() {
        let r = CTable::codd("R", 1, [vec![Term::constant(1)]]).unwrap();
        let s = CTable::codd("S", 2, [vec![Term::constant(1), Term::constant(2)]]).unwrap();
        let db = CDatabase::new([r, s]);
        assert_eq!(db.rel_ids().len(), 2);
        let r_id = db.rel_id("R").expect("registered at construction");
        let s_id = db.rel_id("S").expect("registered at construction");
        assert_ne!(r_id, s_id);
        assert_eq!(db.table_by_id(r_id).unwrap().name(), "R");
        assert_eq!(db.table_by_id(s_id).unwrap().name(), "S");
        assert_eq!(db.shards().count(), 2);
        // A name registered in the catalog by some other database does not resolve here.
        let other =
            CDatabase::single(CTable::codd("Elsewhere", 1, [vec![Term::constant(1)]]).unwrap());
        let foreign = other.rel_id("Elsewhere").unwrap();
        assert_eq!(db.rel_id("Elsewhere"), None);
        assert!(db.table_by_id(foreign).is_none());
        assert!(db.table("Elsewhere").is_none());
    }

    #[test]
    fn equality_and_hashing_use_the_cached_fingerprint() {
        use std::collections::hash_map::DefaultHasher;
        let t = CTable::codd("R", 1, [vec![Term::constant(1)]]).unwrap();
        let db = CDatabase::single(t.clone());
        let clone = db.clone();
        assert_eq!(db, clone);
        let hash = |d: &CDatabase| {
            let mut h = DefaultHasher::new();
            d.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&db), hash(&clone));
        // An independently built equal database also agrees (same tables, same context).
        let rebuilt = CDatabase::single(t);
        assert_eq!(db, rebuilt);
        assert_eq!(hash(&db), hash(&rebuilt));
    }

    #[test]
    fn reinterning_moves_a_database_into_a_private_context() {
        let t = CTable::codd("R", 2, [vec![Term::from("alice"), Term::from("sales")]]).unwrap();
        let db = CDatabase::single(t);
        let private = Arc::new(Symbols::new());
        let twin = db.reinterned(&private);
        assert!(Arc::ptr_eq(twin.symbols(), &private));
        assert_eq!(twin.constants(), db.constants(), "same constants, new ids");
        assert_eq!(twin.rel_ids()[0].index(), 0, "private catalog starts dense");
        // The twin's row ids resolve through the private context, not the global one.
        let sym = twin.tables()[0].tuples()[0].terms[0]
            .as_sym()
            .expect("constant term");
        assert_eq!(private.resolve(sym), Some(Constant::str("alice")));
    }

    #[test]
    fn shared_variables_and_unsatisfiable_globals_are_detected() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let a = CTable::codd("R", 1, [vec![Term::Var(x)]]).unwrap();
        let b = CTable::g_table(
            "S",
            1,
            Conjunction::new([Atom::eq(x, 1), Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let db = CDatabase::new([a, b]);
        assert!(db.tables_share_variables());
        assert!(!db.has_satisfiable_globals());
        assert_eq!(db.classify(), TableClass::GTable);
    }

    #[test]
    fn catalog_path_resolver_registers_names_on_first_use() {
        // Regression: above SMALL_SHARD_SCAN the resolver goes through the catalog, and
        // must register this database's names itself — a fresh database whose names no
        // caller has touched yet still resolves its own relations.
        let tables: Vec<CTable> = (0..(SMALL_SHARD_SCAN + 8))
            .map(|i| {
                CTable::codd(
                    format!("resolver-regression-{i:03}"),
                    1,
                    [vec![Term::constant(i as i64)]],
                )
                .unwrap()
            })
            .collect();
        let db = CDatabase::new(tables);
        assert_eq!(
            db.table("resolver-regression-005").map(CTable::name),
            Some("resolver-regression-005")
        );
        assert_eq!(db.table_position("resolver-regression-037"), Some(37));
        assert_eq!(db.table("resolver-regression-999"), None);
    }

    #[test]
    fn coupling_graph_partitions_shards_by_shared_variables() {
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        // R(x) and S(y | y ≠ x) are coupled through x; U(z) and the ground V stand alone.
        let r = CTable::codd("R", 1, [vec![Term::Var(x)]]).unwrap();
        let s = CTable::i_table(
            "S",
            1,
            Conjunction::new([Atom::neq(y, x)]),
            [vec![Term::Var(y)]],
        )
        .unwrap();
        let u = CTable::codd("U", 1, [vec![Term::Var(z)]]).unwrap();
        let v = CTable::codd("V", 1, [vec![Term::constant(9)]]).unwrap();
        let db = CDatabase::new([r, s, u, v]);
        let groups = db.shard_groups();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].members(), &[0, 1], "R and S couple through x");
        assert_eq!(groups[1].members(), &[2]);
        assert_eq!(groups[2].members(), &[3]);
        assert_eq!(db.shard_group_index(), &[0, 0, 1, 2]);
        // Projections carry the member tables and the owner's symbol handle.
        assert_eq!(groups[0].database().schema().len(), 2);
        assert_eq!(groups[1].database().tables()[0].name(), "U");
        assert!(Arc::ptr_eq(groups[0].database().symbols(), db.symbols()));
        // The graph is cached: clones see the identical slice.
        let clone = db.clone();
        assert!(std::ptr::eq(clone.shard_groups().as_ptr(), groups.as_ptr()));
        assert_eq!(db.table_position("U"), Some(2));
        assert_eq!(db.table_position("Nope"), None);
    }

    #[test]
    fn single_group_databases_reuse_the_shard_allocation() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let a = CTable::codd("R", 1, [vec![Term::Var(x)]]).unwrap();
        let b = CTable::e_table("S", 1, [vec![Term::Var(x)]]).unwrap();
        let db = CDatabase::new([a, b]);
        let groups = db.shard_groups();
        assert_eq!(groups.len(), 1, "a shared variable couples everything");
        assert!(Arc::ptr_eq(&groups[0].database().tables, &db.tables));
        assert!(!db.is_decoupled_codd(), "shared variables break the guard");
        // A decoupled Codd database passes the hoisted guard.
        let mut g2 = VarGen::new();
        let (p, q) = (g2.fresh(), g2.fresh());
        let decoupled = CDatabase::new([
            CTable::codd("R", 1, [vec![Term::Var(p)]]).unwrap(),
            CTable::codd("S", 1, [vec![Term::Var(q)]]).unwrap(),
        ]);
        assert!(decoupled.is_decoupled_codd());
        assert_eq!(decoupled.shard_groups().len(), 2);
    }

    #[test]
    fn empty_database_defaults() {
        let db = CDatabase::default();
        assert_eq!(db.table_count(), 0);
        assert_eq!(db.classify(), TableClass::Codd);
        assert!(db.has_satisfiable_globals());
    }
}
