//! C-table databases: the paper's n-vectors of c-tables.

use crate::table::{CTable, TableClass};
use pw_condition::Variable;
use pw_relational::{Constant, Sym, SymbolTable};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An incomplete-information database: a vector of named c-tables.
///
/// Section 2.2 generalises the single-table definitions to n-vectors of c-tables whose
/// variable sets are pairwise disjoint; relationships between tables are established
/// through the conditions.  We do not *enforce* disjointness — sharing a variable between
/// tables is a convenient (and semantically equivalent) shorthand for equating two
/// variables in a global condition — but [`CDatabase::tables_share_variables`] reports it
/// so callers that care (e.g. the classification used in benchmarks) can check.
///
/// # Symbols
///
/// Every database owns a thread-safe handle to the [`SymbolTable`] its interned ids are
/// meaningful in.  Databases built through the ordinary constructors share the global
/// table (matching the context-free `Term` conversions); a session that wants its own id
/// space builds its terms through a private table and attaches it with
/// [`CDatabase::with_symbols`].  The decision engine resolves and interns external
/// constants through this handle — the "all ids resolved at the front door" invariant.
#[derive(Clone, Debug)]
pub struct CDatabase {
    tables: Vec<CTable>,
    symbols: Arc<SymbolTable>,
}

impl Default for CDatabase {
    fn default() -> Self {
        CDatabase::new([])
    }
}

impl PartialEq for CDatabase {
    fn eq(&self, other: &Self) -> bool {
        // Ids from different tables are incomparable, so two databases are equal only
        // when they agree on the table *and* the content.
        Arc::ptr_eq(&self.symbols, &other.symbols) && self.tables == other.tables
    }
}

impl Eq for CDatabase {}

impl Hash for CDatabase {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The symbol-table identity is deliberately left out: hashing must agree with
        // equality, and equal databases share the table by `PartialEq` above.
        self.tables.hash(state);
    }
}

impl CDatabase {
    /// Build a database from tables (interned against the global symbol table).
    pub fn new(tables: impl IntoIterator<Item = CTable>) -> Self {
        CDatabase {
            tables: tables.into_iter().collect(),
            symbols: SymbolTable::global_handle(),
        }
    }

    /// A database with a single table.
    pub fn single(table: CTable) -> Self {
        CDatabase::new([table])
    }

    /// Attach a (typically private) symbol table; the caller guarantees every id in the
    /// tables was issued by it.
    ///
    /// Scope (PR 2): the private handle is honored by the front-door helpers on this type
    /// ([`CDatabase::intern`], [`CDatabase::resolve`], [`CDatabase::constants`]) and by
    /// the engine's fact interning — enough for a service to manage per-session
    /// dictionaries at its boundary.  The decision procedures themselves still resolve
    /// context-free conversions (`Term::from("a")`, `Valuation::get`, `Display`) through
    /// the **global** table, so running a decision over a database whose *row terms* were
    /// interned privately is not yet supported (ids from different tables are
    /// incomparable); see the ROADMAP item on threading the handle through the boundary
    /// paths.  Databases built through the ordinary constructors are always safe.
    pub fn with_symbols(mut self, symbols: Arc<SymbolTable>) -> Self {
        self.symbols = symbols;
        self
    }

    /// The symbol table this database's ids live in.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.symbols
    }

    /// Intern an external constant at the front door.
    pub fn intern(&self, c: &Constant) -> Sym {
        self.symbols.intern(c)
    }

    /// Resolve an id issued by this database's table.
    pub fn resolve(&self, sym: Sym) -> Option<Constant> {
        self.symbols.resolve(sym)
    }

    /// The tables.
    pub fn tables(&self) -> &[CTable] {
        &self.tables
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of rows across tables (the database "size" for data-complexity sweeps).
    pub fn row_count(&self) -> usize {
        self.tables.iter().map(CTable::len).sum()
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&CTable> {
        self.tables.iter().find(|t| t.name() == name)
    }

    /// All variables across tables and conditions.
    pub fn variables(&self) -> BTreeSet<Variable> {
        self.tables.iter().flat_map(CTable::variables).collect()
    }

    /// All constants across tables and conditions — the Δ of Proposition 2.1.
    /// Resolution goes through this database's own symbol-table handle, so the set is
    /// correct for private-table databases too.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.tables
            .iter()
            .flat_map(CTable::syms)
            .map(|s| {
                self.symbols
                    .resolve(s)
                    .expect("row ids were issued by this database's symbol table")
            })
            .collect()
    }

    /// The loosest class among the member tables (a database of one c-table and one
    /// Codd-table must be treated as a c-table database).
    pub fn classify(&self) -> TableClass {
        self.tables
            .iter()
            .map(CTable::classify)
            .max()
            .unwrap_or(TableClass::Codd)
    }

    /// Whether two tables share a variable (see the type-level comment).
    pub fn tables_share_variables(&self) -> bool {
        let mut seen: BTreeSet<Variable> = BTreeSet::new();
        for t in &self.tables {
            let vars = t.variables();
            if vars.iter().any(|v| seen.contains(v)) {
                return true;
            }
            seen.extend(vars);
        }
        false
    }

    /// The schema: `(name, arity)` pairs in table order.
    pub fn schema(&self) -> Vec<(String, usize)> {
        self.tables
            .iter()
            .map(|t| (t.name().to_owned(), t.arity()))
            .collect()
    }

    /// Whether the conjunction of all global conditions is satisfiable.  When it is not,
    /// the represented set of worlds is empty (Section 2.2: "Δ is the empty set iff the
    /// global condition is unsatisfiable") — checkable in PTIME.
    pub fn has_satisfiable_globals(&self) -> bool {
        let mut combined = pw_condition::Conjunction::truth();
        for t in &self.tables {
            combined = combined.and(t.global_condition());
        }
        combined.is_satisfiable()
    }
}

impl FromIterator<CTable> for CDatabase {
    fn from_iter<T: IntoIterator<Item = CTable>>(iter: T) -> Self {
        CDatabase::new(iter)
    }
}

impl fmt::Display for CDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tables {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Atom, Conjunction, Term, VarGen};

    #[test]
    fn accessors_and_classification() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let codd = CTable::codd("R", 1, [vec![Term::Var(x)]]).unwrap();
        let itab = CTable::i_table(
            "S",
            1,
            Conjunction::new([Atom::neq(y, 0)]),
            [vec![Term::Var(y)]],
        )
        .unwrap();
        let db = CDatabase::new([codd, itab]);
        assert_eq!(db.table_count(), 2);
        assert_eq!(db.row_count(), 2);
        assert_eq!(db.classify(), TableClass::ITable);
        assert!(db.table("R").is_some());
        assert!(db.table("Nope").is_none());
        assert_eq!(db.variables().len(), 2);
        assert_eq!(db.constants(), [Constant::int(0)].into());
        assert_eq!(db.schema(), vec![("R".to_owned(), 1), ("S".to_owned(), 1)]);
        assert!(!db.tables_share_variables());
        assert!(db.has_satisfiable_globals());
    }

    #[test]
    fn shared_variables_and_unsatisfiable_globals_are_detected() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let a = CTable::codd("R", 1, [vec![Term::Var(x)]]).unwrap();
        let b = CTable::g_table(
            "S",
            1,
            Conjunction::new([Atom::eq(x, 1), Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let db = CDatabase::new([a, b]);
        assert!(db.tables_share_variables());
        assert!(!db.has_satisfiable_globals());
        assert_eq!(db.classify(), TableClass::GTable);
    }

    #[test]
    fn empty_database_defaults() {
        let db = CDatabase::default();
        assert_eq!(db.table_count(), 0);
        assert_eq!(db.classify(), TableClass::Codd);
        assert!(db.has_satisfiable_globals());
    }
}
