//! # `pw-core` — conditional tables and possible-world semantics
//!
//! This crate is the paper's primary contribution, implemented as a library:
//!
//! * the **table hierarchy** of Section 2.2 — Codd-tables, e-tables, i-tables, g-tables and
//!   c-tables ([`CTable`], [`TableClass`]), assembled into databases ([`CDatabase`]);
//! * **valuations** and the `rep(·)` semantics mapping a c-table database to the set of
//!   possible worlds it represents ([`Valuation`], [`rep`]);
//! * the **c-table algebra** (after Imieliński–Lipski): evaluation of positive existential
//!   queries directly on c-tables, producing a c-table that represents exactly the image of
//!   the represented worlds ([`algebra::eval_ucq`]) — the "representation system" property
//!   that powers the PTIME upper bounds of Theorems 3.2(2) and 5.2(1);
//! * **views**: a query applied to a c-table database, the paper's most general
//!   representation of a set of possible worlds ([`View`]);
//! * the worked examples of **Fig. 1** ([`paper`]), used by the quickstart example and the
//!   figure-reproduction tests.
//!
//! ```
//! use pw_core::{CTable, CTuple, CDatabase};
//! use pw_condition::{Atom, Conjunction, Term, VarGen};
//!
//! // The i-table Tc of Fig. 1:  rows (0,1,x), (y,z,1), (2,0,v) with global x≠0 ∧ y≠z.
//! let mut vars = VarGen::new();
//! let (x, y, z, v) = (vars.named("x"), vars.named("y"), vars.named("z"), vars.named("v"));
//! let table = CTable::new(
//!     "T",
//!     3,
//!     Conjunction::new([Atom::neq(x, 0), Atom::neq(y, z)]),
//!     vec![
//!         CTuple::of_terms([Term::constant(0), Term::constant(1), Term::Var(x)]),
//!         CTuple::of_terms([Term::Var(y), Term::Var(z), Term::constant(1)]),
//!         CTuple::of_terms([Term::constant(2), Term::constant(0), Term::Var(v)]),
//!     ],
//! ).unwrap();
//! let db = CDatabase::new([table]);
//! let worlds = pw_core::rep::PossibleWorlds::new(&db).enumerate(10_000).unwrap();
//! assert!(!worlds.is_empty());
//! ```

#![warn(missing_docs)]

pub mod algebra;
pub mod certificate;
pub mod database;
pub mod delta;
pub mod freeze;
pub mod paper;
pub mod rep;
pub mod simplify;
pub mod table;
pub mod valuation;
pub mod view;
pub mod window;

pub use certificate::{Certificate, PairCert};
pub use database::{CDatabase, ShardGroup};
pub use delta::{DbDelta, Delta, DeltaError, DeltaOp};
pub use freeze::{freeze_database, normalize_database};
pub use simplify::{simplify_database, simplify_table};
pub use table::{CTable, CTuple, TableClass, TableError};
pub use valuation::Valuation;
pub use view::View;
pub use window::{DeltaWindow, WindowKind};
