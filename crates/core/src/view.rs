//! Views: a query program applied to a c-table database.
//!
//! The paper's most general representation of a set of possible worlds is
//! `q(Δ) = { q(I) | I ∈ rep(𝒯) }` for a QPTIME query `q` and a c-table database `𝒯`
//! (Section 2.2, "Definition q(Δ)").  [`View`] packages the pair and offers:
//!
//! * bounded enumeration of the represented output worlds (for cross-validation and
//!   ablation benchmarks), and
//! * conversion to an equivalent c-table database via the c-table algebra when the query is
//!   a vector of (≠-extended) positive existential queries — the polynomial path used by
//!   Theorems 3.2(2) and 5.2(1).

use crate::algebra::{eval_ucq, AlgebraError};
use crate::rep::{EnumerationTooLarge, PossibleWorlds};
use crate::CDatabase;
use pw_query::{Query, QueryClass, QueryDef};
use pw_relational::{Constant, Instance};
use std::collections::BTreeSet;

/// A view: `query` applied to every possible world of `db`.
#[derive(Clone, Debug)]
pub struct View {
    /// The query program (fixed parameter in the data-complexity sense).
    pub query: Query,
    /// The c-table database (the data).
    pub db: CDatabase,
}

impl View {
    /// Build a view.
    pub fn new(query: Query, db: CDatabase) -> Self {
        View { query, db }
    }

    /// The identity view of a database (represents exactly `rep(db)`).
    pub fn identity(db: CDatabase) -> Self {
        View {
            query: Query::identity(db.schema()),
            db,
        }
    }

    /// The class of the underlying query.
    pub fn query_class(&self) -> QueryClass {
        self.query.class()
    }

    /// Enumerate the distinct output worlds `{ q(I) | I ∈ rep(db) }` with a valuation
    /// budget (exponential — for small inputs only).
    pub fn enumerate_worlds(
        &self,
        budget: usize,
        extra_constants: impl IntoIterator<Item = Constant>,
    ) -> Result<BTreeSet<Instance>, EnumerationTooLarge> {
        let worlds = PossibleWorlds::new(&self.db)
            .with_extra_constants(extra_constants)
            .enumerate(budget)?;
        Ok(worlds.into_iter().map(|w| self.query.eval(&w)).collect())
    }

    /// When every output of the query is a union of conjunctive queries, compute an
    /// equivalent c-table database via the c-table algebra (polynomial for a fixed query).
    /// Returns `None` when some output is not UCQ-shaped (identity outputs are converted
    /// by copying the corresponding table).  The converted database stays in the source
    /// database's [`pw_relational::Symbols`] context — ids are never re-interned and a
    /// private-dictionary view converts into a private-dictionary database.
    ///
    /// A query that is the *full identity* of the database converts to a clone of the
    /// database itself — sharing the table allocation and the cached per-database state
    /// (fingerprint, shard map, coupling graph), so repeated identity requests hit the
    /// engine's pointer-compare caches instead of rebuilding copies.
    pub fn to_ctables(&self) -> Option<Result<CDatabase, AlgebraError>> {
        let outputs = self.query.outputs();
        let identity_of_db = outputs.len() == self.db.table_count()
            && outputs
                .iter()
                .zip(self.db.tables())
                .all(|((name, def), table)| {
                    matches!(def, QueryDef::Identity { relation, arity }
                    if name == relation && relation == table.name() && *arity == table.arity())
                });
        if identity_of_db {
            return Some(Ok(self.db.clone()));
        }
        let mut tables = Vec::new();
        for (name, def) in self.query.outputs() {
            match def {
                QueryDef::Ucq(ucq) => match eval_ucq(ucq, &self.db, name) {
                    Ok(t) => tables.push(t),
                    Err(e) => return Some(Err(e)),
                },
                QueryDef::Identity { relation, .. } => match self.db.table(relation) {
                    Some(t) => tables.push(t.renamed(name.clone())),
                    None => return Some(Err(AlgebraError::UnknownRelation(relation.clone()))),
                },
                _ => return None,
            }
        }
        Some(Ok(self.db.with_tables_like(tables)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CTable;
    use pw_condition::{Term, VarGen};
    use pw_query::{qatom, ConjunctiveQuery, FoQuery, Formula, QTerm, Ucq};
    use pw_relational::tup;

    fn simple_db() -> CDatabase {
        let mut g = VarGen::new();
        let x = g.fresh();
        CDatabase::single(
            CTable::codd(
                "T",
                2,
                [
                    vec![Term::constant(1), Term::Var(x)],
                    vec![Term::constant(2), Term::constant(3)],
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn identity_view_enumerates_rep() {
        let db = simple_db();
        let view = View::identity(db);
        assert_eq!(view.query_class(), QueryClass::Identity);
        let worlds = view.enumerate_worlds(1000, []).unwrap();
        // x ranges over {1, 2, 3, ⊥}: four distinct worlds (x=3 collides with nothing else).
        assert_eq!(worlds.len(), 4);
    }

    #[test]
    fn ucq_view_converts_to_ctables_and_agrees_with_enumeration() {
        let db = simple_db();
        let q = Query::single(
            "Q",
            QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
                [QTerm::var("b")],
                [qatom!("T"; "a", "b")],
            ))),
        );
        let view = View::new(q, db.clone());
        // Use a common evaluation domain on both sides: the database constants are passed
        // as extra constants to the converted side (whose own constant set may be smaller),
        // and both sides have the same number of variables, hence the same fresh constants.
        let shared = db.constants();
        let direct = view.enumerate_worlds(1000, shared.clone()).unwrap();
        let ctables = view.to_ctables().unwrap().unwrap();
        let via_algebra = View::identity(ctables)
            .enumerate_worlds(1000, shared)
            .unwrap();
        let project = |s: &BTreeSet<Instance>| -> BTreeSet<pw_relational::Relation> {
            s.iter().map(|i| i.relation_or_empty("Q", 1)).collect()
        };
        assert_eq!(project(&direct), project(&via_algebra));
    }

    #[test]
    fn non_ucq_views_cannot_be_converted() {
        let db = simple_db();
        let q = Query::single(
            "Q",
            QueryDef::Fo(FoQuery::boolean(
                1,
                Formula::exists(
                    ["a"],
                    Formula::atom("T", [QTerm::var("a"), QTerm::var("a")]),
                ),
            )),
        );
        let view = View::new(q, db);
        assert!(view.to_ctables().is_none());
        assert_eq!(view.query_class(), QueryClass::FirstOrder);
        // Still enumerable the slow way.
        let worlds = view.enumerate_worlds(1000, []).unwrap();
        assert!(
            worlds.iter().any(|w| w.contains_fact("Q", &tup![1]))
                || worlds
                    .iter()
                    .all(|w| w.relation_or_empty("Q", 1).is_empty())
        );
    }

    #[test]
    fn identity_outputs_inside_a_query_are_copied() {
        let db = simple_db();
        let q = Query::identity([("T".to_owned(), 2)]);
        let view = View::new(q, db.clone());
        let converted = view.to_ctables().unwrap().unwrap();
        assert_eq!(converted.table("T").unwrap().tuples().len(), 2);
        let missing = Query::identity([("Nope".to_owned(), 1)]);
        assert!(matches!(
            View::new(missing, db).to_ctables(),
            Some(Err(AlgebraError::UnknownRelation(_)))
        ));
    }
}
