//! Experiments E-T53-1 and E-T53-2 (Theorem 5.3): the certainty problem.
//!
//! * `datalog_gtable` — Thm 5.3(1): certainty of transitive-closure facts on random
//!   g-tables via naive evaluation (PTIME).
//! * `conp_hard` — Thm 5.3(2): the 3DNF-tautology reduction to `CERT(1, FO)` on a
//!   Codd-table (coNP-complete).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pw_core::{CDatabase, View};
use pw_decide::{certainty, Budget};
use pw_query::{DatalogProgram, Query, QueryDef};
use pw_reductions::certainty_hardness::taut_cert_fo;
use pw_relational::Instance;
use pw_workloads::{member_instance, random_etable, TableParams};
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

fn bench_datalog_gtable(c: &mut Criterion) {
    let mut group = c.benchmark_group("certainty/datalog_gtable");
    let query = Query::single(
        "TC",
        QueryDef::Datalog(DatalogProgram::transitive_closure("R", "TC")),
    );
    for rows in [32usize, 64, 128] {
        let params = TableParams {
            rows,
            arity: 2,
            constants: rows / 2,
            null_density: 0.3,
            seed: 51,
        };
        let db = CDatabase::single(random_etable("R", &params));
        // Ask about an edge fact that is literally in a member world: certainly reachable
        // facts are a subset of these, so the answer mixes yes and no cases.
        let world = member_instance(&db, &params);
        let mut facts = Instance::new();
        if let Some((_, rel)) = world.iter().next() {
            if let Some(fact) = rel.iter().next() {
                facts.insert_fact("TC", fact.clone()).expect("arity 2");
            }
        }
        let view = View::new(query.clone(), db);
        group.bench_with_input(BenchmarkId::new("rows", rows), &rows, |b, _| {
            b.iter(|| certainty::decide(&view, &facts, Budget::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_hard(c: &mut Criterion) {
    use pw_solvers::{Clause, DnfFormula, Literal};
    let mut group = c.benchmark_group("certainty/fo_reduction");
    // Families of single-literal DNF clauses: `occurrences` is the number of literal
    // occurrences, which is exactly the number of nulls the coNP search quantifies over —
    // the growth from one point to the next is clearly super-polynomial while the absolute
    // times stay benchable.
    for occurrences in [1usize, 2, 3] {
        let formula = DnfFormula::new(
            occurrences,
            (0..occurrences).map(|i| {
                Clause::new([Literal {
                    var: i,
                    positive: i % 2 == 0,
                }])
            }),
        );
        let reduction = taut_cert_fo(&formula);
        group.bench_with_input(
            BenchmarkId::new("occurrences", occurrences),
            &occurrences,
            |b, _| {
                b.iter(|| {
                    certainty::decide(&reduction.view, &reduction.facts, Budget(1_000_000_000))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_datalog_gtable(c);
    bench_hard(c);
}

criterion_group! {
    name = certainty_benches;
    config = configure();
    targets = benches
}
criterion_main!(certainty_benches);
