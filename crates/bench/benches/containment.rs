//! Experiments E-F2, E-T41, E-T42-1, E-T42-4 (Fig. 2 and Theorems 4.1 / 4.2): containment.
//!
//! * `freeze_into_tables` — Thm 4.1(3): g-table ⊆ Codd-table via freezing + matching
//!   (the PTIME region of Fig. 2).
//! * `freeze_into_etables` — Thm 4.1(2): g-table ⊆ e-table (one NP membership call).
//! * `ablation_forall_exists` — ablation A-3: the Π₂ᵖ procedure of Prop. 2.1(1) on the same
//!   easy inputs, showing what the freeze technique buys.
//! * `pi2_hard` — Thm 4.2(1): the ∀∃3CNF reduction into table ⊆ i-table (the Π₂ᵖ cell).
//! * `conp_hard` — Thm 4.2(4): the 3DNF-tautology reduction into view ⊆ table.
//! * `view_cells` — Thm 4.2(2,3,5): the ∀∃3CNF reductions into the remaining Π₂ᵖ cells of
//!   Fig. 2 (table ⊆ view, c-table ⊆ e-table, view ⊆ e-table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pw_core::{CDatabase, View};
use pw_decide::{containment, Budget};
use pw_reductions::containment_hardness::{ae3cnf_cont_itable, dnf_taut_cont_view_table};
use pw_reductions::containment_views::{
    ae3cnf_cont_ctable_into_etable, ae3cnf_cont_view_into_etable, ae3cnf_cont_views_of_tables,
};
use pw_workloads::{
    random_3dnf, random_codd_table, random_etable, random_forall_exists, random_gtable, TableParams,
};
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

fn bench_freeze(c: &mut Criterion) {
    let mut group = c.benchmark_group("containment/freeze");
    for rows in [32usize, 128, 512] {
        let left_params = TableParams::with_rows(rows, 31);
        let right_params = TableParams::with_rows(rows, 32);
        let left = CDatabase::single(random_gtable("R", &left_params));
        let right_codd = CDatabase::single(random_codd_table("R", &right_params));
        group.bench_with_input(BenchmarkId::new("into_tables", rows), &rows, |b, _| {
            b.iter(|| containment::freeze(&left, &right_codd, Budget::default()).unwrap())
        });
        let right_etable = CDatabase::single(random_etable("R", &right_params));
        group.bench_with_input(BenchmarkId::new("into_etables", rows), &rows, |b, _| {
            b.iter(|| containment::freeze(&left, &right_etable, Budget(1_000_000_000)).unwrap())
        });
    }
    group.finish();
}

fn bench_ablation_forall_exists(c: &mut Criterion) {
    let mut group = c.benchmark_group("containment/ablation_forall_exists");
    for rows in [2usize, 4, 6] {
        let left_params = TableParams {
            rows,
            arity: 2,
            constants: 4,
            null_density: 0.4,
            seed: 33,
        };
        let right_params = TableParams {
            seed: 34,
            ..left_params
        };
        let left = View::identity(CDatabase::single(random_codd_table("R", &left_params)));
        let right = View::identity(CDatabase::single(random_codd_table("R", &right_params)));
        group.bench_with_input(BenchmarkId::new("rows", rows), &rows, |b, _| {
            b.iter(|| containment::forall_exists(&left, &right, Budget(1_000_000_000)).unwrap())
        });
    }
    group.finish();
}

fn bench_hard(c: &mut Criterion) {
    let mut group = c.benchmark_group("containment/hard_reductions");
    for universals in [1usize, 2, 3] {
        let instance = random_forall_exists(universals, 2, 4, 5);
        let reduction = ae3cnf_cont_itable(&instance);
        group.bench_with_input(
            BenchmarkId::new("ae3cnf_itable", universals),
            &universals,
            |b, _| {
                b.iter(|| {
                    containment::decide(&reduction.left, &reduction.right, Budget(1_000_000_000))
                        .unwrap()
                })
            },
        );
    }
    for clauses in [3usize, 5, 7] {
        let formula = random_3dnf(clauses, clauses, 6);
        let reduction = dnf_taut_cont_view_table(&formula);
        group.bench_with_input(
            BenchmarkId::new("dnf_view_table", clauses),
            &clauses,
            |b, _| {
                b.iter(|| {
                    containment::decide(&reduction.left, &reduction.right, Budget(1_000_000_000))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// Theorem 4.2(2,3,5): the remaining Π₂ᵖ containment cells of Fig. 2, reached through views
/// and e-tables.  The ∀∃3CNF family is the same as for `ae3cnf_itable`; growth with the
/// number of universal variables is the exponential signature of the Π₂ᵖ cells.
fn bench_view_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("containment/view_cells");
    for universals in [1usize, 2] {
        let instance = random_forall_exists(universals, 1, 3, 7);
        let table_vs_view = ae3cnf_cont_views_of_tables(&instance);
        group.bench_with_input(
            BenchmarkId::new("t42_2_table_in_view", universals),
            &universals,
            |b, _| {
                b.iter(|| {
                    containment::decide(
                        &table_vs_view.left,
                        &table_vs_view.right,
                        Budget(1_000_000_000),
                    )
                    .unwrap()
                })
            },
        );
        let ctable_vs_etable = ae3cnf_cont_ctable_into_etable(&instance);
        group.bench_with_input(
            BenchmarkId::new("t42_3_ctable_in_etable", universals),
            &universals,
            |b, _| {
                b.iter(|| {
                    containment::decide(
                        &ctable_vs_etable.left,
                        &ctable_vs_etable.right,
                        Budget(1_000_000_000),
                    )
                    .unwrap()
                })
            },
        );
        let view_vs_etable = ae3cnf_cont_view_into_etable(&instance);
        group.bench_with_input(
            BenchmarkId::new("t42_5_view_in_etable", universals),
            &universals,
            |b, _| {
                b.iter(|| {
                    containment::decide(
                        &view_vs_etable.left,
                        &view_vs_etable.right,
                        Budget(1_000_000_000),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_freeze(c);
    bench_ablation_forall_exists(c);
    bench_hard(c);
    bench_view_cells(c);
}

criterion_group! {
    name = containment_benches;
    config = configure();
    targets = benches
}
criterion_main!(containment_benches);
