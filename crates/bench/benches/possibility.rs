//! Experiments E-T51-1 … E-T52-3 (Theorems 5.1 and 5.2): the possibility problem.
//!
//! * `codd_matching` — Thm 5.1(1): unbounded possibility on Codd-tables (PTIME matching).
//! * `bounded_ctable_algebra` — Thm 5.2(1): bounded possibility for a fixed positive
//!   existential query on c-tables via the c-table algebra, swept over the table size.
//! * `ablation_enumeration` — ablation A-2: deciding the same bounded questions by
//!   exhaustive world enumeration (the Prop. 2.1 fallback), to show what the algebra buys.
//! * `hard reductions` — Thm 5.1(2,3): 3CNF-SAT → unbounded possibility on e-/i-tables;
//!   Thm 5.2(2,3): 3DNF-non-tautology → `POSS(1, FO)` and 3CNF-SAT → `POSS(1, DATALOG)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pw_core::{CDatabase, View};
use pw_decide::{possibility, Budget};
use pw_query::{qatom, ConjunctiveQuery, QTerm, Query, QueryDef, Ucq};
use pw_reductions::possibility_hardness::{
    nontaut_poss_fo, sat_poss_datalog, sat_poss_etable, sat_poss_itable,
};
use pw_relational::Instance;
use pw_workloads::{member_instance, random_3cnf, random_codd_table, random_ctable, TableParams};
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

/// A two-fact pattern drawn from a guaranteed member world of the database.
fn small_pattern(db: &CDatabase, params: &TableParams) -> Instance {
    let world = member_instance(db, params);
    let mut out = Instance::new();
    for (name, rel) in world.iter() {
        for fact in rel.iter().take(2) {
            out.insert_fact(name.clone(), fact.clone())
                .expect("same arity");
        }
    }
    out
}

fn bench_codd_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("possibility/codd_matching");
    for rows in [64usize, 256, 1024] {
        let params = TableParams::with_rows(rows, 41);
        let db = CDatabase::single(random_codd_table("R", &params));
        let facts = member_instance(&db, &params);
        group.bench_with_input(BenchmarkId::new("unbounded", rows), &rows, |b, _| {
            b.iter(|| possibility::codd_matching(&db, &facts))
        });
    }
    group.finish();
}

fn bench_bounded_algebra(c: &mut Criterion) {
    let mut group = c.benchmark_group("possibility/bounded_ctable_algebra");
    let query = Query::single(
        "Q",
        QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("a"), QTerm::var("c")],
            [qatom!("R"; "a", "b", "c")],
        ))),
    );
    for rows in [32usize, 128, 512] {
        let params = TableParams::with_rows(rows, 42);
        let db = CDatabase::single(random_ctable("R", &params));
        let facts = {
            // Project the two-fact pattern through the query shape (first and third column).
            let pattern = small_pattern(&db, &params);
            let mut out = Instance::new();
            for (_, rel) in pattern.iter() {
                for fact in rel.iter() {
                    out.insert_fact(
                        "Q",
                        pw_relational::Tuple::new([fact[0].clone(), fact[2].clone()]),
                    )
                    .expect("arity 2");
                }
            }
            out
        };
        let view = View::new(query.clone(), db);
        group.bench_with_input(BenchmarkId::new("rows", rows), &rows, |b, _| {
            b.iter(|| possibility::decide(&view, &facts, Budget(1_000_000_000)).unwrap())
        });
    }
    group.finish();
}

fn bench_ablation_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("possibility/ablation_world_enumeration");
    for rows in [2usize, 4, 6] {
        let params = TableParams {
            rows,
            arity: 2,
            constants: 4,
            null_density: 0.5,
            seed: 43,
        };
        let db = CDatabase::single(random_codd_table("R", &params));
        let facts = small_pattern(&db, &params);
        let view = View::identity(db);
        group.bench_with_input(BenchmarkId::new("rows", rows), &rows, |b, _| {
            b.iter(|| possibility::by_enumeration(&view, &facts, Budget(1_000_000_000)).unwrap())
        });
    }
    group.finish();
}

fn bench_hard(c: &mut Criterion) {
    let mut group = c.benchmark_group("possibility/hard_reductions");
    for vars in [4usize, 6, 8] {
        // Keep the benchmark on satisfiable ("yes") instances so its running time reflects
        // witness search rather than unbounded exhaustion; the unsatisfiable side is
        // exercised by the unit tests and the `experiments` binary.
        let formula = (0u64..)
            .map(|s| random_3cnf(vars, vars * 3, 8 + s))
            .find(|f| f.solve().is_sat())
            .expect("a satisfiable formula exists");
        let e = sat_poss_etable(&formula);
        group.bench_with_input(BenchmarkId::new("sat_etable", vars), &vars, |b, _| {
            b.iter(|| possibility::decide(&e.view, &e.facts, Budget(1_000_000_000)).unwrap())
        });
        let i = sat_poss_itable(&formula);
        group.bench_with_input(BenchmarkId::new("sat_itable", vars), &vars, |b, _| {
            b.iter(|| possibility::decide(&i.view, &i.facts, Budget(1_000_000_000)).unwrap())
        });
    }
    for occurrences in [1usize, 2, 3] {
        use pw_solvers::{Clause, DnfFormula, Literal};
        let formula = DnfFormula::new(
            occurrences,
            (0..occurrences).map(|i| {
                Clause::new([Literal {
                    var: i,
                    positive: true,
                }])
            }),
        );
        let reduction = nontaut_poss_fo(&formula);
        group.bench_with_input(
            BenchmarkId::new("nontaut_fo_occurrences", occurrences),
            &occurrences,
            |b, _| {
                b.iter(|| {
                    possibility::decide(&reduction.view, &reduction.facts, Budget(1_000_000_000))
                        .unwrap()
                })
            },
        );
    }
    for vars in [2usize, 3] {
        let formula = random_3cnf(vars, 3, 10);
        let reduction = sat_poss_datalog(&formula);
        group.bench_with_input(BenchmarkId::new("sat_datalog", vars), &vars, |b, _| {
            b.iter(|| {
                possibility::decide(&reduction.view, &reduction.facts, Budget(1_000_000_000))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_codd_matching(c);
    bench_bounded_algebra(c);
    bench_ablation_enumeration(c);
    bench_hard(c);
}

criterion_group! {
    name = possibility_benches;
    config = configure();
    targets = benches
}
criterion_main!(possibility_benches);
