//! Experiments E-T31-1 … E-T31-4 and E-F3 (Theorem 3.1, Fig. 3): the membership problem.
//!
//! * `codd_matching` — the PTIME matching algorithm on random Codd-tables (Thm 3.1(1)),
//!   swept over the row count.
//! * `ablation_backtracking_on_codd` — ablation A-1: the generic NP backtracking on the
//!   same easy inputs, to show what the matching algorithm buys.
//! * `etable_hard` / `itable_hard` / `view_hard` — the 3-colourability reductions of
//!   Thm 3.1(2,3,4) on planted-colourable graphs of growing size (NP-complete cells).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pw_core::CDatabase;
use pw_decide::{membership, Budget};
use pw_reductions::membership_hardness::{three_col_etable, three_col_itable, three_col_view};
use pw_workloads::{member_instance, planted_three_colorable, random_codd_table, TableParams};
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

fn bench_codd_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership/codd_matching");
    for rows in [64usize, 256, 1024] {
        let params = TableParams::with_rows(rows, 11);
        let db = CDatabase::single(random_codd_table("R", &params));
        let yes = member_instance(&db, &params);
        group.bench_with_input(BenchmarkId::new("member", rows), &rows, |b, _| {
            b.iter(|| membership::codd_matching(&db, &yes))
        });
    }
    group.finish();
}

fn bench_ablation_backtracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership/ablation_backtracking_on_codd");
    // The generic NP search degrades very quickly on inputs the matching algorithm handles
    // in microseconds — that is the point of the ablation — so the sweep stays small.
    for rows in [8usize, 16, 32] {
        let params = TableParams::with_rows(rows, 11);
        let db = CDatabase::single(random_codd_table("R", &params));
        let yes = member_instance(&db, &params);
        group.bench_with_input(BenchmarkId::new("member", rows), &rows, |b, _| {
            b.iter(|| membership::backtracking(&db, &yes, Budget(1_000_000_000)).unwrap())
        });
    }
    group.finish();
}

fn bench_hard_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership/three_colorability_reductions");
    for vertices in [5usize, 7, 9] {
        let graph = planted_three_colorable(vertices, 0.7, 3);
        let e = three_col_etable(&graph);
        group.bench_with_input(BenchmarkId::new("etable", vertices), &vertices, |b, _| {
            b.iter(|| membership::decide(&e.view.db, &e.instance, Budget(1_000_000_000)).unwrap())
        });
        let i = three_col_itable(&graph);
        group.bench_with_input(BenchmarkId::new("itable", vertices), &vertices, |b, _| {
            b.iter(|| membership::decide(&i.view.db, &i.instance, Budget(1_000_000_000)).unwrap())
        });
    }
    for vertices in [4usize, 5] {
        let graph = planted_three_colorable(vertices, 0.7, 3);
        let v = three_col_view(&graph);
        group.bench_with_input(BenchmarkId::new("view", vertices), &vertices, |b, _| {
            b.iter(|| {
                membership::view_membership(&v.view, &v.instance, Budget(1_000_000_000)).unwrap()
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_codd_matching(c);
    bench_ablation_backtracking(c);
    bench_hard_families(c);
}

criterion_group! {
    name = membership_benches;
    config = configure();
    targets = benches
}
criterion_main!(membership_benches);
