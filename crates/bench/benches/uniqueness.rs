//! Experiments E-T32-1 … E-T32-4 (Theorem 3.2): the uniqueness problem.
//!
//! * `gtable` — the PTIME normalisation algorithm of Thm 3.2(1) on random g-tables.
//! * `pos_exist_etable` — the PTIME c-table-algebra algorithm of Thm 3.2(2) on random
//!   e-tables with a fixed projection query.
//! * `ctable_hard` — the 3DNF-tautology reduction of Thm 3.2(3) (coNP-complete).
//! * `view_hard` — the non-3-colourability reduction of Thm 3.2(4) (coNP-complete).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pw_core::{CDatabase, View};
use pw_decide::{uniqueness, Budget};
use pw_query::{qatom, ConjunctiveQuery, QTerm, Query, QueryDef, Ucq};
use pw_reductions::uniqueness_hardness::{dnf_taut_uniq_ctable, non3col_uniq_view};
use pw_workloads::{
    member_instance, planted_three_colorable, random_3dnf, random_etable, random_gtable,
    TableParams,
};
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

fn bench_gtable(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniqueness/gtable_normalization");
    for rows in [64usize, 256, 1024] {
        let params = TableParams::with_rows(rows, 21);
        let db = CDatabase::single(random_gtable("R", &params));
        let instance = member_instance(&db, &params);
        let view = View::identity(db);
        group.bench_with_input(BenchmarkId::new("rows", rows), &rows, |b, _| {
            b.iter(|| uniqueness::decide(&view, &instance, Budget::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_pos_exist_etable(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniqueness/pos_exist_etable");
    let query = Query::single(
        "Q",
        QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("a")],
            [qatom!("R"; "a", "b", "c")],
        ))),
    );
    for rows in [32usize, 128, 512] {
        let params = TableParams::with_rows(rows, 22);
        let db = CDatabase::single(random_etable("R", &params));
        let view = View::new(query.clone(), db);
        let instance = view
            .enumerate_worlds(1, [])
            .ok()
            .and_then(|w| w.into_iter().next())
            .unwrap_or_default();
        group.bench_with_input(BenchmarkId::new("rows", rows), &rows, |b, _| {
            b.iter(|| uniqueness::decide(&view, &instance, Budget::default()))
        });
    }
    group.finish();
}

fn bench_hard(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniqueness/hard_reductions");
    for clauses in [4usize, 6, 8] {
        let formula = random_3dnf(clauses, clauses, 7);
        let reduction = dnf_taut_uniq_ctable(&formula);
        group.bench_with_input(BenchmarkId::new("dnf_ctable", clauses), &clauses, |b, _| {
            b.iter(|| {
                uniqueness::decide(&reduction.view, &reduction.instance, Budget(1_000_000_000))
                    .unwrap()
            })
        });
    }
    for vertices in [4usize, 5, 6] {
        let graph = planted_three_colorable(vertices, 0.7, 9);
        let reduction = non3col_uniq_view(&graph);
        group.bench_with_input(
            BenchmarkId::new("non3col_view", vertices),
            &vertices,
            |b, _| {
                b.iter(|| {
                    uniqueness::decide(&reduction.view, &reduction.instance, Budget(1_000_000_000))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_gtable(c);
    bench_pos_exist_etable(c);
    bench_hard(c);
}

criterion_group! {
    name = uniqueness_benches;
    config = configure();
    targets = benches
}
criterion_main!(uniqueness_benches);
