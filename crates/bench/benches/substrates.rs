//! Substrate ablations (A-4 and supporting micro-benchmarks): the building blocks whose
//! cost underlies every decision procedure.
//!
//! * Datalog naive vs. semi-naive fixpoint (ablation A-4).
//! * Hopcroft–Karp matching on the bipartite graphs produced by the membership algorithm.
//! * Conjunction satisfiability (the PTIME condition check of Section 2.2).
//! * The c-table algebra itself (the polynomial conversion behind Theorems 3.2(2)/5.2(1)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pw_condition::{Atom, Conjunction, VarGen};
use pw_core::{algebra::eval_ucq, CDatabase};
use pw_query::datalog::FixpointStrategy;
use pw_query::{qatom, ConjunctiveQuery, DatalogProgram, QTerm, Ucq};
use pw_relational::{Instance, Relation, Tuple};
use pw_solvers::matching::{maximum_matching, BipartiteGraph};
use pw_workloads::{random_ctable, TableParams};
use std::time::Duration;

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

fn chain_instance(n: i64) -> Instance {
    let mut r = Relation::empty(2);
    for i in 0..n {
        r.insert(Tuple::new([i.into(), (i + 1).into()])).unwrap();
    }
    Instance::single("E", r)
}

fn bench_datalog(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/datalog_fixpoint");
    let program = DatalogProgram::transitive_closure("E", "TC");
    for n in [16i64, 32, 64] {
        let instance = chain_instance(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| program.eval_with(&instance, FixpointStrategy::Naive))
        });
        group.bench_with_input(BenchmarkId::new("semi_naive", n), &n, |b, _| {
            b.iter(|| program.eval_with(&instance, FixpointStrategy::SemiNaive))
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/bipartite_matching");
    for n in [64usize, 256, 1024] {
        // A dense-ish random-free bipartite graph: left i connects to right (i+k) mod n for
        // a handful of offsets, which has a perfect matching.
        let mut g = BipartiteGraph::new(n, n);
        for i in 0..n {
            for k in 0..4 {
                g.add_edge(i, (i + k * 7) % n);
            }
        }
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &n, |b, _| {
            b.iter(|| maximum_matching(&g).cardinality())
        });
    }
    group.finish();
}

fn bench_conditions(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/condition_satisfiability");
    for atoms in [64usize, 256, 1024] {
        let mut vars = VarGen::new();
        let xs: Vec<_> = (0..atoms + 1).map(|_| vars.fresh()).collect();
        let mut conj = Conjunction::truth();
        for i in 0..atoms {
            if i % 3 == 0 {
                conj.push(Atom::neq(xs[i], xs[i + 1]));
            } else {
                conj.push(Atom::eq(xs[i], xs[i + 1]));
            }
        }
        group.bench_with_input(BenchmarkId::new("atoms", atoms), &atoms, |b, _| {
            b.iter(|| conj.is_satisfiable())
        });
    }
    group.finish();
}

fn bench_ctable_algebra(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/ctable_algebra");
    let query = Ucq::single(ConjunctiveQuery::new(
        [QTerm::var("a"), QTerm::var("c")],
        [qatom!("R"; "a", "b", "c")],
    ));
    for rows in [64usize, 256, 1024] {
        let params = TableParams::with_rows(rows, 61);
        let db = CDatabase::single(random_ctable("R", &params));
        group.bench_with_input(BenchmarkId::new("project", rows), &rows, |b, _| {
            b.iter(|| eval_ucq(&query, &db, "Q").unwrap().len())
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_datalog(c);
    bench_matching(c);
    bench_conditions(c);
    bench_ctable_algebra(c);
}

criterion_group! {
    name = substrate_benches;
    config = configure();
    targets = benches
}
criterion_main!(substrate_benches);
