//! `bench-pr5` — the incremental re-decision benchmark: *decide, mutate, re-decide* on
//! mutation-stream workloads, comparing the delta-aware path against a from-scratch
//! decide, emitted as machine-readable JSON.
//!
//! `bench-pr4` proved that a decision over a decoupled multi-relation database fans out
//! across its shard groups; this harness proves the serving-side consequence: after a
//! **single-group delta** ([`pw_workloads::mutations`]), a [`pw_decide::Session`]
//! re-decision replays the memoized verdicts of every untouched group and re-searches
//! only the dirty one, while the from-scratch path (a fresh `decide_all_with` per
//! mutation, exactly what a service without the delta layer would run) rebuilds the
//! coupling graph, the base stores and every group's search from nothing.
//!
//! Each measured row covers one (problem, workload) pair and one *mutation stream*: the
//! same K deltas are applied along two identical database chains; the `fresh` mode
//! decides each mutated database from scratch, the `incremental` mode re-decides through
//! one long-lived session.  Answers must be bit-identical between the modes — the report
//! records `answers_match` per row, and the `incremental_guard` table (consumed by
//! `tools/check_bench.rs` in CI) enforces both the match and a per-row speedup floor.
//!
//! Usage:
//!   cargo run --release --bin bench-pr5 -- [--smoke] [--sweeps N] [--out FILE]
//!
//! `--smoke` shrinks the stream to a few relations and deltas so CI can check the
//! harness and the JSON shape in seconds (the smoke floor only asserts "not slower than
//! from-scratch"; the committed full run carries the real ≥10× floor).

use pw_core::{CDatabase, View};
use pw_decide::batch::{decide_all_with, DecisionRequest};
use pw_decide::{Budget, DecisionOutcome, EngineConfig, Session};
use pw_relational::{Constant, Instance, Relation, Tuple};
use pw_workloads::{decoupled_multirelation, member_instance, stable_delta_stream, TableParams};
use std::time::Instant;

/// One measured row of the report.
struct Measurement {
    problem: &'static str,
    workload: String,
    mode: &'static str,
    /// Total wall time across the K re-decisions of the stream.
    wall_ms: f64,
    /// Aggregated answers across all deltas, e.g. `"true:8, false:4"`.
    answers: Vec<String>,
}

/// One incremental-guard row: the fresh/incremental pair plus the CI floor.
struct GuardRow {
    problem: &'static str,
    workload: String,
    fresh_ms: f64,
    redecide_ms: f64,
    floor: f64,
    answers_match: bool,
}

/// The fixed request instances of one workload (standing queries of the stream).
struct Workload {
    label: String,
    /// The base database: `relations − 1` light mutable head shards plus one heavy
    /// *stable* tail shard (the accumulated knowledge the deltas never touch).
    base: CDatabase,
    /// The answer-stable single-group deltas, all targeting head shards.
    deltas: Vec<pw_core::Delta>,
    member: Instance,
    tail_non_member: Instance,
    certain_facts: Instance,
    pattern: Instance,
    poisoned_pattern: Instance,
}

/// The poison fact: unproducible (constants far outside the generator's pool) and
/// sorting *after* every pool-valued fact, so fact-ordered searches (the covering
/// search) reach it only after exhausting the genuine facts' alternatives.  Content
/// poisoning keeps the fact count at or below the row count — a padded relation would
/// be rejected by the per-group searches' counting prune in O(1), proving nothing.
fn poison_fact() -> Tuple {
    Tuple::new([Constant::Int(1001), Constant::Int(1002)])
}

/// Replace one fact of the relation with the poison fact (same cardinality).
fn poison_one(rel: &Relation) -> Relation {
    let mut facts: Vec<Tuple> = rel.iter().cloned().collect();
    facts.pop();
    facts.push(poison_fact());
    Relation::from_tuples(rel.arity(), facts)
}

/// The heavy tail shard: a c-table whose first half is repeated-null rows `(x, x)`
/// guarded by a two-atom local condition on a private switch variable, followed by
/// ground rows.  The shape is chosen so that
///
/// * the poison fact `(1001, 1002)` is unproducible by *every* row — a `(x, x)` row
///   only yields equal pairs, a ground row only its own pool constants — so the "no"
///   refutations genuinely exhaust the group's assignment tree instead of being
///   disposed of by a counting prune or absorbed by a free null row;
/// * the ground rows (whose facts are the certain answers) come *after* the null rows,
///   so a certainty refutation must branch through every null row's four reasons
///   (two positions, two condition atoms) before its own row kills the path;
/// * the local conditions make the database a c-table, so every problem dispatches
///   through the per-shard searches rather than the polynomial special cases.
fn build_tail(name: &str, rows: usize, constants: i64) -> pw_core::CTable {
    use pw_condition::{Atom, Conjunction, Term, VarGen};
    let mut vars = VarGen::new();
    let table_rows: Vec<pw_core::CTuple> = (0..rows)
        .map(|i| {
            if i < rows / 2 {
                let x = vars.fresh();
                let y = vars.fresh();
                pw_core::CTuple::with_condition(
                    [Term::Var(x), Term::Var(x)],
                    Conjunction::new([Atom::neq(y, -1), Atom::neq(y, -2)]),
                )
            } else {
                let c = (i as i64) % constants;
                pw_core::CTuple::of_terms([Term::constant(c), Term::constant((c + 1) % constants)])
            }
        })
        .collect();
    pw_core::CTable::new(name, 2, Conjunction::truth(), table_rows).expect("well-formed c-table")
}

/// Build the serving-shaped base database: `relations − 1` light head shards (the
/// mutable working set) plus one heavier conditional tail shard (the accumulated stable
/// knowledge the deltas never touch — the QuaQue/Vadalog setting the delta layer
/// targets).
fn build_base(relations: usize, head: &TableParams, tail_rows: usize) -> CDatabase {
    let head_db = decoupled_multirelation(relations - 1, head);
    let tail_name = format!("R{:02}", relations - 1);
    let tables: Vec<pw_core::CTable> = head_db
        .tables()
        .iter()
        .cloned()
        .chain([build_tail(&tail_name, tail_rows, head.constants as i64)])
        .collect();
    CDatabase::new(tables)
}

fn build_workload(
    label: &str,
    relations: usize,
    head_rows: usize,
    tail_rows: usize,
    deltas: usize,
    seed: u64,
) -> Workload {
    // Moderate null density: each relation's rows stay compatible with several facts, so
    // every group's sub-search has genuine branching for the fresh path to re-pay.
    let head = TableParams {
        rows: head_rows,
        arity: 2,
        constants: 3,
        null_density: 0.5,
        seed,
    };
    let base = build_base(relations, &head, tail_rows);
    let mutable: Vec<usize> = (0..relations - 1).collect();
    let deltas = stable_delta_stream(&base, &mutable, seed, deltas);
    let member = member_instance(&base, &head);
    let last = base
        .tables()
        .last()
        .expect("non-empty workload")
        .name()
        .to_owned();

    // Certain facts: the outputs of ground unconditional rows — true in every world, so
    // certainty must *exhaustively* refute "some world misses one" in every group, with
    // the heavy tail dominating.
    let mut certain = Instance::new();
    for table in base.tables() {
        let cap = if table.name() == last { usize::MAX } else { 2 };
        let mut rel = Relation::empty(table.arity());
        for row in table.tuples().iter().filter(|r| r.has_trivial_condition()) {
            if let Some(fact) = row
                .terms
                .iter()
                .map(|t| t.as_sym().map(|s| s.constant()))
                .collect::<Option<Vec<Constant>>>()
            {
                rel.insert(Tuple::new(fact)).expect("arity preserved");
                if rel.len() >= cap {
                    break;
                }
            }
        }
        if !rel.is_empty() {
            certain.insert_relation(table.name().to_owned(), rel);
        }
    }

    let mut tail_non_member = Instance::new();
    let mut pattern = Instance::new();
    let mut poisoned = Instance::new();
    for (name, rel) in member.iter() {
        // Membership/uniqueness "no" case: the member instance with one *tail* fact
        // replaced by the unproducible poison — a non-member whose refutation must
        // exhaust the heavy tail group's row↔fact assignments.
        let m = if *name == last {
            poison_one(rel)
        } else {
            rel.clone()
        };
        tail_non_member.insert_relation(name.clone(), m);

        // Possibility pattern: two facts per head relation, more from the tail (the
        // covering search's alternatives multiply across the tail facts *before* the
        // poison, which sorts last).
        let take = if *name == last { tail_rows / 2 + 1 } else { 2 };
        let mut p = Relation::empty(rel.arity());
        for fact in rel.iter().take(take) {
            p.insert(fact.clone()).expect("arity preserved");
        }
        pattern.insert_relation(name.clone(), p.clone());
        if *name == last {
            p.insert(poison_fact()).expect("arity 2");
        }
        poisoned.insert_relation(name.clone(), p);
    }

    Workload {
        label: format!("{label}-{relations}"),
        base,
        deltas,
        member,
        tail_non_member,
        certain_facts: certain,
        pattern,
        poisoned_pattern: poisoned,
    }
}

/// The NP-complete problems share one workload family; containment gets a smaller one —
/// its condition-coupled groups fall back to the Π₂ᵖ canonical-valuation enumeration,
/// which only completes on few-row groups (the same split `bench-pr4` makes).
fn build_workloads(smoke: bool) -> Vec<(Vec<&'static str>, Workload)> {
    let search_problems = vec!["membership", "possibility", "certainty", "uniqueness"];
    let (sizes, deltas): (&[usize], usize) = if smoke { (&[6], 3) } else { (&[8, 12], 6) };
    let (head_rows, tail_rows) = if smoke { (4, 8) } else { (5, 10) };
    let mut out: Vec<(Vec<&'static str>, Workload)> = sizes
        .iter()
        .map(|&n| {
            (
                search_problems.clone(),
                build_workload("mutation", n, head_rows, tail_rows, deltas, 2026),
            )
        })
        .collect();
    let cont_sizes: &[usize] = if smoke { &[6] } else { &[8, 12] };
    let cont_tail = 5;
    out.extend(cont_sizes.iter().map(|&n| {
        (
            vec!["containment"],
            build_workload("mutation-small", n, 2, cont_tail, deltas, 2027),
        )
    }));
    out
}

/// The standing requests of one problem, phrased against `db`.
fn requests_for(problem: &str, w: &Workload, db: &CDatabase) -> Vec<DecisionRequest> {
    let view = View::identity(db.clone());
    match problem {
        "membership" => vec![
            DecisionRequest::Membership {
                view: view.clone(),
                instance: w.member.clone(),
            },
            DecisionRequest::Membership {
                view,
                instance: w.tail_non_member.clone(),
            },
        ],
        "possibility" => vec![
            DecisionRequest::Possibility {
                view: view.clone(),
                facts: w.pattern.clone(),
            },
            DecisionRequest::Possibility {
                view,
                facts: w.poisoned_pattern.clone(),
            },
        ],
        "certainty" => vec![DecisionRequest::Certainty {
            view,
            facts: w.certain_facts.clone(),
        }],
        "uniqueness" => vec![DecisionRequest::Uniqueness {
            view,
            instance: w.tail_non_member.clone(),
        }],
        "containment" => vec![DecisionRequest::Containment {
            left: view.clone(),
            right: view,
        }],
        other => unreachable!("unknown problem {other}"),
    }
}

fn aggregate_answers(outcomes: &[DecisionOutcome], tally: &mut (usize, usize, usize)) {
    for o in outcomes {
        match o.answer {
            Ok(true) => tally.0 += 1,
            Ok(false) => tally.1 += 1,
            Err(_) => tally.2 += 1,
        }
    }
}

fn render_answers((yes, no, budget): (usize, usize, usize)) -> Vec<String> {
    let mut out = Vec::new();
    if yes > 0 {
        out.push(format!("true:{yes}"));
    }
    if no > 0 {
        out.push(format!("false:{no}"));
    }
    if budget > 0 {
        out.push(format!("budget:{budget}"));
    }
    out
}

struct StreamResult {
    fresh_ms: f64,
    redecide_ms: f64,
    fresh_answers: (usize, usize, usize),
    incr_answers: (usize, usize, usize),
    answers_match: bool,
}

/// Run one (problem, workload) pair down the mutation stream in both modes.
fn run_stream(problem: &'static str, w: &Workload, cfg: &EngineConfig) -> StreamResult {
    // Fresh mode: apply each delta, then decide the mutated database from scratch —
    // engine, coupling graph, base stores and every group search rebuilt per mutation.
    let mut fresh_ms = 0.0;
    let mut fresh_answers = (0, 0, 0);
    let mut fresh_outcomes: Vec<Vec<DecisionOutcome>> = Vec::new();
    let mut cur = w.base.clone();
    for delta in &w.deltas {
        let (next, _) = cur.apply(delta).expect("stream deltas apply in sequence");
        let requests = requests_for(problem, w, &next);
        let start = Instant::now();
        let outcomes = decide_all_with(&requests, cfg);
        fresh_ms += start.elapsed().as_secs_f64() * 1e3;
        aggregate_answers(&outcomes, &mut fresh_answers);
        fresh_outcomes.push(outcomes);
        cur = next;
    }

    // Incremental mode: one long-lived session; the base decide (untimed) populates the
    // per-group memo, then every delta re-decides through `redecide_all`, whose timing
    // includes the delta application itself.
    let session = Session::sized(cfg, requests_for(problem, w, &w.base).len());
    let mut cur = w.base.clone();
    let _ = session.decide_all(&requests_for(problem, w, &cur));
    let mut redecide_ms = 0.0;
    let mut incr_answers = (0, 0, 0);
    let mut answers_match = true;
    for (i, delta) in w.deltas.iter().enumerate() {
        let requests = requests_for(problem, w, &cur);
        let start = Instant::now();
        let redecision = session
            .redecide_all(&cur, delta, &requests)
            .expect("stream deltas apply in sequence");
        redecide_ms += start.elapsed().as_secs_f64() * 1e3;
        aggregate_answers(&redecision.outcomes, &mut incr_answers);
        let fresh = &fresh_outcomes[i];
        if redecision.outcomes.len() != fresh.len()
            || redecision
                .outcomes
                .iter()
                .zip(fresh)
                .any(|(a, b)| a.answer != b.answer || a.strategy != b.strategy)
        {
            answers_match = false;
        }
        cur = redecision.db;
    }

    StreamResult {
        fresh_ms,
        redecide_ms,
        fresh_answers,
        incr_answers,
        answers_match,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(
    measurements: &[Measurement],
    guard: &[GuardRow],
    iters: usize,
    smoke: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"BENCH_PR5\",\n");
    out.push_str("  \"description\": \"decide/mutate/re-decide on mutation-stream workloads: from-scratch decide vs delta-aware session re-decision (see crates/bench/src/bin/bench_pr5.rs)\",\n");
    out.push_str("  \"threads\": 1,\n");
    out.push_str(&format!("  \"iterations\": {iters},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let answers: Vec<String> = m
            .answers
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect();
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \"wall_ms\": {:.3}, \"answers\": [{}]}}{}\n",
            m.problem,
            json_escape(&m.workload),
            m.mode,
            m.wall_ms,
            answers.join(", "),
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // The CI guard table: answers must match between the modes, and each row's
    // fresh/redecide speedup must clear its embedded floor.
    out.push_str("  \"incremental_guard\": [\n");
    for (i, g) in guard.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"fresh_ms\": {:.3}, \"redecide_ms\": {:.3}, \"speedup\": {:.2}, \"floor\": {}, \"answers_match\": {}}}{}\n",
            g.problem,
            json_escape(&g.workload),
            g.fresh_ms,
            g.redecide_ms,
            g.fresh_ms / g.redecide_ms.max(1e-6),
            g.floor,
            g.answers_match,
            if i + 1 == guard.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // The standard committed-report table (`check-bench` floor 0.9): the from-scratch
    // path is this report's embedded baseline, the incremental path the current mode.
    out.push_str("  \"speedup_vs_baseline\": [\n");
    for (i, g) in guard.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"incremental\", \"baseline_ms\": {:.3}, \"current_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            g.problem,
            json_escape(&g.workload),
            g.fresh_ms,
            g.redecide_ms,
            g.fresh_ms / g.redecide_ms.max(1e-6),
            if i + 1 == guard.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR5.json".to_owned());
    let sweeps: usize = flag_value("--sweeps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);
    // Single-threaded searches: the comparison is about *work avoided*, not about
    // parallel speedup, and sequential timings are the stable ones.  Ample budget so
    // both modes complete rather than exhaust.
    let cfg = EngineConfig::sequential(Budget(20_000_000));
    // The committed full run enforces the acceptance floor; the smoke run (tiny stream,
    // cold CI machine) only asserts the incremental path is not slower than scratch.
    let floor = if smoke { 0.9 } else { 10.0 };

    let workloads = build_workloads(smoke);
    let mut measurements: Vec<Measurement> = Vec::new();
    let mut guard: Vec<GuardRow> = Vec::new();
    for (problems, w) in &workloads {
        for &problem in problems {
            let mut best: Option<StreamResult> = None;
            for sweep in 0..sweeps {
                let r = run_stream(problem, w, &cfg);
                eprintln!(
                    "sweep {}/{sweeps}: {:<12} {:<12} fresh {:>9.3} ms  redecide {:>9.3} ms  ({:.1}x, match: {})",
                    sweep + 1,
                    problem,
                    w.label,
                    r.fresh_ms,
                    r.redecide_ms,
                    r.fresh_ms / r.redecide_ms.max(1e-6),
                    r.answers_match,
                );
                // Keep the sweep with the *least favourable* speedup, so the committed
                // numbers are the conservative ones — except that a mismatch always
                // dominates: once any sweep observed diverging answers, it must stay
                // visible in the report and can never be papered over by a later
                // matching sweep.
                let keep = match &best {
                    None => true,
                    Some(b) => match (r.answers_match, b.answers_match) {
                        (false, true) => true,
                        (true, false) => false,
                        _ => {
                            r.fresh_ms / r.redecide_ms.max(1e-6)
                                < b.fresh_ms / b.redecide_ms.max(1e-6)
                        }
                    },
                };
                if keep {
                    best = Some(r);
                }
            }
            let r = best.expect("at least one sweep");
            measurements.push(Measurement {
                problem,
                workload: w.label.clone(),
                mode: "fresh",
                wall_ms: r.fresh_ms,
                answers: render_answers(r.fresh_answers),
            });
            measurements.push(Measurement {
                problem,
                workload: w.label.clone(),
                mode: "incremental",
                wall_ms: r.redecide_ms,
                answers: render_answers(r.incr_answers),
            });
            guard.push(GuardRow {
                problem,
                workload: w.label.clone(),
                fresh_ms: r.fresh_ms,
                redecide_ms: r.redecide_ms,
                floor,
                answers_match: r.answers_match,
            });
        }
    }

    let json = render_json(&measurements, &guard, sweeps, smoke);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
