//! `bench-pr7` — the serving-hardening overhead benchmark: the same batch of
//! decisions with the resilience layer disarmed and fully armed, emitted as
//! machine-readable JSON.
//!
//! PR 7 gives the engine wall-clock deadlines, cooperative cancellation, per-request
//! panic isolation, a bounded decision memo, and deterministic fault injection.  The
//! design promise is that all of it is (close to) free when it does not fire: the
//! deadline/cancel/fault hooks run on an amortized slow path (once every 1024 budget
//! ticks), the memo capacity check is one comparison per insert, and a `FaultPlan`
//! that is absent costs one `Option` test.  This harness prices exactly that — each
//! result row times `decide_all_with` over one (problem, workload) pair twice, once
//! under the plain configuration and once under a fully *armed* configuration (a far
//! wall-clock deadline, a live-but-never-cancelled token, and a bounded-but-ample
//! memo capacity, so every hardened code path executes without ever firing) — and
//! emits a `robustness_guard` table (consumed by `tools/check_bench.rs` in CI)
//! aggregated over the suite, embedding the allowed ceiling: the armed session may
//! cost at most `ceiling ×` the plain session on the mixed batch.  The per-request
//! `catch_unwind` boundary is unconditional (isolation must not be opt-in), so both
//! sides of the comparison carry it; the guarded delta is the armed limit checks.
//!
//! The harness also audits what it measures: per row it asserts the armed session's
//! answers and strategies are bit-identical to the plain session's — the
//! `answers_match` flag in the table records this, and CI fails on
//! `answers_match: false` just as it fails on an overhead above the ceiling.
//!
//! Usage:
//!   cargo run --release --bin bench-pr7 -- [--smoke] [--sweeps N] [--out FILE]
//!
//! `--smoke` shrinks the tables and iteration counts so CI can check the harness and
//! the JSON shape in seconds; micro-second decides on a cold CI machine are noisy, so
//! the smoke ceiling is relaxed (`3.0`) while the committed full run carries the real
//! `1.05` acceptance ceiling.

use pw_core::{CDatabase, View};
use pw_decide::batch::{decide_all_with, DecisionRequest};
use pw_decide::{Budget, CancelToken, DecisionOutcome, EngineConfig};
use pw_relational::{Constant, Instance, Relation, Tuple};
use pw_workloads::{
    decoupled_multirelation, member_instance, non_member_instance, random_codd_table,
    random_ctable, TableParams,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured row of the report.
struct Measurement {
    problem: &'static str,
    workload: &'static str,
    mode: &'static str,
    /// Mean wall time of one `decide_all_with` over the row's requests.
    wall_ms: f64,
    /// Aggregated answers, e.g. `"true:1, false:1, exhausted:0"`.
    answers: Vec<String>,
}

/// One robustness-overhead row: the plain/armed pair plus the CI ceiling.
///
/// One enforced row, aggregated over the whole suite: the amortized limit check is a
/// per-tick property of the hot loop, so the guarded claim is "an armed session costs
/// at most `ceiling ×` a plain session across the mixed workload suite".  Per-problem
/// ratios stay visible in `results` — a micro-second polynomial decide can show a
/// noisy individual ratio while adding only additive nanoseconds; the wall-clock
/// ceiling is meaningful over batches where search work exists, which is what the
/// suite row measures.
struct OverheadRow {
    problem: &'static str,
    workload: &'static str,
    plain_ms: f64,
    hardened_ms: f64,
    ceiling: f64,
    /// Armed answers and strategies are bit-identical to the plain ones.
    answers_match: bool,
}

/// One benchmark database together with derived request ingredients.
struct Workload {
    label: &'static str,
    db: CDatabase,
    member: Instance,
    non_member: Instance,
    /// A small sub-instance of `member` (a possibility pattern).
    pattern: Instance,
    /// `pattern` with one unproducible fact added.
    poisoned: Instance,
}

fn build_workload(label: &'static str, db: CDatabase, params: &TableParams) -> Workload {
    let member = member_instance(&db, params);
    let non_member = non_member_instance(&db, params);
    let mut pattern = Instance::new();
    let mut poisoned = Instance::new();
    let mut poison_pending = true;
    for (name, rel) in member.iter() {
        let mut p = Relation::empty(rel.arity());
        for fact in rel.iter().take(2) {
            p.insert(fact.clone()).expect("arity preserved");
        }
        pattern.insert_relation(name.clone(), p.clone());
        if poison_pending {
            // The poison fact: constants far outside the generator's pool, so no
            // ground row produces it and only null-valued components can absorb it.
            let fact = Tuple::new((0..p.arity()).map(|i| Constant::Int(9_000 + i as i64)));
            p.insert(fact).expect("arity preserved");
            poison_pending = false;
        }
        poisoned.insert_relation(name.clone(), p);
    }
    Workload {
        label,
        db,
        member,
        non_member,
        pattern,
        poisoned,
    }
}

fn build_workloads(smoke: bool) -> Vec<Workload> {
    // Same per-class sizes as bench-pr6: Codd decides are polynomial, so the table is
    // large; c-table decides are NP/coNP searches that dominate at small sizes.
    let codd = TableParams {
        rows: if smoke { 8 } else { 256 },
        arity: 2,
        constants: 4,
        null_density: 0.4,
        seed: 2077,
    };
    let ctable = TableParams {
        rows: if smoke { 8 } else { 10 },
        ..codd
    };
    let shard = TableParams {
        rows: if smoke { 4 } else { 8 },
        ..codd
    };
    vec![
        build_workload(
            "codd",
            CDatabase::single(random_codd_table("R", &codd)),
            &codd,
        ),
        build_workload(
            "ctable",
            CDatabase::single(random_ctable("R", &ctable)),
            &ctable,
        ),
        build_workload(
            "sharded",
            decoupled_multirelation(if smoke { 3 } else { 4 }, &shard),
            &shard,
        ),
    ]
}

/// The batch of one (problem, workload) pair: a yes-leaning and a no-leaning request
/// wherever the workload offers both.
fn requests_for(problem: &str, w: &Workload) -> Vec<DecisionRequest> {
    let view = View::identity(w.db.clone());
    match problem {
        "membership" => vec![
            DecisionRequest::Membership {
                view: view.clone(),
                instance: w.member.clone(),
            },
            DecisionRequest::Membership {
                view,
                instance: w.non_member.clone(),
            },
        ],
        "possibility" => vec![
            DecisionRequest::Possibility {
                view: view.clone(),
                facts: w.pattern.clone(),
            },
            DecisionRequest::Possibility {
                view,
                facts: w.poisoned.clone(),
            },
        ],
        "certainty" => vec![
            DecisionRequest::Certainty {
                view: view.clone(),
                facts: Instance::new(),
            },
            DecisionRequest::Certainty {
                view,
                facts: w.pattern.clone(),
            },
        ],
        "uniqueness" => vec![DecisionRequest::Uniqueness {
            view,
            instance: w.member.clone(),
        }],
        "containment" => vec![DecisionRequest::Containment {
            left: view.clone(),
            right: view,
        }],
        other => unreachable!("unknown problem {other}"),
    }
}

/// The armed configuration: every hardened code path executes, none ever fires.  The
/// two-hour deadline polls the wall clock on every amortized check without plausibly
/// expiring; the token is live but never cancelled; the memo is bounded far above the
/// suite's working set, so the capacity check runs on every insert and never evicts.
fn arm(cfg: &EngineConfig) -> EngineConfig {
    cfg.clone()
        .with_deadline(Duration::from_secs(7_200))
        .with_cancel(Arc::new(CancelToken::new()))
        .with_memo_capacity(1 << 20)
}

struct PairResult {
    plain_ms: f64,
    hardened_ms: f64,
    plain_answers: Vec<DecisionOutcome>,
    answers_match: bool,
}

/// Time one batch `iters` times and return (mean ms per batch, last outcomes).
fn time_batch(
    requests: &[DecisionRequest],
    cfg: &EngineConfig,
    iters: usize,
) -> (f64, Vec<DecisionOutcome>) {
    let start = Instant::now();
    let mut last = Vec::new();
    for _ in 0..iters {
        last = decide_all_with(requests, cfg);
    }
    (start.elapsed().as_secs_f64() * 1e3 / iters as f64, last)
}

fn run_pair(
    problem: &'static str,
    w: &Workload,
    cfg: &EngineConfig,
    max_iters: usize,
) -> PairResult {
    let requests = requests_for(problem, w);
    let hardened_cfg = arm(cfg);
    // Calibrate the repeat count off one plain batch: micro-second batches repeat up
    // to `max_iters` times for a stable mean, while a batch that already costs tens
    // of milliseconds is its own stable measurement and repeats only a few times.
    let calibration = Instant::now();
    decide_all_with(&requests, cfg);
    let batch_ms = calibration.elapsed().as_secs_f64() * 1e3;
    let max_iters = max_iters.max(1);
    let iters = ((20.0 / batch_ms.max(1e-6)) as usize).clamp(3.min(max_iters), max_iters);
    let (plain_ms, plain) = time_batch(&requests, cfg, iters);
    let (hardened_ms, hardened) = time_batch(&requests, &hardened_cfg, iters);

    let answers_match = plain.len() == hardened.len()
        && plain
            .iter()
            .zip(&hardened)
            .all(|(p, h)| p.answer == h.answer && p.strategy == h.strategy);
    PairResult {
        plain_ms,
        hardened_ms,
        plain_answers: plain,
        answers_match,
    }
}

fn render_answers(outcomes: &[DecisionOutcome]) -> Vec<String> {
    let (mut t, mut f, mut x) = (0usize, 0usize, 0usize);
    for o in outcomes {
        match o.answer {
            Ok(true) => t += 1,
            Ok(false) => f += 1,
            Err(_) => x += 1,
        }
    }
    vec![format!("true:{t}, false:{f}, exhausted:{x}")]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(
    measurements: &[Measurement],
    overhead: &[OverheadRow],
    iters: usize,
    smoke: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"BENCH_PR7\",\n");
    out.push_str("  \"description\": \"serving-hardening overhead: decide_all with the resilience layer disarmed vs fully armed (deadline + cancel token + bounded memo, none firing), answers audited bit-identical (see crates/bench/src/bin/bench_pr7.rs)\",\n");
    out.push_str("  \"threads\": 1,\n");
    out.push_str(&format!("  \"iterations\": {iters},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let answers: Vec<String> = m
            .answers
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect();
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \"wall_ms\": {:.3}, \"answers\": [{}]}}{}\n",
            m.problem,
            m.workload,
            m.mode,
            m.wall_ms,
            answers.join(", "),
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // The CI guard table: armed ≤ ceiling × plain, and the armed run's answers and
    // strategies were audited bit-identical to the plain run's.
    out.push_str("  \"robustness_guard\": [\n");
    for (i, r) in overhead.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"plain_ms\": {:.3}, \"hardened_ms\": {:.3}, \"overhead\": {:.2}, \"ceiling\": {}, \"answers_match\": {}}}{}\n",
            r.problem,
            r.workload,
            r.plain_ms,
            r.hardened_ms,
            r.hardened_ms / r.plain_ms.max(1e-6),
            r.ceiling,
            r.answers_match,
            if i + 1 == overhead.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // The standard committed-report table (`check-bench` floor 0.9): the ceiling-scaled
    // plain run is the budget, the armed run must fit inside it — speedup ≥ 1.0 exactly
    // when the overhead row clears its ceiling.
    out.push_str("  \"speedup_vs_baseline\": [\n");
    for (i, r) in overhead.iter().enumerate() {
        let budget_ms = r.plain_ms * r.ceiling;
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"hardened\", \"baseline_ms\": {:.3}, \"current_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.problem,
            r.workload,
            budget_ms,
            r.hardened_ms,
            budget_ms / r.hardened_ms.max(1e-6),
            if i + 1 == overhead.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR7.json".to_owned());
    let sweeps: usize = flag_value("--sweeps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 5 })
        .max(1);
    let iters = if smoke { 2 } else { 40 };
    // Single-threaded decides: the comparison is about the armed limit checks riding
    // on an identical search, and sequential timings are the stable ones.
    let cfg = EngineConfig::sequential(Budget(20_000_000));
    let ceiling = if smoke { 3.0 } else { 1.05 };

    let problems = [
        "membership",
        "possibility",
        "certainty",
        "uniqueness",
        "containment",
    ];
    let workloads = build_workloads(smoke);
    let mut measurements: Vec<Measurement> = Vec::new();
    let mut overhead: Vec<OverheadRow> = Vec::new();
    let (mut sum_plain, mut sum_hardened) = (0.0f64, 0.0f64);
    let mut suite_matches = true;
    for w in &workloads {
        for problem in problems {
            // Median overhead across the sweeps: the armed delta is the signal, and a
            // single descheduled sample must not decide the committed number in either
            // direction — but an answer mismatch in *any* sweep always dominates.
            let mut results: Vec<PairResult> = (0..sweeps)
                .map(|sweep| {
                    let r = run_pair(problem, w, &cfg, iters);
                    eprintln!(
                        "sweep {}/{sweeps}: {:<12} {:<8} plain {:>9.3} ms  hardened {:>9.3} ms  ({:.2}x, answers_match: {})",
                        sweep + 1,
                        problem,
                        w.label,
                        r.plain_ms,
                        r.hardened_ms,
                        r.hardened_ms / r.plain_ms.max(1e-6),
                        r.answers_match,
                    );
                    r
                })
                .collect();
            let all_match = results.iter().all(|r| r.answers_match);
            results.sort_by(|a, b| {
                let oa = a.hardened_ms / a.plain_ms.max(1e-6);
                let ob = b.hardened_ms / b.plain_ms.max(1e-6);
                oa.total_cmp(&ob)
            });
            let r = results.swap_remove(results.len() / 2);
            measurements.push(Measurement {
                problem,
                workload: w.label,
                mode: "plain",
                wall_ms: r.plain_ms,
                answers: render_answers(&r.plain_answers),
            });
            measurements.push(Measurement {
                problem,
                workload: w.label,
                mode: "hardened",
                wall_ms: r.hardened_ms,
                answers: render_answers(&r.plain_answers),
            });
            sum_plain += r.plain_ms;
            sum_hardened += r.hardened_ms;
            suite_matches &= all_match;
        }
    }
    overhead.push(OverheadRow {
        problem: "all",
        workload: "suite",
        plain_ms: sum_plain,
        hardened_ms: sum_hardened,
        ceiling,
        answers_match: suite_matches,
    });

    let json = render_json(&measurements, &overhead, iters, smoke);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
