//! `bench-pr2` — the interned-symbol benchmark: per-problem wall time on the standard
//! string-heavy workloads, sequential and parallel, emitted as machine-readable JSON.
//!
//! Every decision procedure bottoms out in term comparisons; this harness measures them
//! where they hurt — constants are strings with a long shared prefix (see
//! `pw_workloads::strings`) so a structural compare walks most of the string.  The same
//! binary is run before and after a hot-path change; `--baseline <file>` embeds the prior
//! run's numbers and reports per-row speedups, which is how `BENCH_PR2.json` records the
//! before/after of the interning PR.
//!
//! Usage:
//!   cargo run --release --bin bench-pr2 -- [--smoke] [--out FILE] [--baseline FILE]
//!
//! `--smoke` shrinks the workloads to a few rows and one iteration so CI can check the
//! harness and the JSON shape in seconds.

use pw_core::{CDatabase, View};
use pw_decide::batch::{decide_all_with, DecisionRequest};
use pw_decide::{Budget, EngineConfig};
use pw_relational::{Instance, Relation};
use pw_workloads::{
    member_instance, non_member_instance, random_codd_table, random_ctable, random_etable,
    random_gtable, random_itable, stringify_database, stringify_instance, TableParams,
};
use std::time::Instant;

/// One measured row of the report.
struct Measurement {
    problem: &'static str,
    workload: String,
    mode: &'static str,
    wall_ms: f64,
    answers: Vec<String>,
}

/// A workload: a database plus the instances the requests are phrased against.
struct Workload {
    label: String,
    db: CDatabase,
    member: Instance,
    non_member: Instance,
}

type TableBuilder = Box<dyn Fn(&TableParams) -> pw_core::CTable>;

fn build_workloads(smoke: bool) -> Vec<Workload> {
    let rows = |full: usize| if smoke { 6 } else { full };
    let mut out = Vec::new();
    let specs: Vec<(&str, usize, TableBuilder)> = vec![
        ("codd", rows(64), Box::new(|p| random_codd_table("T", p))),
        ("e-table", rows(48), Box::new(|p| random_etable("T", p))),
        ("i-table", rows(48), Box::new(|p| random_itable("T", p))),
        ("g-table", rows(48), Box::new(|p| random_gtable("T", p))),
        ("c-table", rows(40), Box::new(|p| random_ctable("T", p))),
    ];
    for (name, n, build) in specs {
        let params = TableParams::with_rows(n, 0xC0FFEE ^ n as u64);
        let db = CDatabase::single(build(&params));
        let member = member_instance(&db, &params);
        let non_member = non_member_instance(&db, &params);
        out.push(Workload {
            label: format!("{name}-{n}"),
            db: stringify_database(&db),
            member: stringify_instance(&member),
            non_member: stringify_instance(&non_member),
        });
    }
    out
}

/// The first few facts of a member instance — a "possible pattern" for POSS.
fn pattern_of(member: &Instance, keep: usize) -> Instance {
    let mut out = Instance::new();
    for (name, rel) in member.iter() {
        let mut small = Relation::empty(rel.arity());
        for fact in rel.iter().take(keep) {
            small.insert(fact.clone()).expect("arity preserved");
        }
        out.insert_relation(name.clone(), small);
    }
    out
}

/// Per-problem request lists against one workload.
fn requests_for(problem: &str, w: &Workload) -> Vec<DecisionRequest> {
    let view = View::identity(w.db.clone());
    match problem {
        "membership" => vec![
            DecisionRequest::Membership {
                view: view.clone(),
                instance: w.member.clone(),
            },
            DecisionRequest::Membership {
                view,
                instance: w.non_member.clone(),
            },
        ],
        "possibility" => vec![
            DecisionRequest::Possibility {
                view: view.clone(),
                facts: pattern_of(&w.member, 4),
            },
            DecisionRequest::Possibility {
                view,
                facts: pattern_of(&w.non_member, 4),
            },
        ],
        "certainty" => vec![
            DecisionRequest::Certainty {
                view: view.clone(),
                facts: pattern_of(&w.member, 2),
            },
            DecisionRequest::Certainty {
                view,
                facts: pattern_of(&w.non_member, 2),
            },
        ],
        "uniqueness" => vec![DecisionRequest::Uniqueness {
            view,
            instance: w.member.clone(),
        }],
        "containment" => vec![DecisionRequest::Containment {
            left: view.clone(),
            right: view,
        }],
        other => unreachable!("unknown problem {other}"),
    }
}

const PROBLEMS: [&str; 5] = [
    "membership",
    "possibility",
    "certainty",
    "uniqueness",
    "containment",
];

fn measure(
    problem: &'static str,
    workload: &Workload,
    mode: &'static str,
    cfg: &EngineConfig,
    iters: usize,
) -> Measurement {
    let requests = requests_for(problem, workload);
    // Median-of-iters wall time; answers from the last run (they are deterministic).
    let mut times = Vec::with_capacity(iters);
    let mut answers = Vec::new();
    for _ in 0..iters {
        let start = Instant::now();
        let outcomes = decide_all_with(&requests, cfg);
        times.push(start.elapsed().as_secs_f64() * 1e3);
        answers = outcomes
            .iter()
            .map(|o| match o.answer {
                Ok(b) => b.to_string(),
                Err(_) => "budget".to_owned(),
            })
            .collect();
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    Measurement {
        problem,
        workload: workload.label.clone(),
        mode,
        wall_ms: times[times.len() / 2],
        answers,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(
    measurements: &[Measurement],
    threads: usize,
    iters: usize,
    smoke: bool,
    baseline_raw: Option<&str>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"BENCH_PR2\",\n");
    out.push_str("  \"description\": \"per-problem wall time on string-heavy standard workloads (see crates/bench/src/bin/bench_pr2.rs)\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"iterations\": {iters},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let answers: Vec<String> = m
            .answers
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect();
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \"wall_ms\": {:.3}, \"answers\": [{}]}}{}\n",
            m.problem,
            json_escape(&m.workload),
            m.mode,
            m.wall_ms,
            answers.join(", "),
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]");
    if let Some(raw) = baseline_raw {
        out.push_str(",\n  \"baseline\": ");
        // Embed the baseline run verbatim (it is a JSON document produced by this binary),
        // indenting it to keep the composite readable.
        let indented: Vec<String> = raw.trim().lines().map(|l| format!("  {l}")).collect();
        out.push_str(indented.join("\n").trim_start());
        // Per-row speedup table: baseline wall time / current wall time.
        let base = parse_results(raw);
        out.push_str(",\n  \"speedup_vs_baseline\": [\n");
        let rows: Vec<String> = measurements
            .iter()
            .filter_map(|m| {
                let key = (m.problem.to_owned(), m.workload.clone(), m.mode.to_owned());
                base.iter().find(|(k, _)| *k == key).map(|(_, base_ms)| {
                    format!(
                        "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \"baseline_ms\": {:.3}, \"current_ms\": {:.3}, \"speedup\": {:.2}}}",
                        m.problem,
                        json_escape(&m.workload),
                        m.mode,
                        base_ms,
                        m.wall_ms,
                        base_ms / m.wall_ms.max(1e-6),
                    )
                })
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// Minimal extraction of `(problem, workload, mode) -> wall_ms` rows from a prior run of
/// this binary (full JSON parsing is overkill for a document we ourselves emit).
fn parse_results(raw: &str) -> Vec<((String, String, String), f64)> {
    let mut out = Vec::new();
    for line in raw.lines() {
        let line = line.trim();
        if !line.starts_with("{\"problem\":") {
            continue;
        }
        let field = |name: &str| -> Option<String> {
            let tag = format!("\"{name}\": \"");
            let start = line.find(&tag)? + tag.len();
            let end = line[start..].find('"')? + start;
            Some(line[start..end].to_owned())
        };
        let wall = || -> Option<f64> {
            let tag = "\"wall_ms\": ";
            let start = line.find(tag)? + tag.len();
            let end = line[start..].find(',')? + start;
            line[start..end].trim().parse().ok()
        };
        if let (Some(p), Some(w), Some(m), Some(ms)) =
            (field("problem"), field("workload"), field("mode"), wall())
        {
            out.push(((p, w, m), ms));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR2.json".to_owned());
    let baseline_raw = flag_value("--baseline").map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"))
    });

    let iters = if smoke { 1 } else { 5 };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let budget = Budget(2_000_000);
    let sequential = EngineConfig::sequential(budget);
    let parallel = EngineConfig::with_threads(threads, budget);

    let workloads = build_workloads(smoke);
    let mut measurements = Vec::new();
    for w in &workloads {
        for problem in PROBLEMS {
            for (mode, cfg) in [("sequential", &sequential), ("parallel", &parallel)] {
                let m = measure(problem, w, mode, cfg, iters);
                eprintln!(
                    "{:<12} {:<12} {:<10} {:>10.3} ms  [{}]",
                    m.problem,
                    m.workload,
                    m.mode,
                    m.wall_ms,
                    m.answers.join(", ")
                );
                measurements.push(m);
            }
        }
    }

    let json = render_json(
        &measurements,
        threads,
        iters,
        smoke,
        baseline_raw.as_deref(),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
