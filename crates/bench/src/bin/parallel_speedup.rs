//! Measure the parallel decision engine against the sequential baseline on the worst-case
//! exponential paths — the scenario the ROADMAP's "as fast as the hardware allows" goal is
//! about.  Run with `cargo run --release --bin parallel-speedup`.
//!
//! Three scenarios, each printed as a threads → wall-clock table with the speedup over the
//! single-threaded engine:
//!
//! 1. **exhaustive refutation** — a possibility (row-cover) question with *no* witness, so
//!    every configuration explores the same complete tree: the cleanest measure of the
//!    frontier + work-queue substrate;
//! 2. **certainty forest** — `CERT(*, -)` over a conditional table, whose per-fact
//!    complement searches are independent subtrees (parallelism across *and* within
//!    facts);
//! 3. **batch throughput** — the same database asked many possibility questions through
//!    `pw_decide::batch::decide_all_with`, the front door that amortizes base-store
//!    construction across requests.

use pw_bench::compact;
use pw_condition::{Atom, Conjunction, Term, VarGen, Variable};
use pw_core::{CDatabase, CTable, CTuple, View};
use pw_decide::batch::{decide_all_with, DecisionRequest};
use pw_decide::engine::{Engine, EngineConfig};
use pw_decide::{certainty, possibility, Budget};
use pw_relational::{Instance, Relation, Tuple};
use std::time::{Duration, Instant};

const BUDGET: Budget = Budget(1_000_000_000);

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut counts = vec![1, 2];
    let mut t = 4;
    while t <= max {
        counts.push(t);
        t *= 2;
    }
    counts.dedup();
    counts
}

fn report(label: &str, rows: &[(usize, Duration, bool)]) {
    println!("-- {label}");
    let baseline = rows[0].1;
    for (threads, elapsed, answer) in rows {
        println!(
            "   threads = {threads:>2}   {:>10}   speedup ×{:<5.2} answer = {answer}",
            compact(*elapsed),
            baseline.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
        );
    }
    println!();
}

/// Scenario 1: an i-table with one more fact than rows — no witness, so the whole
/// assignment tree (≈ rows! · e nodes) is explored by every configuration.
fn exhaustive_refutation(rows: usize) {
    let mut vars = VarGen::new();
    let xs: Vec<Variable> = (0..rows).map(|_| vars.fresh()).collect();
    let table = CTable::i_table(
        "R",
        1,
        Conjunction::new([Atom::neq(xs[0], xs[1])]),
        xs.iter().map(|&x| vec![Term::Var(x)]),
    )
    .unwrap();
    let view = View::identity(CDatabase::single(table));
    let mut rel = Relation::empty(1);
    for i in 0..=rows as i64 {
        rel.insert(Tuple::new([i.into()])).unwrap();
    }
    let facts = Instance::single("R", rel);

    let measurements: Vec<(usize, Duration, bool)> = thread_counts()
        .into_iter()
        .map(|threads| {
            let engine = Engine::new(EngineConfig::with_threads(threads, BUDGET));
            let start = Instant::now();
            let answer = possibility::decide_with(&view, &facts, &engine)
                .answer
                .unwrap();
            (threads, start.elapsed(), answer)
        })
        .collect();
    report(
        &format!(
            "POSS row-cover refutation ({rows} rows, {} facts, no witness)",
            rows + 1
        ),
        &measurements,
    );
}

/// Scenario 2: `CERT(*, -)` where every fact *is* certain, so every per-fact complement
/// search must refute its entire reason tree: per fact, a forced row (pinned by the global
/// condition) kills every branch, but only after the search has explored all reason
/// combinations of the chaff rows before it.  The per-fact searches are independent
/// subtrees of one forest.
fn certainty_forest(chaff: usize, facts_n: usize) {
    let mut vars = VarGen::new();
    let switch = vars.fresh();
    let mut rows = Vec::new();
    // Chaff: free rows whose "why is this row missing the fact" choices all stay
    // consistent — two positions plus one local-condition atom, three branches each.
    for _ in 0..chaff {
        let (y, z) = (vars.fresh(), vars.fresh());
        rows.push(CTuple::with_condition(
            [Term::Var(y), Term::Var(z)],
            Conjunction::new([Atom::neq(switch, 999)]),
        ));
    }
    // One forced row per fact: the global condition pins x_i = c_i, so the row always
    // produces (c_i, c_i) and no reason branch survives — but the search discovers that
    // only at the bottom of the chaff tree.
    let mut global = Conjunction::truth();
    for i in 0..facts_n as i64 {
        let x = vars.fresh();
        global.push(Atom::eq(x, i));
        rows.push(CTuple::of_terms([Term::Var(x), Term::Var(x)]));
    }
    let table = CTable::new("R", 2, global, rows).unwrap();
    let view = View::identity(CDatabase::single(table));
    let mut rel = Relation::empty(2);
    for i in 0..facts_n as i64 {
        rel.insert(Tuple::new([i.into(), i.into()])).unwrap();
    }
    let facts = Instance::single("R", rel);

    let measurements: Vec<(usize, Duration, bool)> = thread_counts()
        .into_iter()
        .map(|threads| {
            let engine = Engine::new(EngineConfig::with_threads(threads, BUDGET));
            let start = Instant::now();
            let answer = certainty::decide_with(&view, &facts, &engine)
                .answer
                .unwrap();
            (threads, start.elapsed(), answer)
        })
        .collect();
    report(
        &format!("CERT(*, -) forest ({facts_n} certain facts, {chaff} chaff rows each)"),
        &measurements,
    );
}

/// Scenario 3: one database, many possibility questions, through the batched front door.
fn batch_throughput(rows: usize, requests_n: usize) {
    let mut vars = VarGen::new();
    let xs: Vec<Variable> = (0..rows).map(|_| vars.fresh()).collect();
    let table = CTable::i_table(
        "R",
        1,
        Conjunction::new([Atom::neq(xs[0], xs[1])]),
        xs.iter().map(|&x| vec![Term::Var(x)]),
    )
    .unwrap();
    let view = View::identity(CDatabase::single(table));
    let requests: Vec<DecisionRequest> = (0..requests_n)
        .map(|k| {
            let mut rel = Relation::empty(1);
            // Refutation instances again (rows + 1 facts), shifted per request so the
            // stores differ while the database (and its base store) is shared.
            for i in 0..=rows as i64 {
                rel.insert(Tuple::new([(i + k as i64).into()])).unwrap();
            }
            DecisionRequest::Possibility {
                view: view.clone(),
                facts: Instance::single("R", rel),
            }
        })
        .collect();

    let measurements: Vec<(usize, Duration, bool)> = thread_counts()
        .into_iter()
        .map(|threads| {
            let cfg = EngineConfig::with_threads(threads, BUDGET);
            let start = Instant::now();
            let outcomes = decide_all_with(&requests, &cfg);
            let all_false = outcomes.iter().all(|o| o.answer == Ok(false));
            (threads, start.elapsed(), all_false)
        })
        .collect();
    report(
        &format!(
            "batch::decide_all ({requests_n} requests × {rows}-row refutations, shared database)"
        ),
        &measurements,
    );
}

fn main() {
    println!("parallel decision engine — wall-clock speedup over the sequential search");
    println!(
        "(available parallelism: {}; every row re-runs the same decision, answers must agree)\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    exhaustive_refutation(9);
    certainty_forest(8, 6);
    batch_throughput(7, 32);
}
