//! Run every experiment of the per-experiment index in DESIGN.md and print the measured
//! sweeps — the rows recorded in EXPERIMENTS.md.  Run with
//! `cargo run --release --bin experiments`.
//!
//! Each experiment prints a sweep of running time against input size plus a growth
//! classification (polynomial vs. super-polynomial).  The expected shape is stated next to
//! each sweep so paper-vs-measured can be read off directly.

use pw_bench::Sweep;
use pw_core::{CDatabase, View};
use pw_decide::{certainty, containment, membership, possibility, uniqueness, Budget};
use pw_query::{qatom, ConjunctiveQuery, DatalogProgram, QTerm, Query, QueryDef, Ucq};
use pw_reductions::certainty_hardness::taut_cert_fo;
use pw_reductions::containment_hardness::{ae3cnf_cont_itable, dnf_taut_cont_view_table};
use pw_reductions::membership_hardness::{three_col_etable, three_col_itable, three_col_view};
use pw_reductions::possibility_hardness::{sat_poss_datalog, sat_poss_etable, sat_poss_itable};
use pw_reductions::uniqueness_hardness::{dnf_taut_uniq_ctable, non3col_uniq_view};
use pw_relational::Instance;
use pw_solvers::{Clause, DnfFormula, Literal};
use pw_workloads::{
    member_instance, planted_three_colorable, random_3cnf, random_3dnf, random_codd_table,
    random_ctable, random_etable, random_forall_exists, random_gtable, TableParams,
};

const BIG: Budget = Budget(1_000_000_000);

fn section(id: &str, claim: &str, expectation: &str, sweep: &Sweep) {
    println!("== {id} — {claim}");
    println!("   expected shape: {expectation}");
    print!("{}", sweep.render());
    println!();
}

fn main() {
    println!(
        "possible-worlds — experiment harness (paper: Abiteboul–Kanellakis–Grahne 1987/1991)\n"
    );

    // ---- E-T31-1 / E-F3: membership on Codd-tables (PTIME). ----
    let sweep = Sweep::run(
        "MEMB(-), Codd-tables, matching algorithm",
        [64, 256, 1024, 4096],
        |n| {
            let params = TableParams::with_rows(n, 1);
            let db = CDatabase::single(random_codd_table("R", &params));
            let inst = member_instance(&db, &params);
            membership::codd_matching(&db, &inst)
        },
    );
    section(
        "E-T31-1",
        "Theorem 3.1(1): MEMB(-) ∈ PTIME for tables",
        "polynomial",
        &sweep,
    );

    // ---- E-T31-2/3/4: membership hardness (NP). ----
    let sweep = Sweep::run(
        "MEMB(-), e-table 3-colourability reduction",
        [4, 6, 8, 10],
        |n| {
            let g = planted_three_colorable(n, 0.7, 3);
            let r = three_col_etable(&g);
            membership::decide(&r.view.db, &r.instance, BIG).unwrap()
        },
    );
    section(
        "E-T31-2",
        "Theorem 3.1(2): MEMB(-) NP-complete for e-tables",
        "super-polynomial on hard families",
        &sweep,
    );

    let sweep = Sweep::run(
        "MEMB(-), i-table 3-colourability reduction",
        [4, 6, 8, 10],
        |n| {
            let g = planted_three_colorable(n, 0.7, 3);
            let r = three_col_itable(&g);
            membership::decide(&r.view.db, &r.instance, BIG).unwrap()
        },
    );
    section(
        "E-T31-3",
        "Theorem 3.1(3): MEMB(-) NP-complete for i-tables",
        "super-polynomial on hard families",
        &sweep,
    );

    let sweep = Sweep::run("MEMB(q), view 3-colourability reduction", [3, 4, 5], |n| {
        let g = planted_three_colorable(n, 0.7, 3);
        let r = three_col_view(&g);
        membership::view_membership(&r.view, &r.instance, BIG).unwrap()
    });
    section(
        "E-T31-4",
        "Theorem 3.1(4): MEMB(q) NP-complete for views of tables",
        "super-polynomial",
        &sweep,
    );

    // ---- E-T32-1/2: uniqueness upper bounds (PTIME). ----
    let sweep = Sweep::run(
        "UNIQ(-), g-tables, normalisation algorithm",
        [64, 256, 1024, 4096],
        |n| {
            let params = TableParams::with_rows(n, 5);
            let db = CDatabase::single(random_gtable("R", &params));
            let inst = member_instance(&db, &params);
            uniqueness::gtable_uniqueness(&db, &inst)
        },
    );
    section(
        "E-T32-1",
        "Theorem 3.2(1): UNIQ(-) ∈ PTIME for g-tables",
        "polynomial",
        &sweep,
    );

    let q_proj = Query::single(
        "Q",
        QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("a")],
            [qatom!("R"; "a", "b", "c")],
        ))),
    );
    let sweep = Sweep::run("UNIQ(q0), pos. exist. on e-tables", [32, 128, 512], |n| {
        let params = TableParams::with_rows(n, 6);
        let db = CDatabase::single(random_etable("R", &params));
        uniqueness::pos_exist_etable(&q_proj, &db, &Instance::new()).unwrap_or(false)
    });
    section(
        "E-T32-2",
        "Theorem 3.2(2): UNIQ(q0) ∈ PTIME for pos. exist. queries on e-tables",
        "polynomial",
        &sweep,
    );

    // ---- E-T32-3/4: uniqueness hardness (coNP). ----
    let sweep = Sweep::run(
        "UNIQ(-), 3DNF-tautology reduction (c-table)",
        [4, 6, 8, 10],
        |n| {
            let f = random_3dnf(n, n, 7);
            let r = dnf_taut_uniq_ctable(&f);
            uniqueness::decide(&r.view, &r.instance, BIG).unwrap()
        },
    );
    section(
        "E-T32-3",
        "Theorem 3.2(3): UNIQ(-) coNP-complete for c-tables",
        "super-polynomial",
        &sweep,
    );

    let sweep = Sweep::run(
        "UNIQ(q0), non-3-colourability reduction (view)",
        [4, 5, 6],
        |n| {
            let g = planted_three_colorable(n, 0.7, 9);
            let r = non3col_uniq_view(&g);
            uniqueness::decide(&r.view, &r.instance, BIG).unwrap()
        },
    );
    section(
        "E-T32-4",
        "Theorem 3.2(4): UNIQ(q0) coNP-complete for views of tables",
        "super-polynomial",
        &sweep,
    );

    // ---- E-T41: containment upper bounds. ----
    let sweep = Sweep::run(
        "CONT(-, -), g-table ⊆ table via freeze + matching",
        [32, 128, 512, 2048],
        |n| {
            let left = CDatabase::single(random_gtable("R", &TableParams::with_rows(n, 11)));
            let right = CDatabase::single(random_codd_table("R", &TableParams::with_rows(n, 12)));
            containment::freeze(&left, &right, Budget::default()).unwrap()
        },
    );
    section(
        "E-T41 (3)",
        "Theorem 4.1(3): CONT ∈ PTIME for g-tables ⊆ tables",
        "polynomial",
        &sweep,
    );

    let sweep = Sweep::run(
        "CONT(-, -), g-table ⊆ e-table via freeze + NP membership",
        [16, 32, 64],
        |n| {
            let left = CDatabase::single(random_gtable("R", &TableParams::with_rows(n, 13)));
            let right = CDatabase::single(random_etable("R", &TableParams::with_rows(n, 14)));
            containment::freeze(&left, &right, BIG).unwrap()
        },
    );
    section(
        "E-T41 (2)",
        "Theorem 4.1(2): CONT ∈ NP for g-tables ⊆ e-tables",
        "one NP call (fast on random, exponential in the worst case)",
        &sweep,
    );

    // ---- E-T42-1 / E-T42-4: containment hardness. ----
    let sweep = Sweep::run(
        "CONT(-, -), ∀∃3CNF reduction (table ⊆ i-table)",
        [1, 2, 3],
        |n| {
            let q = random_forall_exists(n, 2, 4, 5);
            let r = ae3cnf_cont_itable(&q);
            containment::decide(&r.left, &r.right, BIG).unwrap()
        },
    );
    section(
        "E-T42-1",
        "Theorem 4.2(1): CONT Π₂ᵖ-complete for table ⊆ i-table",
        "super-polynomial (doubly nested search)",
        &sweep,
    );

    let sweep = Sweep::run(
        "CONT(q0, -), 3DNF-tautology reduction (view ⊆ table)",
        [3, 5, 7],
        |n| {
            let f = random_3dnf(n, n, 6);
            let r = dnf_taut_cont_view_table(&f);
            containment::decide(&r.left, &r.right, BIG).unwrap()
        },
    );
    section(
        "E-T42-4",
        "Theorem 4.2(4): CONT(q0,-) coNP-complete for views ⊆ tables",
        "super-polynomial",
        &sweep,
    );

    // ---- E-T51 / E-T52: possibility. ----
    let sweep = Sweep::run(
        "POSS(*, -), Codd-tables, matching",
        [64, 256, 1024, 4096],
        |n| {
            let params = TableParams::with_rows(n, 41);
            let db = CDatabase::single(random_codd_table("R", &params));
            let facts = member_instance(&db, &params);
            possibility::codd_matching(&db, &facts)
        },
    );
    section(
        "E-T51-1",
        "Theorem 5.1(1): POSS(*,-) ∈ PTIME for tables",
        "polynomial",
        &sweep,
    );

    let sweep = Sweep::run(
        "POSS(*, -), 3CNF reduction on e-tables",
        [3, 4, 5, 6],
        |n| {
            let f = random_3cnf(n, n * 3, 8);
            let r = sat_poss_etable(&f);
            possibility::decide(&r.view, &r.facts, BIG).unwrap()
        },
    );
    section(
        "E-T51-2",
        "Theorem 5.1(2): POSS(*,-) NP-complete for e-tables",
        "super-polynomial",
        &sweep,
    );

    let sweep = Sweep::run(
        "POSS(*, -), 3CNF reduction on i-tables",
        [3, 4, 5, 6],
        |n| {
            let f = random_3cnf(n, n * 3, 8);
            let r = sat_poss_itable(&f);
            possibility::decide(&r.view, &r.facts, BIG).unwrap()
        },
    );
    section(
        "E-T51-3",
        "Theorem 5.1(3): POSS(*,-) NP-complete for i-tables",
        "super-polynomial",
        &sweep,
    );

    let q_pair = Query::single(
        "Q",
        QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("a"), QTerm::var("c")],
            [qatom!("R"; "a", "b", "c")],
        ))),
    );
    let sweep = Sweep::run(
        "POSS(k, q), pos. exist. on c-tables via the algebra",
        [32, 128, 512, 2048],
        |n| {
            let params = TableParams::with_rows(n, 42);
            let db = CDatabase::single(random_ctable("R", &params));
            let world = member_instance(&db, &params);
            let mut facts = Instance::new();
            if let Some((_, rel)) = world.iter().next() {
                for fact in rel.iter().take(2) {
                    facts
                        .insert_fact(
                            "Q",
                            pw_relational::Tuple::new([fact[0].clone(), fact[2].clone()]),
                        )
                        .expect("arity 2");
                }
            }
            let view = View::new(q_pair.clone(), db);
            possibility::decide(&view, &facts, BIG).unwrap()
        },
    );
    section(
        "E-T52-1",
        "Theorem 5.2(1): POSS(k, q) ∈ PTIME for pos. exist. q on c-tables",
        "polynomial",
        &sweep,
    );

    let sweep = Sweep::run(
        "POSS(1, FO), 3DNF-non-tautology reduction",
        [1, 2, 3],
        |n| {
            let f = DnfFormula::new(
                n,
                (0..n).map(|i| {
                    Clause::new([Literal {
                        var: i,
                        positive: true,
                    }])
                }),
            );
            let r = pw_reductions::possibility_hardness::nontaut_poss_fo(&f);
            possibility::decide(&r.view, &r.facts, BIG).unwrap()
        },
    );
    section(
        "E-T52-2",
        "Theorem 5.2(2): POSS(1, q) NP-complete for a first order q on tables",
        "super-polynomial",
        &sweep,
    );

    let sweep = Sweep::run("POSS(1, DATALOG), 3CNF reduction", [2, 3, 4], |n| {
        let f = random_3cnf(n, 3, 10);
        let r = sat_poss_datalog(&f);
        possibility::decide(&r.view, &r.facts, BIG).unwrap()
    });
    section(
        "E-T52-3",
        "Theorem 5.2(3): POSS(1, q) NP-complete for a DATALOG q on tables",
        "super-polynomial",
        &sweep,
    );

    // ---- E-T53: certainty. ----
    let tc = Query::single(
        "TC",
        QueryDef::Datalog(DatalogProgram::transitive_closure("R", "TC")),
    );
    let sweep = Sweep::run(
        "CERT(*, DATALOG) on g-tables via naive evaluation",
        [32, 64, 128, 256],
        |n| {
            let params = TableParams {
                rows: n,
                arity: 2,
                constants: n / 2,
                null_density: 0.3,
                seed: 51,
            };
            let db = CDatabase::single(random_etable("R", &params));
            let world = member_instance(&db, &params);
            let mut facts = Instance::new();
            if let Some((_, rel)) = world.iter().next() {
                if let Some(fact) = rel.iter().next() {
                    facts.insert_fact("TC", fact.clone()).expect("arity 2");
                }
            }
            let view = View::new(tc.clone(), db);
            certainty::decide(&view, &facts, Budget::default()).unwrap()
        },
    );
    section(
        "E-T53-1",
        "Theorem 5.3(1): CERT(*, DATALOG) ∈ PTIME for g-tables",
        "polynomial",
        &sweep,
    );

    let sweep = Sweep::run("CERT(1, FO), 3DNF-tautology reduction", [1, 2, 3], |n| {
        let f = DnfFormula::new(
            n,
            (0..n).map(|i| {
                Clause::new([Literal {
                    var: i,
                    positive: i % 2 == 0,
                }])
            }),
        );
        let r = taut_cert_fo(&f);
        certainty::decide(&r.view, &r.facts, BIG).unwrap()
    });
    section(
        "E-T53-2",
        "Theorem 5.3(2): CERT(1, q) coNP-complete for a first order q on tables",
        "super-polynomial",
        &sweep,
    );

    println!("Done.  See EXPERIMENTS.md for the recorded paper-vs-measured discussion.");
}
