//! Reproduce Fig. 2 of the paper: the complexity of the containment problem, one row per
//! representation of the contained set (instance, Codd-table, e-table, i-table, g-table,
//! c-table, view) and one column per representation of the containing set.
//!
//! The paper reports complexity *classes*; our empirical analogue prints, for each cell,
//! the algorithm the dispatcher selects together with measured running times on a small
//! and a larger input of that cell's family, so the PTIME / NP / coNP / Π₂ᵖ regions are
//! visible as "stays flat" versus "blows up".  Run with `cargo run --release --bin
//! fig2-matrix`.

use pw_bench::{compact, Sweep};
use pw_core::{CDatabase, View};
use pw_decide::{containment, Budget};
use pw_query::{qatom, ConjunctiveQuery, QTerm, Query, QueryDef, Ucq};
use pw_workloads::{
    random_codd_table, random_ctable, random_etable, random_gtable, random_itable, TableParams,
};

/// The seven representation kinds of Fig. 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Repr {
    Instance,
    Codd,
    ETable,
    ITable,
    GTable,
    CTable,
    ViewOfTable,
}

impl Repr {
    const ALL: [Repr; 7] = [
        Repr::Instance,
        Repr::Codd,
        Repr::ETable,
        Repr::ITable,
        Repr::GTable,
        Repr::CTable,
        Repr::ViewOfTable,
    ];

    fn label(self) -> &'static str {
        match self {
            Repr::Instance => "instance",
            Repr::Codd => "table",
            Repr::ETable => "e-table",
            Repr::ITable => "i-table",
            Repr::GTable => "g-table",
            Repr::CTable => "c-table",
            Repr::ViewOfTable => "view",
        }
    }

    /// Build a view of this representation kind with roughly `rows` rows.
    fn build(self, rows: usize, seed: u64) -> View {
        let params = TableParams {
            rows,
            arity: 2,
            constants: 6,
            null_density: 0.4,
            seed,
        };
        match self {
            Repr::Instance => {
                let params = TableParams {
                    null_density: 0.0,
                    ..params
                };
                View::identity(CDatabase::single(random_codd_table("R", &params)))
            }
            Repr::Codd => View::identity(CDatabase::single(random_codd_table("R", &params))),
            Repr::ETable => View::identity(CDatabase::single(random_etable("R", &params))),
            Repr::ITable => View::identity(CDatabase::single(random_itable("R", &params))),
            Repr::GTable => View::identity(CDatabase::single(random_gtable("R", &params))),
            Repr::CTable => View::identity(CDatabase::single(random_ctable("R", &params))),
            Repr::ViewOfTable => {
                let base = random_codd_table("T", &params);
                let q = Query::single(
                    "R",
                    QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
                        [QTerm::var("a"), QTerm::var("b")],
                        [qatom!("T"; "a", "b")],
                    ))),
                );
                View::new(q, CDatabase::single(base))
            }
        }
    }

    /// Expected complexity class of CONT(row, column) according to Fig. 2 (upper bounds).
    fn expected_class(row: Repr, col: Repr) -> &'static str {
        use Repr::*;
        match (row, col) {
            // Containment *into* tables: coNP in general, PTIME when the left side is a
            // g-table or below (Theorem 4.1(1,3)).
            (Instance | Codd | ETable | ITable | GTable, Instance | Codd) => "PTIME",
            (CTable | ViewOfTable, Instance | Codd) => "coNP",
            // Into e-tables: NP for g-tables and below (Theorem 4.1(2)).
            (Instance | Codd | ETable | ITable | GTable, ETable) => "NP",
            (Instance, ITable | GTable | CTable | ViewOfTable) => "NP",
            _ => "Π₂ᵖ",
        }
    }
}

fn measure_cell(row: Repr, col: Repr, sizes: &[usize]) -> Sweep {
    Sweep::run(
        format!("{} ⊆ {}", row.label(), col.label()),
        sizes.iter().copied(),
        |n| {
            let left = row.build(n, 1000 + n as u64);
            let right = col.build(n, 2000 + n as u64);
            containment::decide(&left, &right, Budget(20_000_000)).unwrap_or(false)
        },
    )
}

fn main() {
    println!("Fig. 2 — the complexity of the containment problem (empirical reproduction)");
    println!("Each cell: expected class / strategy chosen / time at the two sweep sizes.\n");

    // Hard representations get tiny sizes; easy ones get larger ones, mirroring the
    // data-complexity statement (the classes, not absolute numbers, are the result).
    let easy_sizes = [24usize, 96];
    let hard_sizes = [2usize, 4];

    print!("{:<10}", "");
    for col in Repr::ALL {
        print!("| {:<34}", col.label());
    }
    println!();
    println!("{}", "-".repeat(10 + 36 * Repr::ALL.len()));

    for row in Repr::ALL {
        print!("{:<10}", row.label());
        for col in Repr::ALL {
            let expected = Repr::expected_class(row, col);
            let sizes: &[usize] = if expected == "PTIME" {
                &easy_sizes
            } else {
                &hard_sizes
            };
            let strategy = containment::strategy(&row.build(4, 1), &col.build(4, 2));
            let sweep = measure_cell(row, col, sizes);
            let cell = format!(
                "{expected} [{strategy}] {} → {}",
                compact(sweep.points[0].elapsed),
                compact(sweep.points[sweep.points.len() - 1].elapsed)
            );
            print!("| {cell:<34}");
        }
        println!();
    }

    println!();
    println!("Classes on the left of each cell are the paper's (Fig. 2 upper bounds, all tight);");
    println!("PTIME cells are measured at n = {easy_sizes:?} rows, the hard cells at n = {hard_sizes:?} rows.");
    println!("The classification drives which algorithm the dispatcher picks (shown in brackets):");
    println!("  freeze            = Theorem 4.1(2,3) homomorphism technique");
    println!("  world-enumeration = Proposition 2.1(1) ∀∃ canonical-valuation procedure");

    // Membership and uniqueness columns of the figure (the special cases called out in the
    // caption): report their strategies too.
    println!("\nSpecial cases (membership = containment with a fixed left instance, uniqueness = ");
    println!("containment both ways against a single instance):");
    for col in [
        Repr::Codd,
        Repr::ETable,
        Repr::ITable,
        Repr::CTable,
        Repr::ViewOfTable,
    ] {
        let view = col.build(16, 77);
        let memb = pw_decide::membership::view_strategy(&view);
        let uniq = pw_decide::uniqueness::strategy(&view);
        println!(
            "  {:<8}  MEMB strategy = {:<18}  UNIQ strategy = {}",
            col.label(),
            memb.to_string(),
            uniq
        );
    }
}
