//! `bench-stream` — the standing-query stream benchmark: verdict-flip subscriptions
//! ([`Session::push_delta`]) against a replay-everything baseline
//! ([`Session::redecide_all`] over the same standing requests), on the
//! [`pw_workloads::streams`] flip-sparse and flip-heavy delta streams.
//!
//! `bench-pr5` proved that a delta-aware re-decision beats a from-scratch decide by
//! replaying clean groups from the memo.  This harness measures the next layer: a
//! *subscription index* (dirty shard groups → affected standing requests) lets
//! `push_delta` skip unaffected requests **outright** — no memo probe, no rebind —
//! where the replay baseline still walks every standing request on every delta.  On
//! the flip-sparse family (flips are 1 op in 16, deltas touch one of many relations)
//! almost every request is skipped on almost every delta, which is the regime a
//! serving deployment with many standing queries lives in.
//!
//! Each measured row drives one workload down its delta stream in both modes through
//! long-lived sessions (baselines untimed), recording wall clock, per-delta latency
//! and deltas/s.  The modes must agree **bit-identically**: every verdict flip
//! `push_delta` reports must equal the answer diff of the replay baseline's
//! consecutive outcomes (same positions, same old/new answers, same strategies), and
//! every standing verdict must match after every delta.  The report records
//! `answers_match` per row, and the `stream_guard` table (consumed by
//! `tools/check_bench.rs` in CI) enforces both the match and a per-row speedup floor.
//! Larger push-only rows extend the deltas/s sweep beyond what the replay baseline
//! can cover in CI time; they carry no guard row.
//!
//! Usage:
//!   cargo run --release --bin bench-stream -- [--smoke] [--sweeps N] [--out FILE]
//!
//! `--smoke` shrinks the streams to a few relations and deltas so CI can check the
//! harness and the JSON shape in seconds (the smoke floor only asserts "not slower
//! than replay"; the committed full run carries the real ≥10× floor).

use pw_core::{CDatabase, View};
use pw_decide::batch::DecisionRequest;
use pw_decide::{Budget, DecisionOutcome, EngineConfig, Session};
use pw_workloads::{flip_heavy_stream, flip_sparse_stream, StreamProblem, StreamWorkload};
use std::time::Instant;

/// One measured row of the report.
struct Measurement {
    workload: String,
    mode: &'static str,
    /// Total wall time across the stream's deltas (baselines untimed).
    wall_ms: f64,
    deltas: usize,
    /// Verdict flips observed down the stream.
    flips: usize,
    /// Final standing answers, e.g. `"true:46, false:2"`.
    answers: Vec<String>,
}

/// One stream-guard row: the push/replay pair plus the CI floor.
struct GuardRow {
    workload: String,
    push_ms: f64,
    redecide_ms: f64,
    flips: usize,
    floor: f64,
    answers_match: bool,
}

/// Bind a workload's request specs to identity views of `db`.
fn bind_requests(w: &StreamWorkload, db: &CDatabase) -> Vec<DecisionRequest> {
    w.requests
        .iter()
        .map(|spec| {
            let view = View::identity(db.clone());
            match spec.problem {
                StreamProblem::Possibility => DecisionRequest::Possibility {
                    view,
                    facts: spec.facts.clone(),
                },
                StreamProblem::Certainty => DecisionRequest::Certainty {
                    view,
                    facts: spec.facts.clone(),
                },
            }
        })
        .collect()
}

/// A flip as both modes report it: (request position, old answer, new answer) with the
/// strategies that produced the answers — compared bit for bit across the modes.
type Flip = (
    usize,
    Result<bool, String>,
    Result<bool, String>,
    pw_decide::Strategy,
);

fn answer_of(o: &DecisionOutcome) -> Result<bool, String> {
    o.answer.clone().map_err(|e| format!("{e:?}"))
}

/// The replay-everything baseline: one long-lived session, every standing request
/// re-decided via `redecide_all` on every delta.  Returns the timed wall clock and
/// the per-delta outcomes (the oracle the push mode must reproduce).
fn run_redecide(w: &StreamWorkload, cfg: &EngineConfig) -> (f64, Vec<Vec<DecisionOutcome>>) {
    let session = Session::sized(cfg, w.requests.len());
    let mut cur = w.base.clone();
    let _ = session.decide_all(&bind_requests(w, &cur));
    let mut wall_ms = 0.0;
    let mut per_delta = Vec::with_capacity(w.deltas.len());
    for delta in &w.deltas {
        let requests = bind_requests(w, &cur);
        let start = Instant::now();
        let redecision = session
            .redecide_all(&cur, delta, &requests)
            .expect("stream deltas apply in sequence");
        wall_ms += start.elapsed().as_secs_f64() * 1e3;
        cur = redecision.db;
        per_delta.push(redecision.outcomes);
    }
    (wall_ms, per_delta)
}

/// The subscription path: register once, then `push_delta` per delta.  Returns the
/// timed wall clock, the flips observed, and — when an oracle is supplied — whether
/// every flip and every standing verdict matched it bit for bit.
fn run_push(
    w: &StreamWorkload,
    cfg: &EngineConfig,
    oracle: Option<&[Vec<DecisionOutcome>]>,
) -> (f64, Vec<Flip>, bool) {
    let mut session = Session::sized(cfg, w.requests.len());
    let requests = bind_requests(w, &w.base);
    let (ids, baselines) = session.register_standing(&w.base, &requests);
    let position_of = |id: u64| ids.iter().position(|&i| i == id).expect("registered id");

    let mut wall_ms = 0.0;
    let mut flips: Vec<Flip> = Vec::new();
    let mut answers_match = true;
    let mut prev = baselines;
    for (tick, delta) in w.deltas.iter().enumerate() {
        let start = Instant::now();
        let update = session
            .push_delta(delta)
            .expect("stream deltas apply in sequence");
        wall_ms += start.elapsed().as_secs_f64() * 1e3;
        for flip in &update.flips {
            flips.push((
                position_of(flip.request_id),
                answer_of(&flip.old),
                answer_of(&flip.new),
                flip.new.strategy,
            ));
        }
        if let Some(oracle) = oracle {
            let want = &oracle[tick];
            // The oracle's flips for this delta: positions whose answer changed.
            let expected: Vec<Flip> = prev
                .iter()
                .zip(want)
                .enumerate()
                .filter(|(_, (old, new))| old.answer != new.answer)
                .map(|(p, (old, new))| (p, answer_of(old), answer_of(new), new.strategy))
                .collect();
            let got: Vec<Flip> = update
                .flips
                .iter()
                .map(|f| {
                    (
                        position_of(f.request_id),
                        answer_of(&f.old),
                        answer_of(&f.new),
                        f.new.strategy,
                    )
                })
                .collect();
            if got != expected {
                answers_match = false;
            }
            // Every standing verdict — skipped ones included — must equal the
            // replay's, answer and strategy both.
            for (p, (&id, want)) in ids.iter().zip(want).enumerate() {
                let got = session.standing_outcome(id).expect("registered id");
                if got.answer != want.answer || got.strategy != want.strategy {
                    answers_match = false;
                    let _ = p;
                }
            }
            prev = want.clone();
        }
    }
    (wall_ms, flips, answers_match)
}

/// Final standing answers of a fresh replay of the whole stream (for the `answers`
/// column: both modes end at the same verdicts, so the push mode's are reported).
fn final_answers(w: &StreamWorkload, cfg: &EngineConfig) -> Vec<String> {
    let mut cur = w.base.clone();
    for delta in &w.deltas {
        cur = cur.apply(delta).expect("stream deltas apply").0;
    }
    let outcomes = pw_decide::batch::decide_all_with(&bind_requests(w, &cur), cfg);
    let (mut yes, mut no, mut err) = (0usize, 0usize, 0usize);
    for o in &outcomes {
        match o.answer {
            Ok(true) => yes += 1,
            Ok(false) => no += 1,
            Err(_) => err += 1,
        }
    }
    let mut out = Vec::new();
    if yes > 0 {
        out.push(format!("true:{yes}"));
    }
    if no > 0 {
        out.push(format!("false:{no}"));
    }
    if err > 0 {
        out.push(format!("budget:{err}"));
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(
    measurements: &[Measurement],
    guard: &[GuardRow],
    iters: usize,
    smoke: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"BENCH_PR10\",\n");
    out.push_str("  \"description\": \"standing queries over delta streams: push_delta subscription index vs replay-everything redecide_all (see crates/bench/src/bin/bench_stream.rs)\",\n");
    out.push_str("  \"threads\": 1,\n");
    out.push_str(&format!("  \"iterations\": {iters},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let answers: Vec<String> = m
            .answers
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect();
        let per_delta_ms = m.wall_ms / m.deltas.max(1) as f64;
        let deltas_per_sec = m.deltas as f64 / (m.wall_ms / 1e3).max(1e-9);
        out.push_str(&format!(
            "    {{\"problem\": \"standing\", \"workload\": \"{}\", \"mode\": \"{}\", \"wall_ms\": {:.3}, \"deltas\": {}, \"flips\": {}, \"per_delta_ms\": {:.4}, \"deltas_per_sec\": {:.1}, \"answers\": [{}]}}{}\n",
            json_escape(&m.workload),
            m.mode,
            m.wall_ms,
            m.deltas,
            m.flips,
            per_delta_ms,
            deltas_per_sec,
            answers.join(", "),
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // The CI guard table: flips and verdicts must match the replay baseline bit for
    // bit, and each row's redecide/push speedup must clear its embedded floor.
    out.push_str("  \"stream_guard\": [\n");
    for (i, g) in guard.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"problem\": \"standing\", \"workload\": \"{}\", \"push_ms\": {:.3}, \"redecide_ms\": {:.3}, \"flips\": {}, \"speedup\": {:.2}, \"floor\": {}, \"answers_match\": {}}}{}\n",
            json_escape(&g.workload),
            g.push_ms,
            g.redecide_ms,
            g.flips,
            g.redecide_ms / g.push_ms.max(1e-6),
            g.floor,
            g.answers_match,
            if i + 1 == guard.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // The standard committed-report table (`check-bench` floor 0.9): the replay
    // baseline is this report's embedded baseline, the push path the current mode.
    out.push_str("  \"speedup_vs_baseline\": [\n");
    for (i, g) in guard.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"problem\": \"standing\", \"workload\": \"{}\", \"mode\": \"push\", \"baseline_ms\": {:.3}, \"current_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            json_escape(&g.workload),
            g.redecide_ms,
            g.push_ms,
            g.redecide_ms / g.push_ms.max(1e-6),
            if i + 1 == guard.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One workload spec: builder, sizes, and whether the replay baseline runs (guarded
/// rows) or the row is a push-only throughput extension.
struct Spec {
    family: &'static str,
    relations: usize,
    rows: usize,
    deltas: usize,
    guarded: bool,
    /// The committed-run speedup floor for this row (the flip-sparse rows carry the
    /// headline ≥10×; flip-heavy measures notification latency, where every delta
    /// re-decides its relation in both modes, so its floor only asserts "faster than
    /// replay").  Smoke runs override every floor down to 0.9.
    floor: f64,
}

fn build(spec: &Spec) -> StreamWorkload {
    let builder = match spec.family {
        "flip-sparse" => flip_sparse_stream,
        _ => flip_heavy_stream,
    };
    builder(spec.relations, spec.rows, spec.deltas, 2026)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR10.json".to_owned());
    let sweeps: usize = flag_value("--sweeps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    // Single-threaded sessions: the comparison is about *requests skipped*, not about
    // parallel speedup, and sequential timings are the stable ones.
    let cfg = EngineConfig::sequential(Budget(20_000_000));

    let specs: Vec<Spec> = if smoke {
        vec![
            Spec {
                family: "flip-sparse",
                relations: 6,
                rows: 4,
                deltas: 120,
                guarded: true,
                floor: 0.9,
            },
            Spec {
                family: "flip-heavy",
                relations: 4,
                rows: 4,
                deltas: 60,
                guarded: true,
                floor: 0.9,
            },
        ]
    } else {
        vec![
            Spec {
                family: "flip-sparse",
                relations: 64,
                rows: 4,
                deltas: 5_000,
                guarded: true,
                floor: 10.0,
            },
            Spec {
                family: "flip-sparse",
                relations: 96,
                rows: 4,
                deltas: 3_000,
                guarded: true,
                floor: 10.0,
            },
            Spec {
                family: "flip-heavy",
                relations: 8,
                rows: 6,
                deltas: 2_000,
                guarded: true,
                floor: 1.5,
            },
            // Push-only throughput extension: the replay baseline would dominate the
            // run time without changing the verdicts, so this row carries no guard.
            Spec {
                family: "flip-sparse",
                relations: 48,
                rows: 4,
                deltas: 50_000,
                guarded: false,
                floor: 0.0,
            },
        ]
    };

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut guard: Vec<GuardRow> = Vec::new();
    for spec in &specs {
        let w = build(spec);
        let answers = final_answers(&w, &cfg);
        // Keep the sweep with the least favourable speedup, except that a mismatch
        // always dominates — diverging verdicts can never be papered over.
        let mut best: Option<(f64, f64, usize, bool)> = None;
        for sweep in 0..sweeps {
            let (redecide_ms, oracle) = if spec.guarded {
                let (ms, oracle) = run_redecide(&w, &cfg);
                (ms, Some(oracle))
            } else {
                (0.0, None)
            };
            let (push_ms, flips, answers_match) = run_push(&w, &cfg, oracle.as_deref());
            eprintln!(
                "sweep {}/{sweeps}: {:<28} push {:>10.3} ms  redecide {:>10.3} ms  flips {:>5}  ({:.1}x, match: {})",
                sweep + 1,
                w.label,
                push_ms,
                redecide_ms,
                flips.len(),
                redecide_ms / push_ms.max(1e-6),
                answers_match,
            );
            let keep = match &best {
                None => true,
                Some((b_push, b_red, _, b_match)) => match (answers_match, *b_match) {
                    (false, true) => true,
                    (true, false) => false,
                    _ => redecide_ms / push_ms.max(1e-6) < b_red / b_push.max(1e-6),
                },
            };
            if keep {
                best = Some((push_ms, redecide_ms, flips.len(), answers_match));
            }
        }
        let (push_ms, redecide_ms, flips, answers_match) = best.expect("at least one sweep");
        measurements.push(Measurement {
            workload: w.label.clone(),
            mode: "push",
            wall_ms: push_ms,
            deltas: w.deltas.len(),
            flips,
            answers: answers.clone(),
        });
        if spec.guarded {
            measurements.push(Measurement {
                workload: w.label.clone(),
                mode: "redecide",
                wall_ms: redecide_ms,
                deltas: w.deltas.len(),
                flips,
                answers,
            });
            guard.push(GuardRow {
                workload: w.label.clone(),
                push_ms,
                redecide_ms,
                flips,
                floor: if smoke { 0.9 } else { spec.floor },
                answers_match,
            });
        }
    }

    let json = render_json(&measurements, &guard, sweeps, smoke);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
