//! `bench-pr4` — the shard-group benchmark: batch wall time on *decoupled
//! multi-relation* workloads — single requests whose instances span many
//! variable-disjoint relations — emitted as machine-readable JSON.
//!
//! `bench-pr2` stressed constant comparisons and `bench-pr3` relation addressing; this
//! harness stresses the **search-tree shape**.  A database of `k` variable-disjoint
//! relations makes the joint backtracking searches interleave all `k` relations' choice
//! points in one tree — a "no" answer near the end of the work list multiplies through
//! every earlier relation's alternatives — while the shard-group paths introduced with
//! this benchmark solve each coupling group independently and merge, turning the
//! multiplicative tree into a sum of small ones.  The same binary is run before and
//! after the engine change; `--baseline <file>` embeds the prior run's numbers and
//! reports per-row speedups, which is how `BENCH_PR4.json` records the before/after of
//! the per-shard PR.  Answers must be bit-identical between the two runs — a speedup
//! that flips an answer is a bug, and the report pins the aggregated answers per row.
//!
//! Usage:
//!   cargo run --release --bin bench-pr4 -- [--smoke] [--sweeps N] [--out FILE] [--baseline FILE]
//!
//! `--smoke` shrinks the workloads to a few relations and one iteration so CI can check
//! the harness and the JSON shape in seconds.  `--sweeps N` repeats the whole sweep N
//! times and keeps each row's minimum, cancelling machine drift.

use pw_core::{CDatabase, View};
use pw_decide::batch::{decide_all_with, DecisionRequest};
use pw_decide::{Budget, EngineConfig};
use pw_relational::{Constant, Instance, Relation, Tuple};
use pw_workloads::{decoupled_multirelation, member_instance, TableParams};
use std::time::Instant;

/// One measured row of the report.
struct Measurement {
    problem: &'static str,
    workload: String,
    mode: &'static str,
    wall_ms: f64,
    /// Aggregated answers, e.g. `"true:1, false:1"` — pinned so a perf change that flips
    /// a decision is visible in review.
    answers: Vec<String>,
}

/// A decoupled workload: the multi-relation database plus the instances the requests are
/// phrased against.
///
/// The "no" instances are engineered to make the joint search pay its multiplicative
/// price *without* blowing the budget: the low null density gives every earlier relation
/// a small number of alternative row↔fact assignments, and the **last** relation (in the
/// instance iteration order the searches follow) is made infeasible — so the joint tree
/// re-discovers the tail's failure once per combination of the earlier relations'
/// alternatives, while a per-shard search fails the tail group once.
struct Workload {
    label: String,
    db: CDatabase,
    /// A guaranteed member of `rep(db)` spanning every relation.
    member: Instance,
    /// The member instance with one extra unproducible fact appended to the last
    /// relation — a non-member discovered only at the tail of the joint row assignment.
    tail_non_member: Instance,
    /// Two member facts per relation (a coverable pattern — possibility "yes").
    pattern: Instance,
    /// The same pattern with an unproducible fact appended to the last relation
    /// (possibility "no", discovered at the tail).
    poisoned_pattern: Instance,
}

/// The i-th poison fact: pairwise distinct, outside the generator's constant pool.
fn poison_fact(i: usize) -> Tuple {
    let i = i as i64;
    Tuple::new([Constant::Int(-1 - 2 * i), Constant::Int(-2 - 2 * i)])
}

/// Make the relation infeasible by *counting*: pad it past the table's row count with
/// distinct poison facts.  A table of `rows` rows produces at most `rows` distinct facts
/// (membership maps each row onto one fact; possibility needs a distinct producing row
/// per fact), so the padded relation is a guaranteed "no" at any null density — the
/// joint search still has to exhaust the earlier relations' alternatives to see it.
fn pad_past_rows(rel: &Relation, rows: usize) -> Relation {
    let mut out = rel.clone();
    let mut i = 0;
    while out.len() <= rows {
        out.insert(poison_fact(i)).expect("arity 2");
        i += 1;
    }
    out
}

fn build_workload(relations: usize, seed: u64) -> Workload {
    // Moderate null density: most rows are ground, one or two per relation carry nulls
    // and are therefore compatible with several facts — that bounded per-relation
    // branching is the multiplicative factor the joint "no" searches pay across
    // relations, sized so the sweep completes within the budget.
    let params = TableParams {
        rows: 5,
        arity: 2,
        constants: 3,
        null_density: 0.5,
        seed,
    };
    let db = decoupled_multirelation(relations, &params);
    let member = member_instance(&db, &params);
    let last = db.tables().last().expect("non-empty workload").name();

    let mut tail_non_member = Instance::new();
    let mut pattern = Instance::new();
    let mut poisoned = Instance::new();
    for (name, rel) in member.iter() {
        // Membership: the member instance with the last relation padded past its row
        // count — a non-member discovered only at the tail of the joint assignment.
        let m = if name == last {
            pad_past_rows(rel, params.rows)
        } else {
            rel.clone()
        };
        tail_non_member.insert_relation(name.clone(), m);

        // Possibility: two member facts per relation; the poisoned twin pads the last
        // relation past its row count.
        let mut p = Relation::empty(rel.arity());
        for fact in rel.iter().take(2) {
            p.insert(fact.clone()).expect("arity preserved");
        }
        pattern.insert_relation(name.clone(), p.clone());
        let q = if name == last {
            pad_past_rows(&p, params.rows)
        } else {
            p
        };
        poisoned.insert_relation(name.clone(), q);
    }

    Workload {
        label: format!("decoupled-{relations}"),
        db,
        member,
        tail_non_member,
        pattern,
        poisoned_pattern: poisoned,
    }
}

/// Containment sweeps get their own (smaller) sizes: the joint fallback is the Π₂ᵖ
/// canonical-valuation enumeration over *all* variables of the left database, so the
/// pre-shard baseline only completes on small databases — which is exactly the point the
/// per-group decomposition makes.
fn build_containment_workload(relations: usize, seed: u64) -> Workload {
    let params = TableParams {
        rows: 2,
        arity: 2,
        constants: 3,
        null_density: 0.5,
        seed,
    };
    let db = decoupled_multirelation(relations, &params);
    let member = member_instance(&db, &params);
    Workload {
        label: format!("decoupled-small-{relations}"),
        db,
        tail_non_member: member.clone(),
        pattern: member.clone(),
        poisoned_pattern: member.clone(),
        member,
    }
}

fn build_workloads(smoke: bool) -> Vec<Workload> {
    let sizes: &[usize] = if smoke { &[3] } else { &[6, 8, 10] };
    sizes.iter().map(|&n| build_workload(n, 1987)).collect()
}

fn build_containment_workloads(smoke: bool) -> Vec<Workload> {
    let sizes: &[usize] = if smoke { &[2] } else { &[2, 3] };
    sizes
        .iter()
        .map(|&n| build_containment_workload(n, 2024))
        .collect()
}

/// Per-problem request lists.  Every request spans the whole multi-relation database, so
/// the joint search interleaves all relations and the per-shard paths split per group.
fn requests_for(problem: &str, w: &Workload) -> Vec<DecisionRequest> {
    let view = View::identity(w.db.clone());
    match problem {
        "membership" => vec![
            DecisionRequest::Membership {
                view: view.clone(),
                instance: w.member.clone(),
            },
            DecisionRequest::Membership {
                view,
                instance: w.tail_non_member.clone(),
            },
        ],
        "possibility" => vec![
            DecisionRequest::Possibility {
                view: view.clone(),
                facts: w.pattern.clone(),
            },
            DecisionRequest::Possibility {
                view,
                facts: w.poisoned_pattern.clone(),
            },
        ],
        "certainty" => vec![DecisionRequest::Certainty {
            view,
            facts: w.pattern.clone(),
        }],
        "uniqueness" => vec![DecisionRequest::Uniqueness {
            view,
            instance: w.member.clone(),
        }],
        "containment" => vec![DecisionRequest::Containment {
            left: view.clone(),
            right: view,
        }],
        other => unreachable!("unknown problem {other}"),
    }
}

const PROBLEMS: [&str; 4] = ["membership", "possibility", "certainty", "uniqueness"];

fn measure(
    problem: &'static str,
    workload: &Workload,
    mode: &'static str,
    cfg: &EngineConfig,
    iters: usize,
) -> Measurement {
    let requests = requests_for(problem, workload);
    // Warm up once (untimed), then pick an inner repeat count so every timed sample is
    // at least ~2 ms — sub-millisecond batches are pure scheduler noise otherwise.
    let warmup = Instant::now();
    let _ = decide_all_with(&requests, cfg);
    let once_ms = warmup.elapsed().as_secs_f64() * 1e3;
    let reps = if iters == 1 {
        1
    } else {
        ((2.0 / once_ms.max(1e-4)).ceil() as usize).clamp(1, 512)
    };
    let mut times = Vec::with_capacity(iters);
    let mut answers = Vec::new();
    for _ in 0..iters {
        let start = Instant::now();
        let mut outcomes = Vec::new();
        for _ in 0..reps {
            outcomes = decide_all_with(&requests, cfg);
        }
        times.push(start.elapsed().as_secs_f64() * 1e3 / reps as f64);
        let mut yes = 0usize;
        let mut no = 0usize;
        let mut budget = 0usize;
        for o in &outcomes {
            match o.answer {
                Ok(true) => yes += 1,
                Ok(false) => no += 1,
                Err(_) => budget += 1,
            }
        }
        answers.clear();
        if yes > 0 {
            answers.push(format!("true:{yes}"));
        }
        if no > 0 {
            answers.push(format!("false:{no}"));
        }
        if budget > 0 {
            answers.push(format!("budget:{budget}"));
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    Measurement {
        problem,
        workload: workload.label.clone(),
        mode,
        wall_ms: times[times.len() / 2],
        answers,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(
    measurements: &[Measurement],
    threads: usize,
    iters: usize,
    smoke: bool,
    baseline_raw: Option<&str>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"BENCH_PR4\",\n");
    out.push_str("  \"description\": \"batch wall time on decoupled multi-relation workloads: joint search vs shard-group fan-out (see crates/bench/src/bin/bench_pr4.rs)\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"iterations\": {iters},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let answers: Vec<String> = m
            .answers
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect();
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \"wall_ms\": {:.3}, \"answers\": [{}]}}{}\n",
            m.problem,
            json_escape(&m.workload),
            m.mode,
            m.wall_ms,
            answers.join(", "),
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]");
    if let Some(raw) = baseline_raw {
        out.push_str(",\n  \"baseline\": ");
        // Embed the baseline run verbatim (a JSON document produced by this binary).
        let indented: Vec<String> = raw.trim().lines().map(|l| format!("  {l}")).collect();
        out.push_str(indented.join("\n").trim_start());
        let base = parse_results(raw);
        out.push_str(",\n  \"speedup_vs_baseline\": [\n");
        let rows: Vec<String> = measurements
            .iter()
            .filter_map(|m| {
                let key = (m.problem.to_owned(), m.workload.clone(), m.mode.to_owned());
                base.iter().find(|(k, _)| *k == key).map(|(_, base_ms)| {
                    format!(
                        "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \"baseline_ms\": {:.3}, \"current_ms\": {:.3}, \"speedup\": {:.2}}}",
                        m.problem,
                        json_escape(&m.workload),
                        m.mode,
                        base_ms,
                        m.wall_ms,
                        base_ms / m.wall_ms.max(1e-6),
                    )
                })
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// Minimal extraction of `(problem, workload, mode) -> wall_ms` rows from a prior run of
/// this binary (full JSON parsing is overkill for a document we ourselves emit).
fn parse_results(raw: &str) -> Vec<((String, String, String), f64)> {
    let mut out = Vec::new();
    for line in raw.lines() {
        let line = line.trim();
        if !line.starts_with("{\"problem\":") {
            continue;
        }
        let field = |name: &str| -> Option<String> {
            let tag = format!("\"{name}\": \"");
            let start = line.find(&tag)? + tag.len();
            let end = line[start..].find('"')? + start;
            Some(line[start..end].to_owned())
        };
        let wall = || -> Option<f64> {
            let tag = "\"wall_ms\": ";
            let start = line.find(tag)? + tag.len();
            let end = line[start..].find(',')? + start;
            line[start..end].trim().parse().ok()
        };
        if let (Some(p), Some(w), Some(m), Some(ms)) =
            (field("problem"), field("workload"), field("mode"), wall())
        {
            out.push(((p, w, m), ms));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR4.json".to_owned());
    let baseline_raw = flag_value("--baseline").map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"))
    });

    let iters = if smoke { 1 } else { 7 };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Ample enough that the joint searches on the largest workload complete rather than
    // exhaust — "budget" rows would make the before/after wall times incomparable.
    let budget = Budget(20_000_000);
    let sequential = EngineConfig::sequential(budget);
    let parallel = EngineConfig::with_threads(threads, budget);

    let sweeps: usize = flag_value("--sweeps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let workloads = build_workloads(smoke);
    let containment_workloads = build_containment_workloads(smoke);
    // The full measurement plan: (problem, workload) pairs — containment runs on its own
    // smaller sweep (see `build_containment_workload`).
    let plan: Vec<(&'static str, &Workload)> = workloads
        .iter()
        .flat_map(|w| PROBLEMS.iter().map(move |&p| (p, w)))
        .chain(containment_workloads.iter().map(|w| ("containment", w)))
        .collect();
    let mut measurements: Vec<Measurement> = Vec::new();
    for sweep in 0..sweeps {
        let mut row = 0;
        for &(problem, w) in &plan {
            for (mode, cfg) in [("sequential", &sequential), ("parallel", &parallel)] {
                let m = measure(problem, w, mode, cfg, iters);
                eprintln!(
                    "sweep {}/{sweeps}: {:<12} {:<18} {:<10} {:>10.3} ms  [{}]",
                    sweep + 1,
                    m.problem,
                    m.workload,
                    m.mode,
                    m.wall_ms,
                    m.answers.join(", ")
                );
                if sweep == 0 {
                    measurements.push(m);
                } else if m.wall_ms < measurements[row].wall_ms {
                    measurements[row] = m;
                }
                row += 1;
            }
        }
    }

    let json = render_json(
        &measurements,
        threads,
        iters,
        smoke,
        baseline_raw.as_deref(),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
