//! `bench-pr8` — the work-stealing scheduler benchmark: the same decisions under the
//! static frontier split and under dynamic work stealing, emitted as machine-readable
//! JSON.
//!
//! PR 8 replaces the engine's carve-once frontier (phase-1 BFS into a shared queue)
//! with per-worker deques, steal-half victim raids and subtree re-splitting, and turns
//! the sequential per-group backtracking path into a search-tree participant.  The
//! design promise is two-sided:
//!
//! * **Skewed trees speed up.**  The `pw_workloads::skewed` families hide all their
//!   work in one deep subtree behind a wide shallow fan, which degenerates the static
//!   split to one busy worker; re-splitting must recover multi-core scaling (the
//!   committed floor is 4× at 8 threads on the skewed membership/possibility rows).
//! * **Everything else is unchanged.**  On the balanced existing families the stealing
//!   scheduler must stay within noise of the static split (floor 0.9×), and on *every*
//!   row the answers and strategies must be bit-identical — the scheduler moves
//!   subtrees between workers, it never changes what is explored.
//!
//! Each guard row times one (problem, workload) batch under both schedulers (same
//! 8-thread configuration, same seed, `without_work_stealing()` pinning the old path)
//! and audits answer/strategy equality; the `stealing_guard` table (consumed by
//! `tools/check_bench.rs` in CI) embeds each row's floor.  The balanced families are
//! aggregated per workload across all five problems — their individual decides are
//! micro-second polynomial paths where a wall-clock ratio is noise, while the suite
//! sum is a stable parity measurement.
//!
//! Usage:
//!   cargo run --release --bin bench-pr8 -- [--smoke] [--sweeps N] [--out FILE]
//!
//! `--smoke` shrinks the skewed families and iteration counts so CI can check the
//! harness and the JSON shape in seconds, relaxes the floors (micro-second decides on
//! a cold CI machine are noisy, and a tiny skewed tree has nothing worth stealing),
//! and prints the work-stealing `EngineStats` counters from one live skewed decide.

use pw_core::{CDatabase, View};
use pw_decide::batch::{decide_all_with, DecisionRequest};
use pw_decide::{membership, possibility, Budget, DecisionOutcome, Engine, EngineConfig};
use pw_relational::Instance;
use pw_workloads::{
    coupled_heavy_membership, decoupled_multirelation, member_instance, non_member_instance,
    random_codd_table, random_ctable, skewed_membership, skewed_possibility, SkewedParams,
    TableParams,
};
use std::time::Instant;

/// One measured row of the report.
struct Measurement {
    problem: &'static str,
    workload: &'static str,
    mode: &'static str,
    /// Mean wall time of one `decide_all_with` over the row's requests.
    wall_ms: f64,
    /// Aggregated answers, e.g. `"true:1, false:1, exhausted:0"`.
    answers: Vec<String>,
}

/// One stealing-guard row: the static/stealing pair plus the CI floor.
struct GuardRow {
    problem: &'static str,
    workload: &'static str,
    static_ms: f64,
    stealing_ms: f64,
    /// What `static_ms`/`stealing_ms` measure: `"wall"` on the balanced parity rows
    /// (total work must not regress), `"critical_path"` on the skewed rows — the
    /// busiest single worker's on-CPU time, i.e. the wall clock the schedule achieves
    /// on hardware with a free core per worker.  A wall-clock floor of 4× at 8
    /// threads is unmeasurable on a host the OS gives fewer cores; the critical path
    /// is the same quantity made host-independent (see `EngineStats::busy_max_ns`).
    metric: &'static str,
    /// Minimum allowed static/stealing speedup (4.0 on the committed skewed rows,
    /// 0.9 parity on the balanced rows, relaxed in smoke runs).
    floor: f64,
    /// Stealing answers and strategies are bit-identical to the static ones.
    answers_match: bool,
}

/// One (problem, workload, batch) cell of the suite.
struct Cell {
    problem: &'static str,
    workload: &'static str,
    requests: Vec<DecisionRequest>,
}

/// The skewed cells: one request per batch, so the full thread count works inside a
/// single condition-coupled group — exactly the intra-request regime the scheduler
/// change targets.
fn skewed_cells(params: &SkewedParams) -> Vec<Cell> {
    let (db, instance) = skewed_membership(params);
    let member = Cell {
        problem: "membership",
        workload: "skewed",
        requests: vec![DecisionRequest::Membership {
            view: View::identity(db),
            instance,
        }],
    };
    let (db, facts) = skewed_possibility(params);
    let poss = Cell {
        problem: "possibility",
        workload: "skewed",
        requests: vec![DecisionRequest::Possibility {
            view: View::identity(db),
            facts,
        }],
    };
    let (db, instance) = coupled_heavy_membership(params);
    let coupled = Cell {
        problem: "membership",
        workload: "coupled_heavy",
        requests: vec![DecisionRequest::Membership {
            view: View::identity(db),
            instance,
        }],
    };
    vec![member, poss, coupled]
}

/// The balanced parity cells: the bench-pr7 workload families across all five
/// problems, one cell per (problem, workload) pair.
fn parity_cells(smoke: bool) -> Vec<Cell> {
    let codd = TableParams {
        rows: if smoke { 8 } else { 256 },
        arity: 2,
        constants: 4,
        null_density: 0.4,
        seed: 2077,
    };
    let ctable = TableParams {
        rows: if smoke { 8 } else { 10 },
        ..codd
    };
    let shard = TableParams {
        rows: if smoke { 4 } else { 8 },
        ..codd
    };
    let families: Vec<(&'static str, CDatabase, TableParams)> = vec![
        (
            "codd",
            CDatabase::single(random_codd_table("R", &codd)),
            codd,
        ),
        (
            "ctable",
            CDatabase::single(random_ctable("R", &ctable)),
            ctable,
        ),
        (
            "sharded",
            decoupled_multirelation(if smoke { 3 } else { 4 }, &shard),
            shard,
        ),
    ];
    let mut cells = Vec::new();
    for (label, db, params) in families {
        let member = member_instance(&db, &params);
        let non_member = non_member_instance(&db, &params);
        let mut pattern = Instance::new();
        for (name, rel) in member.iter() {
            let mut p = pw_relational::Relation::empty(rel.arity());
            for fact in rel.iter().take(2) {
                p.insert(fact.clone()).expect("arity preserved");
            }
            pattern.insert_relation(name.clone(), p);
        }
        let view = View::identity(db);
        cells.push(Cell {
            problem: "membership",
            workload: label,
            requests: vec![
                DecisionRequest::Membership {
                    view: view.clone(),
                    instance: member.clone(),
                },
                DecisionRequest::Membership {
                    view: view.clone(),
                    instance: non_member,
                },
            ],
        });
        cells.push(Cell {
            problem: "possibility",
            workload: label,
            requests: vec![DecisionRequest::Possibility {
                view: view.clone(),
                facts: pattern.clone(),
            }],
        });
        cells.push(Cell {
            problem: "certainty",
            workload: label,
            requests: vec![
                DecisionRequest::Certainty {
                    view: view.clone(),
                    facts: Instance::new(),
                },
                DecisionRequest::Certainty {
                    view: view.clone(),
                    facts: pattern,
                },
            ],
        });
        cells.push(Cell {
            problem: "uniqueness",
            workload: label,
            requests: vec![DecisionRequest::Uniqueness {
                view: view.clone(),
                instance: member,
            }],
        });
        cells.push(Cell {
            problem: "containment",
            workload: label,
            requests: vec![DecisionRequest::Containment {
                left: view.clone(),
                right: view,
            }],
        });
    }
    cells
}

struct PairResult {
    static_ms: f64,
    stealing_ms: f64,
    stealing_answers: Vec<DecisionOutcome>,
    answers_match: bool,
}

/// Time one batch `iters` times and return (mean ms per batch, last outcomes).
fn time_batch(
    requests: &[DecisionRequest],
    cfg: &EngineConfig,
    iters: usize,
) -> (f64, Vec<DecisionOutcome>) {
    let start = Instant::now();
    let mut last = Vec::new();
    for _ in 0..iters {
        last = decide_all_with(requests, cfg);
    }
    (start.elapsed().as_secs_f64() * 1e3 / iters as f64, last)
}

fn run_pair(cell: &Cell, cfg: &EngineConfig, max_iters: usize) -> PairResult {
    let static_cfg = cfg.clone().without_work_stealing();
    // Calibrate the repeat count off one static batch: micro-second batches repeat up
    // to `max_iters` times for a stable mean, while a skewed batch that already costs
    // hundreds of milliseconds is its own stable measurement and runs once or twice.
    let calibration = Instant::now();
    decide_all_with(&cell.requests, &static_cfg);
    let batch_ms = calibration.elapsed().as_secs_f64() * 1e3;
    let max_iters = max_iters.max(1);
    let iters = ((20.0 / batch_ms.max(1e-6)) as usize).clamp(1, max_iters);
    let (static_ms, static_out) = time_batch(&cell.requests, &static_cfg, iters);
    let (stealing_ms, stealing_out) = time_batch(&cell.requests, cfg, iters);

    let answers_match = static_out.len() == stealing_out.len()
        && static_out
            .iter()
            .zip(&stealing_out)
            .all(|(s, d)| s.answer == d.answer && s.strategy == d.strategy);
    PairResult {
        static_ms,
        stealing_ms,
        stealing_answers: stealing_out,
        answers_match,
    }
}

fn render_answers(outcomes: &[DecisionOutcome]) -> Vec<String> {
    let (mut t, mut f, mut x) = (0usize, 0usize, 0usize);
    for o in outcomes {
        match o.answer {
            Ok(true) => t += 1,
            Ok(false) => f += 1,
            Err(_) => x += 1,
        }
    }
    vec![format!("true:{t}, false:{f}, exhausted:{x}")]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(
    measurements: &[Measurement],
    guard: &[GuardRow],
    threads: usize,
    iters: usize,
    smoke: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"BENCH_PR8\",\n");
    out.push_str("  \"description\": \"work-stealing scheduler vs the static frontier split: on skewed single-group trees the schedules' critical paths (busiest worker's on-CPU time = achievable wall clock at one core per worker) must show re-splitting recovering parallelism, balanced families must hold wall-clock parity, answers and strategies audited bit-identical (see crates/bench/src/bin/bench_pr8.rs)\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"iterations\": {iters},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let answers: Vec<String> = m
            .answers
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect();
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \"wall_ms\": {:.3}, \"answers\": [{}]}}{}\n",
            m.problem,
            m.workload,
            m.mode,
            m.wall_ms,
            answers.join(", "),
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // The CI guard table: static/stealing speedup ≥ floor per row, and the stealing
    // run's answers and strategies were audited bit-identical to the static run's.
    out.push_str("  \"stealing_guard\": [\n");
    for (i, r) in guard.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"metric\": \"{}\", \"static_ms\": {:.3}, \"stealing_ms\": {:.3}, \"speedup\": {:.2}, \"floor\": {}, \"answers_match\": {}}}{}\n",
            r.problem,
            r.workload,
            r.metric,
            r.static_ms,
            r.stealing_ms,
            r.static_ms / r.stealing_ms.max(1e-6),
            r.floor,
            r.answers_match,
            if i + 1 == guard.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // The standard committed-report table (`check-bench` floor 0.9): the static split
    // is the embedded baseline, the stealing scheduler is the current engine.
    out.push_str("  \"speedup_vs_baseline\": [\n");
    for (i, r) in guard.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"stealing\", \"baseline_ms\": {:.3}, \"current_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.problem,
            r.workload,
            r.static_ms,
            r.stealing_ms,
            r.static_ms / r.stealing_ms.max(1e-6),
            if i + 1 == guard.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One direct (non-batched) skewed decide on a fresh engine, returning the schedule's
/// critical path — the busiest worker's busy time — along with the verdict.  A fresh
/// engine per call keeps the decision memo cold and the busy counters scoped to
/// exactly this decide.
fn skew_decide(
    problem: &'static str,
    params: &SkewedParams,
    cfg: &EngineConfig,
) -> (
    f64,
    Result<bool, pw_decide::DecisionError>,
    pw_decide::Strategy,
    Engine,
) {
    let engine = Engine::new(cfg.clone());
    let decision = match problem {
        "membership" => {
            let (db, instance) = skewed_membership(params);
            membership::view_membership_with(&View::identity(db), &instance, &engine)
        }
        "possibility" => {
            let (db, facts) = skewed_possibility(params);
            possibility::decide_with(&View::identity(db), &facts, &engine)
        }
        other => unreachable!("no skewed family for {other}"),
    };
    let cp_ms = engine.stats().busy_max_ns as f64 / 1e6;
    (cp_ms, decision.answer, decision.strategy, engine)
}

/// Run one live skewed membership decide on a fresh 8-thread engine and print its
/// [`pw_decide::EngineStats`] counters — the smoke job's proof that the scheduler actually
/// steals and re-splits rather than silently falling back to one worker.
fn print_stats(params: &SkewedParams, cfg: &EngineConfig) {
    let (_, answer, strategy, engine) = skew_decide("membership", params, cfg);
    let stats = engine.stats();
    eprintln!(
        "engine stats after one skewed membership decide (answer {answer:?}, strategy {strategy:?}):"
    );
    eprintln!(
        "  steals_attempted: {}\n  steals_succeeded: {}\n  resplits: {}\n  idle_polls: {}\n  peak_queue: {}",
        stats.steals_attempted,
        stats.steals_succeeded,
        stats.resplits,
        stats.idle_polls,
        stats.peak_queue,
    );
    eprintln!(
        "  busy_total: {:.3} ms over all workers, critical path {:.3} ms (balance {:.2}x)",
        stats.busy_total_ns as f64 / 1e6,
        stats.busy_max_ns as f64 / 1e6,
        stats.busy_total_ns as f64 / stats.busy_max_ns.max(1) as f64,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR8.json".to_owned());
    let sweeps: usize = flag_value("--sweeps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);
    let iters = if smoke { 2 } else { 20 };
    let threads = 8;
    let cfg = EngineConfig::with_threads(threads, Budget(4_000_000_000));
    // Smoke trees are tiny (nothing worth stealing) and CI machines are noisy, so the
    // smoke floors only catch catastrophic collapse; the committed run carries the
    // real 4× skew acceptance and the 0.9× parity floor.
    let (skew_floor, parity_floor) = if smoke { (0.1, 0.1) } else { (4.0, 0.9) };
    let skew_params = if smoke {
        SkewedParams {
            selectors: 12,
            heavy: 8,
            edge_density: 0.1,
            seed: 3,
        }
    } else {
        SkewedParams::default()
    };

    // `--stats-only`: print the scheduler counters for one live skewed decide at the
    // selected scale and exit — the calibration/diagnosis entry point.  `--threads N`
    // and `--static` vary the probed configuration.
    if args.iter().any(|a| a == "--stats-only") {
        let threads: usize = flag_value("--threads")
            .and_then(|v| v.parse().ok())
            .unwrap_or(threads);
        let mut cfg = EngineConfig::with_threads(threads, Budget(4_000_000_000));
        if args.iter().any(|a| a == "--static") {
            cfg = cfg.without_work_stealing();
        }
        let start = Instant::now();
        print_stats(&skew_params, &cfg);
        eprintln!("wall: {:.3} s", start.elapsed().as_secs_f64());
        return;
    }

    let skewed = skewed_cells(&skew_params);
    let parity = parity_cells(smoke);

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut guard: Vec<GuardRow> = Vec::new();

    let run_cell = |cell: &Cell| -> PairResult {
        // Median speedup across the sweeps: a single descheduled sample must not
        // decide the committed number in either direction — but an answer mismatch
        // in *any* sweep always dominates.
        let mut results: Vec<PairResult> = (0..sweeps)
            .map(|sweep| {
                let r = run_pair(cell, &cfg, iters);
                eprintln!(
                    "sweep {}/{sweeps}: {:<12} {:<13} static {:>9.3} ms  stealing {:>9.3} ms  ({:.2}x, answers_match: {})",
                    sweep + 1,
                    cell.problem,
                    cell.workload,
                    r.static_ms,
                    r.stealing_ms,
                    r.static_ms / r.stealing_ms.max(1e-6),
                    r.answers_match,
                );
                r
            })
            .collect();
        let all_match = results.iter().all(|r| r.answers_match);
        results.sort_by(|a, b| {
            let sa = a.static_ms / a.stealing_ms.max(1e-6);
            let sb = b.static_ms / b.stealing_ms.max(1e-6);
            sa.total_cmp(&sb)
        });
        let mut r = results.swap_remove(results.len() / 2);
        r.answers_match = all_match;
        r
    };

    // The skewed rows: individually guarded, the 4× claim lives here.  Wall time
    // (total work) is measured for the results table and the parity-style
    // `coupled_heavy` guard; the "skewed" guard rows compare the two schedules'
    // critical paths — on a host with a free core per worker the critical path *is*
    // the wall clock, and it is measurable honestly even where this harness runs on
    // fewer cores.
    for cell in &skewed {
        let r = run_cell(cell);
        measurements.push(Measurement {
            problem: cell.problem,
            workload: cell.workload,
            mode: "static",
            wall_ms: r.static_ms,
            answers: render_answers(&r.stealing_answers),
        });
        measurements.push(Measurement {
            problem: cell.problem,
            workload: cell.workload,
            mode: "stealing",
            wall_ms: r.stealing_ms,
            answers: render_answers(&r.stealing_answers),
        });
        if cell.workload == "skewed" {
            let static_cfg = cfg.clone().without_work_stealing();
            let (static_cp, a0, s0, _) = skew_decide(cell.problem, &skew_params, &static_cfg);
            let (stealing_cp, a1, s1, _) = skew_decide(cell.problem, &skew_params, &cfg);
            eprintln!(
                "critical path: {:<12} {:<13} static {:>9.3} ms  stealing {:>9.3} ms  ({:.2}x)",
                cell.problem,
                cell.workload,
                static_cp,
                stealing_cp,
                static_cp / stealing_cp.max(1e-6),
            );
            guard.push(GuardRow {
                problem: cell.problem,
                workload: cell.workload,
                static_ms: static_cp,
                stealing_ms: stealing_cp,
                metric: "critical_path",
                floor: skew_floor,
                answers_match: r.answers_match && a0 == a1 && s0 == s1,
            });
        } else {
            guard.push(GuardRow {
                problem: cell.problem,
                workload: cell.workload,
                static_ms: r.static_ms,
                stealing_ms: r.stealing_ms,
                metric: "wall",
                floor: parity_floor,
                answers_match: r.answers_match,
            });
        }
    }

    // The balanced rows: per-cell measurements stay visible in `results`, the guard
    // aggregates each workload family across all five problems — a micro-second
    // polynomial decide has a noisy individual ratio, the family sum is stable.
    let mut family_sums: Vec<(&'static str, f64, f64, bool)> = Vec::new();
    for cell in &parity {
        let r = run_cell(cell);
        measurements.push(Measurement {
            problem: cell.problem,
            workload: cell.workload,
            mode: "static",
            wall_ms: r.static_ms,
            answers: render_answers(&r.stealing_answers),
        });
        measurements.push(Measurement {
            problem: cell.problem,
            workload: cell.workload,
            mode: "stealing",
            wall_ms: r.stealing_ms,
            answers: render_answers(&r.stealing_answers),
        });
        match family_sums.iter_mut().find(|(l, ..)| *l == cell.workload) {
            Some((_, s, d, m)) => {
                *s += r.static_ms;
                *d += r.stealing_ms;
                *m &= r.answers_match;
            }
            None => family_sums.push((cell.workload, r.static_ms, r.stealing_ms, r.answers_match)),
        }
    }
    for (label, static_ms, stealing_ms, answers_match) in family_sums {
        guard.push(GuardRow {
            problem: "all",
            workload: label,
            static_ms,
            stealing_ms,
            metric: "wall",
            floor: parity_floor,
            answers_match,
        });
    }

    if smoke {
        print_stats(&skew_params, &cfg);
    }

    let json = render_json(&measurements, &guard, threads, iters, smoke);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
