//! `bench-pr6` — the certificate-extraction overhead benchmark: the same batch of
//! decisions with and without proof-carrying verdicts, emitted as machine-readable
//! JSON.
//!
//! PR 6 makes every decision optionally return a [`pw_decide::Certificate`] that the
//! independent checker `pw_check` verifies in polynomial time.  Certificates are only
//! useful if extracting them is cheap: the certified path must reuse the witnesses the
//! searches already construct rather than re-deciding.  This harness measures exactly
//! that — each result row times `decide_all_with` over one (problem, workload) pair
//! twice, once under the plain configuration and once under
//! [`pw_decide::EngineConfig::certified`] — and emits a `certify_overhead` table
//! (consumed by `tools/check_bench.rs` in CI) aggregated per workload across the five
//! problems, each row embedding the allowed ceiling: the certified session may cost
//! at most `ceiling ×` the plain session on the mixed batch.
//!
//! The harness also *audits* what it measures: per row it asserts the certified
//! answers and strategies are identical to the plain ones, that every certified
//! outcome carries a certificate, and that `pw_check::verify` accepts each one — the
//! `verified` flag in the table records this, and CI fails on `verified: false` just
//! as it fails on an overhead above the ceiling.
//!
//! Usage:
//!   cargo run --release --bin bench-pr6 -- [--smoke] [--sweeps N] [--out FILE]
//!
//! `--smoke` shrinks the tables and iteration counts so CI can check the harness and
//! the JSON shape in seconds; micro-second decides on a cold CI machine are noisy, so
//! the smoke ceiling is relaxed (`3.0`) while the committed full run carries the real
//! `1.5` acceptance ceiling.

use pw_check::{Claim, Problem};
use pw_core::{CDatabase, View};
use pw_decide::batch::{decide_all_with, DecisionRequest};
use pw_decide::{Budget, DecisionOutcome, EngineConfig};
use pw_relational::{Constant, Instance, Relation, Tuple};
use pw_workloads::{
    decoupled_multirelation, member_instance, non_member_instance, random_codd_table,
    random_ctable, TableParams,
};
use std::time::Instant;

/// One measured row of the report.
struct Measurement {
    problem: &'static str,
    workload: &'static str,
    mode: &'static str,
    /// Mean wall time of one `decide_all_with` over the row's requests.
    wall_ms: f64,
    /// Aggregated answers, e.g. `"true:1, false:1"`.
    answers: Vec<String>,
}

/// One certify-overhead row: the plain/certified pair plus the CI ceiling.
///
/// One enforced row, aggregated over the whole suite: the certify flag is a
/// session-level switch, so the guarded claim is "a certified session costs at most
/// `ceiling ×` a plain session across the mixed workload suite".  Per-problem ratios
/// stay visible in `results` — certificate extraction is linear work (build a
/// valuation, fill the unassigned nulls), so a micro-second polynomial decide can
/// individually show a high *ratio* while adding only additive microseconds; the
/// wall-clock ceiling is meaningful over batches where decision work exists, which
/// is what the suite row measures.
struct OverheadRow {
    problem: &'static str,
    workload: &'static str,
    plain_ms: f64,
    certified_ms: f64,
    ceiling: f64,
    /// Certified answers/strategies match the plain ones, every certified outcome
    /// carries a certificate, and `pw_check` accepts each certificate.
    verified: bool,
}

/// One benchmark database together with derived request ingredients.
struct Workload {
    label: &'static str,
    db: CDatabase,
    member: Instance,
    non_member: Instance,
    /// A small sub-instance of `member` (a possibility pattern).
    pattern: Instance,
    /// `pattern` with one unproducible fact added.
    poisoned: Instance,
}

fn build_workload(label: &'static str, db: CDatabase, params: &TableParams) -> Workload {
    let member = member_instance(&db, params);
    let non_member = non_member_instance(&db, params);
    let mut pattern = Instance::new();
    let mut poisoned = Instance::new();
    let mut poison_pending = true;
    for (name, rel) in member.iter() {
        let mut p = Relation::empty(rel.arity());
        for fact in rel.iter().take(2) {
            p.insert(fact.clone()).expect("arity preserved");
        }
        pattern.insert_relation(name.clone(), p.clone());
        if poison_pending {
            // The poison fact: constants far outside the generator's pool, so no
            // ground row produces it and only null-valued components can absorb it.
            let fact = Tuple::new((0..p.arity()).map(|i| Constant::Int(9_000 + i as i64)));
            p.insert(fact).expect("arity preserved");
            poison_pending = false;
        }
        poisoned.insert_relation(name.clone(), p);
    }
    Workload {
        label,
        db,
        member,
        non_member,
        pattern,
        poisoned,
    }
}

fn build_workloads(smoke: bool) -> Vec<Workload> {
    // Per-class sizes, chosen so that each workload's *searches* carry real wall-clock
    // weight relative to certificate extraction: Codd decides are polynomial, so the
    // table is large; c-table decides are NP/coNP searches that already dominate at
    // small sizes (and become intractable well before 20 rows).
    let codd = TableParams {
        rows: if smoke { 8 } else { 256 },
        arity: 2,
        constants: 4,
        null_density: 0.4,
        seed: 2061,
    };
    let ctable = TableParams {
        rows: if smoke { 8 } else { 10 },
        ..codd
    };
    let shard = TableParams {
        rows: if smoke { 4 } else { 8 },
        ..codd
    };
    vec![
        build_workload(
            "codd",
            CDatabase::single(random_codd_table("R", &codd)),
            &codd,
        ),
        build_workload(
            "ctable",
            CDatabase::single(random_ctable("R", &ctable)),
            &ctable,
        ),
        build_workload(
            "sharded",
            decoupled_multirelation(if smoke { 3 } else { 4 }, &shard),
            &shard,
        ),
    ]
}

/// The batch of one (problem, workload) pair: a yes-leaning and a no-leaning request
/// wherever the workload offers both, so certificates of both polarities are timed.
fn requests_for(problem: &str, w: &Workload) -> Vec<DecisionRequest> {
    let view = View::identity(w.db.clone());
    match problem {
        "membership" => vec![
            DecisionRequest::Membership {
                view: view.clone(),
                instance: w.member.clone(),
            },
            DecisionRequest::Membership {
                view,
                instance: w.non_member.clone(),
            },
        ],
        "possibility" => vec![
            DecisionRequest::Possibility {
                view: view.clone(),
                facts: w.pattern.clone(),
            },
            DecisionRequest::Possibility {
                view,
                facts: w.poisoned.clone(),
            },
        ],
        "certainty" => vec![
            DecisionRequest::Certainty {
                view: view.clone(),
                facts: Instance::new(),
            },
            DecisionRequest::Certainty {
                view,
                facts: w.pattern.clone(),
            },
        ],
        "uniqueness" => vec![DecisionRequest::Uniqueness {
            view,
            instance: w.member.clone(),
        }],
        "containment" => vec![DecisionRequest::Containment {
            left: view.clone(),
            right: view,
        }],
        other => unreachable!("unknown problem {other}"),
    }
}

/// Check one certified outcome against its request: answer present, certificate
/// present, checker accepts.
fn outcome_verifies(request: &DecisionRequest, outcome: &DecisionOutcome) -> bool {
    let Ok(answer) = outcome.answer else {
        return false;
    };
    let Some(certificate) = &outcome.certificate else {
        return false;
    };
    let problem = match request {
        DecisionRequest::Membership { view, instance } => Problem::Membership { view, instance },
        DecisionRequest::Uniqueness { view, instance } => Problem::Uniqueness { view, instance },
        DecisionRequest::Containment { left, right } => Problem::Containment { left, right },
        DecisionRequest::Possibility { view, facts } => Problem::Possibility { view, facts },
        DecisionRequest::Certainty { view, facts } => Problem::Certainty { view, facts },
    };
    pw_check::verify(&Claim { problem, answer }, certificate).is_ok()
}

struct PairResult {
    plain_ms: f64,
    certified_ms: f64,
    plain_answers: Vec<DecisionOutcome>,
    verified: bool,
}

/// Time one batch `iters` times and return (mean ms per batch, last outcomes).
fn time_batch(
    requests: &[DecisionRequest],
    cfg: &EngineConfig,
    iters: usize,
) -> (f64, Vec<DecisionOutcome>) {
    let start = Instant::now();
    let mut last = Vec::new();
    for _ in 0..iters {
        last = decide_all_with(requests, cfg);
    }
    (start.elapsed().as_secs_f64() * 1e3 / iters as f64, last)
}

fn run_pair(
    problem: &'static str,
    w: &Workload,
    cfg: &EngineConfig,
    max_iters: usize,
) -> PairResult {
    let requests = requests_for(problem, w);
    let certified_cfg = cfg.certified();
    // Calibrate the repeat count off one plain batch: micro-second batches repeat up
    // to `max_iters` times for a stable mean, while a batch that already costs tens
    // of milliseconds is its own stable measurement and repeats only a few times.
    let calibration = Instant::now();
    decide_all_with(&requests, cfg);
    let batch_ms = calibration.elapsed().as_secs_f64() * 1e3;
    let max_iters = max_iters.max(1);
    let iters = ((20.0 / batch_ms.max(1e-6)) as usize).clamp(3.min(max_iters), max_iters);
    let (plain_ms, plain) = time_batch(&requests, cfg, iters);
    let (certified_ms, certified) = time_batch(&requests, &certified_cfg, iters);

    let answers_match = plain.len() == certified.len()
        && plain
            .iter()
            .zip(&certified)
            .all(|(p, c)| p.answer == c.answer && p.strategy == c.strategy);
    let verified = answers_match
        && requests
            .iter()
            .zip(&certified)
            .all(|(r, o)| outcome_verifies(r, o));
    PairResult {
        plain_ms,
        certified_ms,
        plain_answers: plain,
        verified,
    }
}

fn render_answers(outcomes: &[DecisionOutcome]) -> Vec<String> {
    let (mut t, mut f, mut x) = (0usize, 0usize, 0usize);
    for o in outcomes {
        match o.answer {
            Ok(true) => t += 1,
            Ok(false) => f += 1,
            Err(_) => x += 1,
        }
    }
    vec![format!("true:{t}, false:{f}, exhausted:{x}")]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(
    measurements: &[Measurement],
    overhead: &[OverheadRow],
    iters: usize,
    smoke: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"BENCH_PR6\",\n");
    out.push_str("  \"description\": \"certificate-extraction overhead: decide_all with and without proof-carrying verdicts, every certified answer re-checked by pw_check (see crates/bench/src/bin/bench_pr6.rs)\",\n");
    out.push_str("  \"threads\": 1,\n");
    out.push_str(&format!("  \"iterations\": {iters},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let answers: Vec<String> = m
            .answers
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect();
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \"wall_ms\": {:.3}, \"answers\": [{}]}}{}\n",
            m.problem,
            m.workload,
            m.mode,
            m.wall_ms,
            answers.join(", "),
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // The CI guard table: certified ≤ ceiling × plain, and the certified run's answers
    // were audited (strategies match, every outcome certified, pw_check accepts).
    out.push_str("  \"certify_overhead\": [\n");
    for (i, r) in overhead.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"plain_ms\": {:.3}, \"certified_ms\": {:.3}, \"overhead\": {:.2}, \"ceiling\": {}, \"verified\": {}}}{}\n",
            r.problem,
            r.workload,
            r.plain_ms,
            r.certified_ms,
            r.certified_ms / r.plain_ms.max(1e-6),
            r.ceiling,
            r.verified,
            if i + 1 == overhead.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // The standard committed-report table (`check-bench` floor 0.9): the ceiling-scaled
    // plain run is the budget, the certified run must fit inside it — speedup ≥ 1.0
    // exactly when the overhead row clears its ceiling.
    out.push_str("  \"speedup_vs_baseline\": [\n");
    for (i, r) in overhead.iter().enumerate() {
        let budget_ms = r.plain_ms * r.ceiling;
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"certified\", \"baseline_ms\": {:.3}, \"current_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.problem,
            r.workload,
            budget_ms,
            r.certified_ms,
            budget_ms / r.certified_ms.max(1e-6),
            if i + 1 == overhead.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR6.json".to_owned());
    let sweeps: usize = flag_value("--sweeps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 5 })
        .max(1);
    let iters = if smoke { 2 } else { 40 };
    // Single-threaded decides: the comparison is about the *extraction* cost riding on
    // an identical search, and sequential timings are the stable ones.
    let cfg = EngineConfig::sequential(Budget(20_000_000));
    let ceiling = if smoke { 3.0 } else { 1.5 };

    let problems = [
        "membership",
        "possibility",
        "certainty",
        "uniqueness",
        "containment",
    ];
    let workloads = build_workloads(smoke);
    let mut measurements: Vec<Measurement> = Vec::new();
    let mut overhead: Vec<OverheadRow> = Vec::new();
    let (mut sum_plain, mut sum_certified) = (0.0f64, 0.0f64);
    let mut suite_verified = true;
    for w in &workloads {
        for problem in problems {
            // Median overhead across the sweeps: extraction cost is the signal, and a
            // single descheduled sample must not decide the committed number in either
            // direction — but an audit failure in *any* sweep always dominates.
            let mut results: Vec<PairResult> = (0..sweeps)
                .map(|sweep| {
                    let r = run_pair(problem, w, &cfg, iters);
                    eprintln!(
                        "sweep {}/{sweeps}: {:<12} {:<8} plain {:>9.3} ms  certified {:>9.3} ms  ({:.2}x, verified: {})",
                        sweep + 1,
                        problem,
                        w.label,
                        r.plain_ms,
                        r.certified_ms,
                        r.certified_ms / r.plain_ms.max(1e-6),
                        r.verified,
                    );
                    r
                })
                .collect();
            let all_verified = results.iter().all(|r| r.verified);
            results.sort_by(|a, b| {
                let oa = a.certified_ms / a.plain_ms.max(1e-6);
                let ob = b.certified_ms / b.plain_ms.max(1e-6);
                oa.total_cmp(&ob)
            });
            let r = results.swap_remove(results.len() / 2);
            measurements.push(Measurement {
                problem,
                workload: w.label,
                mode: "plain",
                wall_ms: r.plain_ms,
                answers: render_answers(&r.plain_answers),
            });
            measurements.push(Measurement {
                problem,
                workload: w.label,
                mode: "certified",
                wall_ms: r.certified_ms,
                answers: render_answers(&r.plain_answers),
            });
            sum_plain += r.plain_ms;
            sum_certified += r.certified_ms;
            suite_verified &= all_verified;
        }
    }
    overhead.push(OverheadRow {
        problem: "all",
        workload: "suite",
        plain_ms: sum_plain,
        certified_ms: sum_certified,
        ceiling,
        verified: suite_verified,
    });

    let json = render_json(&measurements, &overhead, iters, smoke);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
