//! `bench-pr3` — the relation-catalog benchmark: batch wall time on *name-lookup-heavy*
//! workloads — many small requests fanned out across many relations — emitted as
//! machine-readable JSON.
//!
//! `bench-pr2` stressed constant comparisons; this harness stresses the other string
//! axis: **relation addressing**.  A database holds dozens of relations whose names share
//! a long common prefix (the worst case for string hashing and comparison), and every
//! request touches a single relation, so per-request costs are dominated by boundary
//! resolution — `db.table(name)` lookups, base-store cache keys, dispatch.  The same
//! binary is run before and after a catalog change; `--baseline <file>` embeds the prior
//! run's numbers and reports per-row speedups, which is how `BENCH_PR3.json` records the
//! before/after of the `RelId` catalog PR.
//!
//! Usage:
//!   cargo run --release --bin bench-pr3 -- [--smoke] [--sweeps N] [--out FILE] [--baseline FILE]
//!
//! `--smoke` shrinks the workloads to a few relations and one iteration so CI can check
//! the harness and the JSON shape in seconds.  `--sweeps N` repeats the whole measurement
//! sweep N times and keeps each row's minimum — batches here are tens of microseconds to
//! tens of milliseconds, so a single ~30 s sweep is exposed to machine drift that
//! per-row minima across sweeps cancel out.

use pw_condition::{Term, VarGen};
use pw_core::{CDatabase, CTable, View};
use pw_decide::batch::{decide_all_with, DecisionRequest};
use pw_decide::{Budget, EngineConfig};
use pw_relational::{Instance, Relation, Tuple};
use std::time::Instant;

/// One measured row of the report.
struct Measurement {
    problem: &'static str,
    workload: String,
    mode: &'static str,
    wall_ms: f64,
    /// Aggregated answers, e.g. `"true:24"` — per-request listings would dwarf the report.
    answers: Vec<String>,
}

/// A name-heavy workload: one database of `relations` small tables plus, per relation,
/// the instances the requests are phrased against.
struct Workload {
    label: String,
    db: CDatabase,
    /// Per relation: (name, member instance, possible pattern, certain fact, uncertain fact).
    per_relation: Vec<RelationFixtures>,
}

struct RelationFixtures {
    name: String,
    member: Instance,
    non_member: Instance,
    pattern: Instance,
    certain: Instance,
    uncertain: Instance,
}

/// Relation names share a long prefix and differ only in the trailing digits — a string
/// hash walks the whole name and a comparison walks most of it.
fn relation_name(r: usize) -> String {
    format!("warehouse-eu-central-inventory-snapshot-{r:05}")
}

fn sku(r: usize, i: usize) -> Term {
    Term::from(format!("sku-{r:05}-{i:05}").as_str())
}

fn sku_fact(r: usize, i: usize, qty: i64) -> Tuple {
    Tuple::new([
        pw_relational::Constant::str(format!("sku-{r:05}-{i:05}")),
        pw_relational::Constant::int(qty),
    ])
}

fn build_workload(relations: usize) -> Workload {
    let mut g = VarGen::new();
    let mut tables = Vec::with_capacity(relations);
    let mut per_relation = Vec::with_capacity(relations);
    for r in 0..relations {
        let name = relation_name(r);
        // Three ground rows plus one open row (an unknown quantity report).
        let x = g.fresh();
        let rows = vec![
            vec![sku(r, 0), Term::from(10)],
            vec![sku(r, 1), Term::from(20)],
            vec![sku(r, 2), Term::from(30)],
            vec![sku(r, 3), Term::Var(x)],
        ];
        tables.push(CTable::codd(&name, 2, rows).expect("distinct fresh variables"));

        let mut member = Instance::new();
        let mut rel = Relation::empty(2);
        for (i, qty) in [(0, 10), (1, 20), (2, 30), (3, 99)] {
            rel.insert(sku_fact(r, i, qty)).expect("arity 2");
        }
        member.insert_relation(&name, rel);

        // Perturb one ground quantity: the ground row (sku-0, 10) can no longer be mapped
        // onto any fact, so this instance is outside the represented worlds.
        let mut non_member_rel = Relation::empty(2);
        for (i, qty) in [(0, 11), (1, 20), (2, 30), (3, 99)] {
            non_member_rel.insert(sku_fact(r, i, qty)).expect("arity 2");
        }
        let non_member = Instance::single(&name, non_member_rel);

        let mut pattern_rel = Relation::empty(2);
        pattern_rel.insert(sku_fact(r, 0, 10)).expect("arity 2");
        pattern_rel.insert(sku_fact(r, 3, 55)).expect("arity 2");
        let pattern = Instance::single(&name, pattern_rel);

        let mut certain_rel = Relation::empty(2);
        certain_rel.insert(sku_fact(r, 0, 10)).expect("arity 2");
        let certain = Instance::single(&name, certain_rel);

        let mut uncertain_rel = Relation::empty(2);
        uncertain_rel.insert(sku_fact(r, 3, 42)).expect("arity 2");
        let uncertain = Instance::single(&name, uncertain_rel);

        per_relation.push(RelationFixtures {
            name,
            member,
            non_member,
            pattern,
            certain,
            uncertain,
        });
    }
    Workload {
        label: format!("relations-{relations}"),
        db: CDatabase::new(tables),
        per_relation,
    }
}

fn build_workloads(smoke: bool) -> Vec<Workload> {
    let sizes: &[usize] = if smoke { &[4] } else { &[8, 24, 64] };
    sizes.iter().map(|&n| build_workload(n)).collect()
}

/// Per-problem request lists: one (or two) small requests per relation, so the batch size
/// scales with the relation count while every individual search stays tiny.
fn requests_for(problem: &str, w: &Workload) -> Vec<DecisionRequest> {
    let view = View::identity(w.db.clone());
    let mut out = Vec::new();
    for fx in &w.per_relation {
        match problem {
            // Membership is asked through a single-relation identity view: the request
            // names one relation of the many-relation database and the dispatcher has to
            // resolve it at the boundary — the name-lookup pattern this bench stresses.
            "membership" => {
                let narrow = View::new(
                    pw_query::Query::identity([(fx.name.clone(), 2)]),
                    w.db.clone(),
                );
                out.push(DecisionRequest::Membership {
                    view: narrow.clone(),
                    instance: fx.member.clone(),
                });
                out.push(DecisionRequest::Membership {
                    view: narrow,
                    instance: fx.non_member.clone(),
                });
            }
            "possibility" => out.push(DecisionRequest::Possibility {
                view: view.clone(),
                facts: fx.pattern.clone(),
            }),
            "certainty" => {
                out.push(DecisionRequest::Certainty {
                    view: view.clone(),
                    facts: fx.certain.clone(),
                });
                out.push(DecisionRequest::Certainty {
                    view: view.clone(),
                    facts: fx.uncertain.clone(),
                });
            }
            other => unreachable!("unknown problem {other}"),
        }
    }
    out
}

const PROBLEMS: [&str; 3] = ["membership", "possibility", "certainty"];

fn measure(
    problem: &'static str,
    workload: &Workload,
    mode: &'static str,
    cfg: &EngineConfig,
    iters: usize,
) -> Measurement {
    let requests = requests_for(problem, workload);
    // Warm up once (untimed), then pick an inner repeat count so every timed sample is
    // at least ~2 ms — sub-millisecond batches are pure scheduler noise otherwise.
    let warmup = Instant::now();
    let _ = decide_all_with(&requests, cfg);
    let once_ms = warmup.elapsed().as_secs_f64() * 1e3;
    let reps = if iters == 1 {
        1
    } else {
        ((2.0 / once_ms.max(1e-4)).ceil() as usize).clamp(1, 512)
    };
    let mut times = Vec::with_capacity(iters);
    let mut answers = Vec::new();
    for _ in 0..iters {
        let start = Instant::now();
        let mut outcomes = Vec::new();
        for _ in 0..reps {
            outcomes = decide_all_with(&requests, cfg);
        }
        times.push(start.elapsed().as_secs_f64() * 1e3 / reps as f64);
        let mut yes = 0usize;
        let mut no = 0usize;
        let mut budget = 0usize;
        for o in &outcomes {
            match o.answer {
                Ok(true) => yes += 1,
                Ok(false) => no += 1,
                Err(_) => budget += 1,
            }
        }
        answers.clear();
        if yes > 0 {
            answers.push(format!("true:{yes}"));
        }
        if no > 0 {
            answers.push(format!("false:{no}"));
        }
        if budget > 0 {
            answers.push(format!("budget:{budget}"));
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    Measurement {
        problem,
        workload: workload.label.clone(),
        mode,
        wall_ms: times[times.len() / 2],
        answers,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(
    measurements: &[Measurement],
    threads: usize,
    iters: usize,
    smoke: bool,
    baseline_raw: Option<&str>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"BENCH_PR3\",\n");
    out.push_str("  \"description\": \"batch wall time on name-lookup-heavy workloads: many small requests across many relations (see crates/bench/src/bin/bench_pr3.rs)\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"iterations\": {iters},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let answers: Vec<String> = m
            .answers
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect();
        out.push_str(&format!(
            "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \"wall_ms\": {:.3}, \"answers\": [{}]}}{}\n",
            m.problem,
            json_escape(&m.workload),
            m.mode,
            m.wall_ms,
            answers.join(", "),
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]");
    if let Some(raw) = baseline_raw {
        out.push_str(",\n  \"baseline\": ");
        // Embed the baseline run verbatim (a JSON document produced by this binary).
        let indented: Vec<String> = raw.trim().lines().map(|l| format!("  {l}")).collect();
        out.push_str(indented.join("\n").trim_start());
        let base = parse_results(raw);
        out.push_str(",\n  \"speedup_vs_baseline\": [\n");
        let rows: Vec<String> = measurements
            .iter()
            .filter_map(|m| {
                let key = (m.problem.to_owned(), m.workload.clone(), m.mode.to_owned());
                base.iter().find(|(k, _)| *k == key).map(|(_, base_ms)| {
                    format!(
                        "    {{\"problem\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \"baseline_ms\": {:.3}, \"current_ms\": {:.3}, \"speedup\": {:.2}}}",
                        m.problem,
                        json_escape(&m.workload),
                        m.mode,
                        base_ms,
                        m.wall_ms,
                        base_ms / m.wall_ms.max(1e-6),
                    )
                })
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// Minimal extraction of `(problem, workload, mode) -> wall_ms` rows from a prior run of
/// this binary (full JSON parsing is overkill for a document we ourselves emit).
fn parse_results(raw: &str) -> Vec<((String, String, String), f64)> {
    let mut out = Vec::new();
    for line in raw.lines() {
        let line = line.trim();
        if !line.starts_with("{\"problem\":") {
            continue;
        }
        let field = |name: &str| -> Option<String> {
            let tag = format!("\"{name}\": \"");
            let start = line.find(&tag)? + tag.len();
            let end = line[start..].find('"')? + start;
            Some(line[start..end].to_owned())
        };
        let wall = || -> Option<f64> {
            let tag = "\"wall_ms\": ";
            let start = line.find(tag)? + tag.len();
            let end = line[start..].find(',')? + start;
            line[start..end].trim().parse().ok()
        };
        if let (Some(p), Some(w), Some(m), Some(ms)) =
            (field("problem"), field("workload"), field("mode"), wall())
        {
            out.push(((p, w, m), ms));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR3.json".to_owned());
    let baseline_raw = flag_value("--baseline").map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"))
    });

    let iters = if smoke { 1 } else { 7 };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let budget = Budget(2_000_000);
    let sequential = EngineConfig::sequential(budget);
    let parallel = EngineConfig::with_threads(threads, budget);

    let sweeps: usize = flag_value("--sweeps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let workloads = build_workloads(smoke);
    let mut measurements: Vec<Measurement> = Vec::new();
    for sweep in 0..sweeps {
        let mut row = 0;
        for w in &workloads {
            for problem in PROBLEMS {
                for (mode, cfg) in [("sequential", &sequential), ("parallel", &parallel)] {
                    let m = measure(problem, w, mode, cfg, iters);
                    eprintln!(
                        "sweep {}/{sweeps}: {:<12} {:<14} {:<10} {:>10.3} ms  [{}]",
                        sweep + 1,
                        m.problem,
                        m.workload,
                        m.mode,
                        m.wall_ms,
                        m.answers.join(", ")
                    );
                    if sweep == 0 {
                        measurements.push(m);
                    } else if m.wall_ms < measurements[row].wall_ms {
                        measurements[row] = m;
                    }
                    row += 1;
                }
            }
        }
    }

    let json = render_json(
        &measurements,
        threads,
        iters,
        smoke,
        baseline_raw.as_deref(),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
