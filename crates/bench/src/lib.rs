//! # `pw-bench` — shared infrastructure for the benchmark harness
//!
//! The paper's "evaluation" is a complexity classification (Fig. 2 and Theorems 3.1–5.3),
//! so the harness measures how each decision procedure *scales* with the database size on
//! two kinds of workload: the random (easy) families of `pw-workloads` for the PTIME cells
//! and the reduction-generated (hard) families of `pw-reductions` for the NP / coNP / Π₂ᵖ
//! cells.  This library provides the timing sweep and growth-classification helpers shared
//! by the Criterion benches and the `fig2-matrix` / `experiments` binaries.

use std::time::{Duration, Instant};

/// One measured point of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The size parameter (rows, vertices, variables, …).
    pub size: usize,
    /// Wall-clock time of the decision call.
    pub elapsed: Duration,
    /// The decision outcome (kept so the optimiser cannot discard the call and so the
    /// tables can report it).
    pub answer: bool,
}

/// A measured sweep: a label plus its points.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Human-readable label (problem, representation, algorithm).
    pub label: String,
    /// The measured points, in increasing size order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Run `f` for every size in `sizes`, timing each call.
    pub fn run(
        label: impl Into<String>,
        sizes: impl IntoIterator<Item = usize>,
        mut f: impl FnMut(usize) -> bool,
    ) -> Sweep {
        let mut points = Vec::new();
        for size in sizes {
            let start = Instant::now();
            let answer = f(size);
            points.push(SweepPoint {
                size,
                elapsed: start.elapsed(),
                answer,
            });
        }
        Sweep {
            label: label.into(),
            points,
        }
    }

    /// Crude growth classification: fit the ratio of successive times against the ratio of
    /// successive sizes.  Returns the estimated polynomial degree when growth looks
    /// polynomial, or `None` when it looks super-polynomial (degree estimate keeps
    /// increasing and exceeds `max_degree`).
    pub fn polynomial_degree_estimate(&self) -> Option<f64> {
        let usable: Vec<&SweepPoint> = self
            .points
            .iter()
            .filter(|p| p.elapsed > Duration::from_micros(5))
            .collect();
        if usable.len() < 2 {
            return Some(0.0);
        }
        let mut degrees = Vec::new();
        for pair in usable.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b.size == a.size {
                continue;
            }
            let time_ratio = b.elapsed.as_secs_f64() / a.elapsed.as_secs_f64().max(1e-9);
            let size_ratio = b.size as f64 / a.size as f64;
            degrees.push(time_ratio.ln() / size_ratio.ln());
        }
        if degrees.is_empty() {
            return Some(0.0);
        }
        let last = *degrees.last().unwrap();
        let max = degrees.iter().cloned().fold(f64::MIN, f64::max);
        // Heuristic: exponential growth shows an ever-increasing apparent degree.
        const MAX_POLY_DEGREE: f64 = 4.5;
        if max > MAX_POLY_DEGREE && last > MAX_POLY_DEGREE {
            None
        } else {
            Some(degrees.iter().sum::<f64>() / degrees.len() as f64)
        }
    }

    /// A one-word verdict for the printed tables.
    pub fn growth_class(&self) -> &'static str {
        match self.polynomial_degree_estimate() {
            Some(_) => "polynomial",
            None => "super-polynomial",
        }
    }

    /// Render as aligned text rows (size, time, answer).
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.label);
        for p in &self.points {
            out.push_str(&format!(
                "  n = {:>6}   {:>12.3?}   answer = {}\n",
                p.size, p.elapsed, p.answer
            ));
        }
        out.push_str(&format!(
            "  growth: {} (degree estimate {:?})\n",
            self.growth_class(),
            self.polynomial_degree_estimate()
        ));
        out
    }
}

/// Format a duration in a compact human unit for the matrix tables.
pub fn compact(d: Duration) -> String {
    if d < Duration::from_micros(1) {
        format!("{}ns", d.as_nanos())
    } else if d < Duration::from_millis(1) {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    } else if d < Duration::from_secs(1) {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_records_every_point() {
        let sweep = Sweep::run("noop", [1, 2, 4], |n| n % 2 == 0);
        assert_eq!(sweep.points.len(), 3);
        assert!(!sweep.points[0].answer);
        assert!(sweep.points[2].answer);
    }

    #[test]
    fn polynomial_work_is_classified_as_polynomial() {
        // Quadratic work.
        let sweep = Sweep::run("quadratic", [64, 128, 256, 512], |n| {
            let mut acc = 0u64;
            for i in 0..n {
                for j in 0..n {
                    acc = acc.wrapping_add((i * j) as u64);
                }
            }
            acc > 0
        });
        assert_eq!(sweep.growth_class(), "polynomial");
    }

    #[test]
    fn exponential_work_is_classified_as_super_polynomial() {
        // Sizes far enough apart that each step multiplies the work by ~φ⁴ ≈ 6.8× and
        // every point runs long enough to dominate scheduler noise on a loaded box.
        let sweep = Sweep::run("exponential", [20, 24, 28], |n| {
            fn fib(n: usize) -> u64 {
                if n < 2 {
                    1
                } else {
                    fib(n - 1).wrapping_add(fib(n - 2))
                }
            }
            fib(n) > 0
        });
        assert_eq!(sweep.growth_class(), "super-polynomial");
    }

    #[test]
    fn compact_formats_each_range() {
        assert!(compact(Duration::from_nanos(10)).ends_with("ns"));
        assert!(compact(Duration::from_micros(10)).ends_with("µs"));
        assert!(compact(Duration::from_millis(10)).ends_with("ms"));
        assert!(compact(Duration::from_secs(2)).ends_with('s'));
    }
}
